#!/usr/bin/env bash
# One-stop local gate: tier-1 test suite, then a short observability
# smoke benchmark that writes a metrics snapshot and validates it,
# then a trace round-trip (event log -> `repro trace analyze` ->
# repro.trace_report.v1 schema check).
#
# Usage: scripts/check.sh
# Runs from any cwd; needs only the in-repo package (no installs).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== observability smoke benchmark =="
METRICS_OUT="$(mktemp -t repro-metrics-XXXXXX.json)"
EVENTS_OUT="$(mktemp -t repro-events-XXXXXX.jsonl)"
TRACE_OUT="$(mktemp -t repro-trace-XXXXXX.json)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT"' EXIT
python -m pytest benchmarks/bench_metrics_smoke.py --benchmark-only \
    --benchmark-min-rounds=1 -q --metrics-out "$METRICS_OUT"

echo
echo "== validating metrics snapshot =="
python - "$METRICS_OUT" <<'PY'
import json
import sys

from repro.observability import MetricsRegistry

with open(sys.argv[1], encoding="utf-8") as handle:
    snapshots = json.load(handle)
if not snapshots:
    sys.exit("no snapshots were written")
for name, snapshot in sorted(snapshots.items()):
    registry = MetricsRegistry.from_snapshot(snapshot)
    text = registry.prometheus_text()
    print(f"{name}: {len(registry.names())} metric families, "
          f"{len(text.splitlines())} exposition lines")
print("snapshot validation OK")
PY

echo
echo "== trace analyze round-trip =="
python -m repro simulate --database rat --queries 6 --gpus 1 --sse 2 \
    --events-out "$EVENTS_OUT" > /dev/null
python -m repro trace analyze "$EVENTS_OUT" --format json \
    --out "$TRACE_OUT" > /dev/null
python - "$EVENTS_OUT" "$TRACE_OUT" <<'PY'
import json
import sys

from repro.observability import (
    TRACE_REPORT_METRICS,
    TRACE_REPORT_SCHEMA,
    EventLog,
    analyze_events,
)

events_path, report_path = sys.argv[1:3]
with open(report_path, encoding="utf-8") as handle:
    document = json.load(handle)
if document["schema"] != TRACE_REPORT_SCHEMA:
    sys.exit(f"unexpected schema tag: {document['schema']!r}")
missing = sorted(set(TRACE_REPORT_METRICS) - set(document["metrics"]))
if missing:
    sys.exit(f"trace report is missing metrics: {missing}")
# Re-analyzing the same event log must reproduce the document exactly.
replayed = analyze_events(EventLog.from_jsonl(events_path)).to_document()
if replayed != document:
    sys.exit("trace analyze is not deterministic over the event log")
print(f"trace report OK: {len(document['pes'])} PEs, "
      f"makespan {document['metrics']['makespan_seconds']:.2f}s")
PY

echo
echo "all checks passed"
