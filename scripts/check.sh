#!/usr/bin/env bash
# One-stop local gate: tier-1 test suite, then a short observability
# smoke benchmark that writes a metrics snapshot and validates it,
# then a trace round-trip (event log -> `repro trace analyze` ->
# repro.trace_report.v1 schema check), then a chaos stage: one short
# seeded fault-plan run per environment (DES, threaded runtime, TCP
# cluster) that must finish every task with fault-free-identical
# results, with the DES run's fault events surfaced by trace analyze,
# and finally a durability stage: a seeded master-kill/resume
# round-trip per environment over a --checkpoint directory, plus
# `repro journal verify` on the produced journal (and a negative
# check that a flipped byte is detected).  A store stage exercises the
# persistent pack store: `repro db build|verify`, a warm `--store`
# search diffed byte-identical against the cold run, and a negative
# check that a flipped byte fails both `db verify` and the warm
# search.  The telemetry stage scrapes a live master's /metrics
# mid-run through the strict OpenMetrics parser, checks the worker
# stats piggyback, and byte-compares a DES telemetry stream's final
# record against the run's metrics snapshot.
#
# Usage: scripts/check.sh
# Runs from any cwd; needs only the in-repo package (no installs).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== conformance stage: batched CLI vs per-query CLI =="
# The pytest-level conformance suite (tests/test_conformance.py) runs
# as part of tier-1 above; this stage proves the same bit-exactness
# end-to-end through the CLI: the identical workload searched with and
# without --batch/--cache must print identical hits.
CONF_DIR="$(mktemp -d -t repro-conf-XXXXXX)"
python - "$CONF_DIR" <<'PY'
import sys

import numpy as np

from repro.sequences import query_set, random_database, write_fasta

rng = np.random.default_rng(5)
root = sys.argv[1]
write_fasta(query_set(6, rng, min_length=30, max_length=90),
            f"{root}/queries.fasta")
write_fasta(random_database(30, 60.0, rng, name="conformance"),
            f"{root}/database.fasta")
PY
python -m repro search "$CONF_DIR/queries.fasta" \
    "$CONF_DIR/database.fasta" --top 5 \
    | grep -v '^# makespan' > "$CONF_DIR/plain.txt"
python -m repro search "$CONF_DIR/queries.fasta" \
    "$CONF_DIR/database.fasta" --top 5 --batch 4 --cache \
    | grep -v '^# makespan' > "$CONF_DIR/batched.txt"
diff "$CONF_DIR/plain.txt" "$CONF_DIR/batched.txt"
python -m repro search "$CONF_DIR/queries.fasta" \
    "$CONF_DIR/database.fasta" --top 5 --screen \
    | grep -v '^# makespan' > "$CONF_DIR/screened.txt"
diff "$CONF_DIR/plain.txt" "$CONF_DIR/screened.txt"
python -m repro simulate --database rat --queries 6 --gpus 1 --sse 2 \
    --batch 3 --cache > /dev/null
rm -rf "$CONF_DIR"
echo "conformance OK: batched and screened hits identical," \
    "batched simulate runs"

echo
echo "== store stage: repro db build/verify + warm-start search =="
STORE_DIR="$(mktemp -d -t repro-store-XXXXXX)"
python - "$STORE_DIR" <<'PY'
import sys

import numpy as np

from repro.sequences import query_set, random_database, write_fasta

rng = np.random.default_rng(11)
root = sys.argv[1]
write_fasta(query_set(4, rng, min_length=30, max_length=80),
            f"{root}/queries.fasta")
write_fasta(random_database(40, 60.0, rng, name="storecheck"),
            f"{root}/database.fasta")
PY
python -m repro db build "$STORE_DIR/database.fasta" \
    --store "$STORE_DIR/packs" --queries "$STORE_DIR/queries.fasta"
python -m repro db verify "$STORE_DIR/packs"
# The warm-start search must emit hits byte-identical to the cold run.
python -m repro search "$STORE_DIR/queries.fasta" \
    "$STORE_DIR/database.fasta" --top 5 \
    | grep -v '^# makespan' > "$STORE_DIR/cold.txt"
python -m repro search "$STORE_DIR/queries.fasta" \
    "$STORE_DIR/database.fasta" --top 5 --store "$STORE_DIR/packs" \
    | grep -v '^# makespan' > "$STORE_DIR/warm.txt"
diff "$STORE_DIR/cold.txt" "$STORE_DIR/warm.txt"
# Negative check: a flipped byte must fail verify AND the warm search.
python - "$STORE_DIR/packs" <<'PY'
import pathlib
import sys

arrays = sorted(pathlib.Path(sys.argv[1], "objects").glob("*.npy"))
if not arrays:
    sys.exit("store has no array files to corrupt")
target = max(arrays, key=lambda p: p.stat().st_size)
data = bytearray(target.read_bytes())
data[len(data) // 2] ^= 0x01
target.write_bytes(bytes(data))
print(f"flipped one byte in {target.name}")
PY
if python -m repro db verify "$STORE_DIR/packs" 2>/dev/null; then
    echo "db verify missed a corrupted array" >&2
    exit 1
fi
if python -m repro search "$STORE_DIR/queries.fasta" \
    "$STORE_DIR/database.fasta" --top 5 --store "$STORE_DIR/packs" \
    > /dev/null 2>&1; then
    echo "warm-start search accepted a corrupted store" >&2
    exit 1
fi
rm -rf "$STORE_DIR"
echo "store OK: warm hits identical, corruption rejected loudly"

echo
echo "== screen stage: two-stage screening on a skewed workload =="
# The screening pipeline's target shape — a dense mass of short
# subjects plus a sparse long tail.  The screened CLI run must print
# hits byte-identical to the exact sweep, a store-backed screened run
# must match both, and the exported counters must prove the screen
# actually skipped work (rescored strictly less than it screened).
SCREEN_DIR="$(mktemp -d -t repro-screen-XXXXXX)"
python - "$SCREEN_DIR" <<'PY'
import sys

import numpy as np

from repro.sequences import (
    PROTEIN,
    Sequence,
    query_set,
    write_fasta,
)

rng = np.random.default_rng(17)
letters = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def seq(i, n):
    residues = "".join(rng.choice(letters, size=int(n)))
    return Sequence(id=f"s{i}", residues=residues, alphabet=PROTEIN)


records = [
    seq(i, n) for i, n in enumerate(rng.integers(30, 60, size=120))
] + [
    seq(120 + i, n) for i, n in enumerate(rng.integers(200, 220, size=6))
]
root = sys.argv[1]
write_fasta(query_set(3, rng, min_length=80, max_length=120),
            f"{root}/queries.fasta")
write_fasta(records, f"{root}/database.fasta")
PY
python -m repro search "$SCREEN_DIR/queries.fasta" \
    "$SCREEN_DIR/database.fasta" --top 5 --gpus 1 --sse 0 \
    | grep -v '^# makespan' > "$SCREEN_DIR/exact.txt"
python -m repro search "$SCREEN_DIR/queries.fasta" \
    "$SCREEN_DIR/database.fasta" --top 5 --gpus 1 --sse 0 --screen \
    --metrics-out "$SCREEN_DIR/metrics.json" \
    | grep -v '^# makespan' | grep -v '^(wrote metrics' \
    > "$SCREEN_DIR/screened.txt"
diff "$SCREEN_DIR/exact.txt" "$SCREEN_DIR/screened.txt"
# Warm start: binned packs from the store, hits still identical.
python -m repro db build "$SCREEN_DIR/database.fasta" \
    --store "$SCREEN_DIR/packs" --screen-lanes 256
python -m repro db verify "$SCREEN_DIR/packs"
python -m repro search "$SCREEN_DIR/queries.fasta" \
    "$SCREEN_DIR/database.fasta" --top 5 --gpus 1 --sse 0 --screen \
    --store "$SCREEN_DIR/packs" \
    | grep -v '^# makespan' > "$SCREEN_DIR/warm.txt"
diff "$SCREEN_DIR/exact.txt" "$SCREEN_DIR/warm.txt"
# The counters must show real filtering on this skewed workload.
python - "$SCREEN_DIR/metrics.json" <<'PY'
import json
import sys

from repro.observability import MetricsRegistry

with open(sys.argv[1], encoding="utf-8") as handle:
    registry = MetricsRegistry.from_snapshot(json.load(handle))
passed = registry.get("screen_pass_total").value
rescored = registry.get("screen_rescore_total").value
saturated = registry.get("screen_saturated_total").value
screened = passed + rescored
subjects, queries = 126, 3
if screened != subjects * queries:
    sys.exit(f"screened {screened} lanes, expected {subjects * queries}")
if not passed:
    sys.exit("screen passed nothing: the filter did no work")
if rescored >= screened:
    sys.exit(f"rescored {rescored} of {screened}: screening saved nothing")
print(f"screen counters OK: {screened} screened, {rescored} rescored "
      f"({saturated} saturated), {passed} skipped the exact kernel")
PY
rm -rf "$SCREEN_DIR"
echo "screen OK: screened + store-backed hits identical, filter engaged"

echo
echo "== observability smoke benchmark =="
METRICS_OUT="$(mktemp -t repro-metrics-XXXXXX.json)"
EVENTS_OUT="$(mktemp -t repro-events-XXXXXX.jsonl)"
TRACE_OUT="$(mktemp -t repro-trace-XXXXXX.json)"
PLAN_OUT="$(mktemp -t repro-plan-XXXXXX.json)"
FAULT_EVENTS="$(mktemp -t repro-fault-events-XXXXXX.jsonl)"
FAULT_TRACE="$(mktemp -t repro-fault-trace-XXXXXX.json)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT" \
    "$PLAN_OUT" "$FAULT_EVENTS" "$FAULT_TRACE"' EXIT
python -m pytest benchmarks/bench_metrics_smoke.py --benchmark-only \
    --benchmark-min-rounds=1 -q --metrics-out "$METRICS_OUT"

echo
echo "== validating metrics snapshot =="
python - "$METRICS_OUT" <<'PY'
import json
import sys

from repro.observability import MetricsRegistry

with open(sys.argv[1], encoding="utf-8") as handle:
    snapshots = json.load(handle)
if not snapshots:
    sys.exit("no snapshots were written")
for name, snapshot in sorted(snapshots.items()):
    registry = MetricsRegistry.from_snapshot(snapshot)
    text = registry.prometheus_text()
    print(f"{name}: {len(registry.names())} metric families, "
          f"{len(text.splitlines())} exposition lines")
print("snapshot validation OK")
PY

echo
echo "== trace analyze round-trip =="
python -m repro simulate --database rat --queries 6 --gpus 1 --sse 2 \
    --events-out "$EVENTS_OUT" > /dev/null
python -m repro trace analyze "$EVENTS_OUT" --format json \
    --out "$TRACE_OUT" > /dev/null
python - "$EVENTS_OUT" "$TRACE_OUT" <<'PY'
import json
import sys

from repro.observability import (
    TRACE_REPORT_METRICS,
    TRACE_REPORT_SCHEMA,
    EventLog,
    analyze_events,
)

events_path, report_path = sys.argv[1:3]
with open(report_path, encoding="utf-8") as handle:
    document = json.load(handle)
if document["schema"] != TRACE_REPORT_SCHEMA:
    sys.exit(f"unexpected schema tag: {document['schema']!r}")
missing = sorted(set(TRACE_REPORT_METRICS) - set(document["metrics"]))
if missing:
    sys.exit(f"trace report is missing metrics: {missing}")
# Re-analyzing the same event log must reproduce the document exactly.
replayed = analyze_events(EventLog.from_jsonl(events_path)).to_document()
if replayed != document:
    sys.exit("trace analyze is not deterministic over the event log")
print(f"trace report OK: {len(document['pes'])} PEs, "
      f"makespan {document['metrics']['makespan_seconds']:.2f}s")
PY

echo
echo "== chaos stage: DES simulator =="
python - "$PLAN_OUT" <<'PY'
import sys

from repro.faults import FaultPlan

plan = FaultPlan.random(["gpu0", "sse0", "sse1"], seed=7, horizon=4.0)
plan.save(sys.argv[1])
print(f"seeded fault plan: {len(plan.crashes)} crash(es), "
      f"{len(plan.stragglers)} straggler(s), "
      f"{len(plan.partitions)} partition(s), "
      f"message rate {plan.messages.total_rate:.2f}")
PY
python -m repro simulate --database rat --queries 6 --gpus 1 --sse 2 \
    --faults "$PLAN_OUT" --events-out "$FAULT_EVENTS" > /dev/null
python -m repro trace analyze "$FAULT_EVENTS" --format json \
    --out "$FAULT_TRACE" > /dev/null
python - "$FAULT_TRACE" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    document = json.load(handle)
faults = document.get("faults")
if not faults:
    sys.exit("trace report has no faults section")
if faults["total_injected"] == 0:
    sys.exit("seeded plan injected no faults")
if faults["released_tasks"] != faults["recovered_tasks"]:
    sys.exit(f"released {faults['released_tasks']} task(s) but only "
             f"{faults['recovered_tasks']} recovered")
print(f"DES chaos OK: {faults['total_injected']} fault(s) injected "
      f"({', '.join(faults['injected'])}), "
      f"{faults['reaps']} reap(s), "
      f"{faults['recovered_tasks']} task(s) recovered")
PY

echo
echo "== chaos stage: threaded runtime + TCP cluster =="
python - <<'PY'
import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.cluster import run_cluster
from repro.core import HybridRuntime, ScanEngine
from repro.faults import CrashFault, FaultPlan
from repro.sequences import query_set, random_database


def hits(results):
    return {
        q: [(h.subject_index, h.score) for h in ranked]
        for q, ranked in results.items()
    }


rng = np.random.default_rng(7)
queries = query_set(4, rng, min_length=20, max_length=40)
database = random_database(16, 50.0, rng, name="chaosdb")
plan = FaultPlan(seed=7, crashes=(CrashFault(pe_id="w1", after_tasks=1),))


def engines():
    return {
        pe: ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
        for pe in ("w0", "w1")
    }


baseline = HybridRuntime(engines()).run(queries, database)
faulted = HybridRuntime(
    engines(), faults=plan, heartbeat_timeout=0.5
).run(queries, database)
assert hits(faulted.results) == hits(baseline.results)
assert any(e["kind"] == "fault_crash" for e in faulted.events)
print("threaded chaos OK: crash recovered, results identical")

workers = {"w0": "scan", "w1": "scan"}
baseline = run_cluster(
    queries, database, dict(workers), use_processes=False, timeout=60
)
faulted = run_cluster(
    queries, database, dict(workers), use_processes=False, timeout=60,
    heartbeat_timeout=0.5, faults=plan,
)
assert hits(faulted.results) == hits(baseline.results)
assert any(e["kind"] == "fault_crash" for e in faulted.events)
print("cluster chaos OK: crash recovered, results identical")
PY

echo
echo "== durability stage: master kill + resume, all environments =="
CKPT_DIR="$(mktemp -d -t repro-ckpt-XXXXXX)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT" \
    "$PLAN_OUT" "$FAULT_EVENTS" "$FAULT_TRACE"; rm -rf "$CKPT_DIR"' EXIT
python - "$CKPT_DIR" <<'PY'
import os
import shutil
import sys

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS
from repro.cluster import run_cluster
from repro.core import HybridRuntime, ScanEngine, Task
from repro.faults import FaultPlan, MasterCrashed, MasterCrashFault
from repro.simulate import HybridSimulator, PESpec, UniformModel

root = sys.argv[1]


def hits(results):
    return {
        q: [(h.subject_index, h.score) for h in ranked]
        for q, ranked in results.items()
    }


# -- DES: modeled master crash + recovery ------------------------------
tasks = [
    Task(task_id=i, query_id=f"q{i}", query_length=300,
         cells=2_000_000_000, query_index=i)
    for i in range(12)
]
platform = [
    PESpec("gpu0", UniformModel(rate=30e9)),
    PESpec("sse0", UniformModel(rate=10e9)),
]
baseline = HybridSimulator(platform).run(list(tasks))
plan = FaultPlan(master_crash=MasterCrashFault(
    at_time=baseline.makespan / 2, recovery_after=0.2,
))
des_dir = os.path.join(root, "des")
report = HybridSimulator(
    platform, faults=plan, checkpoint_dir=des_dir,
).run(list(tasks))
assert sorted(report.results) == sorted(baseline.results)
kinds = [e["kind"] for e in report.events]
assert kinds.count("fault_master_crash") == 1
assert kinds.count("recovery_resume") == 1
restored = {e["task"] for e in report.events
            if e["kind"] == "recovery_task"}
assert restored, "mid-run crash must have recovered finished work"
print(f"DES durability OK: crash at {plan.master_crash.at_time:.2f}s, "
      f"{len(restored)} task(s) restored, all {len(tasks)} finished")

# -- threaded runtime: kill mid-run, resume from the journal -----------
from repro.sequences import query_set, random_database

rng = np.random.default_rng(7)
queries = query_set(6, rng, min_length=20, max_length=40)
database = random_database(25, 50.0, rng, name="durdb")


def engines():
    return {
        pe: ScanEngine(BLOSUM62, DEFAULT_GAPS, chunk_size=8)
        for pe in ("w0", "w1")
    }


thr_dir = os.path.join(root, "threaded")
baseline = HybridRuntime(engines()).run(queries, database)
# The crash is armed on the wall clock, so a fast machine may finish
# the workload before it fires; retry with an earlier kill if so.
for at_time in (0.05, 0.02, 0.005, 0.0):
    shutil.rmtree(thr_dir, ignore_errors=True)
    crash_plan = FaultPlan(master_crash=MasterCrashFault(at_time=at_time))
    try:
        HybridRuntime(
            engines(), faults=crash_plan, checkpoint_dir=thr_dir,
        ).run(queries, database)
    except MasterCrashed:
        break
else:
    sys.exit("master crash never fired, even at at_time=0.0")
resumed = HybridRuntime(
    engines(), checkpoint_dir=thr_dir,
).run(queries, database)
assert hits(resumed.results) == hits(baseline.results)
kinds = [e["kind"] for e in resumed.events]
assert kinds.count("recovery_resume") == 1
restored = {e["task"] for e in resumed.events
            if e["kind"] == "recovery_task"}
assigned = {e["task"] for e in resumed.events
            if e["kind"] in ("assign", "replica")}
assert restored.isdisjoint(assigned), "a restored task was re-executed"
print(f"threaded durability OK: resumed with {len(restored)} restored, "
      f"{len(assigned)} recomputed, results identical")

# -- cluster: run, then a second incarnation adopts the journal --------
cl_dir = os.path.join(root, "cluster")
workers = {"w0": "scan", "w1": "scan"}
first = run_cluster(
    queries, database, dict(workers), use_processes=False, timeout=60,
    checkpoint_dir=cl_dir,
)
assert hits(first.results) == hits(baseline.results)
resumed = run_cluster(
    queries, database, dict(workers), use_processes=False, timeout=60,
    checkpoint_dir=cl_dir,
)
assert hits(resumed.results) == hits(baseline.results)
kinds = [e["kind"] for e in resumed.events]
assert kinds.count("recovery_resume") == 1
assert "assign" not in kinds, "restarted master re-executed work"
print("cluster durability OK: restarted master adopted the journal, "
      "zero tasks re-executed")
PY

echo
echo "== journal verify =="
python -m repro journal verify "$CKPT_DIR/threaded"
python -m repro journal inspect "$CKPT_DIR/cluster" > /dev/null
# Negative check: a flipped byte must be detected.
python - "$CKPT_DIR/threaded/journal.jsonl" <<'PY'
import sys

path = sys.argv[1]
with open(path, "rb") as handle:
    lines = handle.read().split(b"\n")
lines[0] = lines[0][:-4] + b"beef"
with open(path, "wb") as handle:
    handle.write(b"\n".join(lines))
PY
if python -m repro journal verify "$CKPT_DIR/threaded" 2>/dev/null; then
    echo "journal verify missed a corrupted record" >&2
    exit 1
fi
echo "corruption detection OK: flipped byte rejected"

echo
echo "== telemetry stage: live scrape + stream validation =="
TELE_DIR="$(mktemp -d -t repro-tele-XXXXXX)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT" \
    "$PLAN_OUT" "$FAULT_EVENTS" "$FAULT_TRACE"; \
    rm -rf "$CKPT_DIR" "$TELE_DIR"' EXIT
# Live scrape: a real TCP master serving /metrics while a worker runs.
# The strict OpenMetrics parser is the gate — any exposition drift
# (bad escaping, non-cumulative buckets, missing EOF) fails loudly.
python - "$TELE_DIR" <<'PY'
import json
import sys
import threading
import urllib.request

import numpy as np

from repro.cluster import MasterServer, WorkerConfig, run_worker
from repro.core.runtime import build_tasks
from repro.observability import parse_openmetrics
from repro.sequences import query_set, random_database, write_indexed

root = sys.argv[1]
rng = np.random.default_rng(13)
queries = query_set(4, rng, min_length=30, max_length=60)
database = random_database(25, 50.0, rng, name="teledb")
q_path, d_path = f"{root}/q.seqx", f"{root}/d.seqx"
write_indexed(queries, q_path)
write_indexed(list(database), d_path)
server = MasterServer(build_tasks(queries, database), http_port=0)
server.start()
try:
    host, port = server.address
    config = WorkerConfig(host=host, port=port, pe_id="w0", engine="scan",
                          query_path=q_path, database_path=d_path)
    thread = threading.Thread(target=run_worker, args=(config,),
                              daemon=True)
    thread.start()
    # Scrape mid-run: must parse strictly even while counters move.
    with urllib.request.urlopen(server.httpd.url("/metrics"),
                                timeout=10) as response:
        midrun = response.read().decode("utf-8")
    parse_openmetrics(midrun)
    server.wait_finished(timeout=120)
    thread.join(timeout=30)
    with urllib.request.urlopen(server.httpd.url("/metrics"),
                                timeout=10) as response:
        families = parse_openmetrics(response.read().decode("utf-8"))
    samples = families["cluster_worker_connects"]["samples"]
    pes = {dict(key[1]).get("pe") for key in samples}
    if "w0" not in pes:
        sys.exit("worker-side per-PE series missing from /metrics")
    with urllib.request.urlopen(server.httpd.url("/healthz"),
                                timeout=10) as response:
        assert response.read() == b"ok\n"
    with urllib.request.urlopen(server.httpd.url("/statusz"),
                                timeout=10) as response:
        status = json.load(response)
    assert status["schema"] == "repro.status.v1"
finally:
    server.stop()
print(f"live scrape OK: {len(families)} families parsed strictly, "
      "worker series piggybacked, /healthz + /statusz served")
PY
# Stream check: the DES virtual-clock stream's final record must match
# the end-of-run snapshot byte for byte.
python -m repro simulate --database rat --queries 6 --gpus 1 --sse 2 \
    --telemetry-out "$TELE_DIR/sim.jsonl" \
    --metrics-out "$TELE_DIR/sim-metrics.json" > /dev/null
python - "$TELE_DIR/sim.jsonl" "$TELE_DIR/sim-metrics.json" <<'PY'
import json
import sys

from repro.observability import (
    MetricsRegistry,
    read_telemetry,
    replay_telemetry,
)

stream_path, snapshot_path = sys.argv[1:3]
records = read_telemetry(stream_path)  # validates schema + record kinds
kinds = [r["record"] for r in records]
if kinds[0] != "header" or kinds[-1] != "final":
    sys.exit(f"malformed stream: {kinds[:3]}...{kinds[-1:]}")
with open(snapshot_path, encoding="utf-8") as handle:
    snapshot = json.load(handle)
if json.dumps(records[-1]["snapshot"], sort_keys=True) != json.dumps(
    snapshot, sort_keys=True
):
    sys.exit("final telemetry record differs from the run snapshot")
MetricsRegistry.from_snapshot(replay_telemetry(records))  # folds cleanly
print(f"telemetry stream OK: {kinds.count('sample')} virtual-clock "
      "sample(s), final record byte-identical to the run snapshot")
PY

echo
echo "== service stage: latency sweep + live drain under load =="
# Virtual-clock gate: p99 latency stays bounded below saturation and
# the admission layer sheds loudly above it (see
# benchmarks/bench_service_latency.py for the asserted curve).
env PYTHONPATH="$REPO_ROOT/src:$REPO_ROOT/benchmarks" \
    python -m pytest benchmarks/bench_service_latency.py \
    --benchmark-only --benchmark-min-rounds=1 -q
# Live drain-under-load: a service master takes open-loop Poisson
# traffic from `repro loadgen`, then SIGTERM must stop admission,
# finish the in-flight requests, print a final service record and
# exit 0.
SVC_DIR="$(mktemp -d -t repro-svc-XXXXXX)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT" \
    "$PLAN_OUT" "$FAULT_EVENTS" "$FAULT_TRACE"; \
    rm -rf "$CKPT_DIR" "$TELE_DIR" "$SVC_DIR"' EXIT
python - "$SVC_DIR" <<'PY'
import sys

import numpy as np

from repro.sequences import query_set, random_database, write_fasta

rng = np.random.default_rng(29)
root = sys.argv[1]
write_fasta(query_set(3, rng, min_length=30, max_length=60),
            f"{root}/queries.fasta")
write_fasta(random_database(25, 50.0, rng, name="servicedb"),
            f"{root}/database.fasta")
PY
python -m repro serve "$SVC_DIR/queries.fasta" "$SVC_DIR/database.fasta" \
    --service --port 0 --export "$SVC_DIR/export" \
    > "$SVC_DIR/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^master listening on .*:\([0-9][0-9]*\)$/\1/p' \
        "$SVC_DIR/serve.log" | head -n 1)"
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "service master did not come up" >&2
    cat "$SVC_DIR/serve.log" >&2
    exit 1
fi
python -m repro worker --host 127.0.0.1 --port "$PORT" --pe-id w0 \
    --engine scan --queries "$SVC_DIR/export/queries.seqx" \
    --database "$SVC_DIR/export/database.seqx" \
    > "$SVC_DIR/worker.log" 2>&1 &
WORKER_PID=$!
python -m repro loadgen --port "$PORT" --rate 10 --horizon 1.5 \
    --json > "$SVC_DIR/loadgen.json"
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
if [ "$SERVE_RC" -ne 0 ]; then
    echo "service master exited $SERVE_RC after SIGTERM drain" >&2
    cat "$SVC_DIR/serve.log" >&2
    exit 1
fi
wait "$WORKER_PID" || true
python - "$SVC_DIR/loadgen.json" "$SVC_DIR/serve.log" <<'PY'
import json
import sys

loadgen_path, serve_log = sys.argv[1:3]
with open(loadgen_path, encoding="utf-8") as handle:
    report = json.load(handle)
if report["offered"] != report["admitted"] + report["shed_total"]:
    sys.exit(f"loadgen conservation violated: {report}")
if report["completed"] != report["admitted"]:
    sys.exit(f"admitted requests did not all complete: {report}")
with open(serve_log, encoding="utf-8") as handle:
    final = json.loads(handle.read().splitlines()[-1])
if final.get("kind") != "service_final" or not final.get("drained"):
    sys.exit(f"bad final service record: {final}")
if final["requests"]["done"] != report["completed"]:
    sys.exit(f"final record disagrees with loadgen: {final} vs {report}")
print(f"service OK: {report['offered']} offered, "
      f"{report['completed']} completed "
      f"(p99 {report['latency_p99'] * 1000:.0f} ms), "
      f"{report['shed_total']} shed, drain exited 0")
PY

echo
echo "== service recovery stage: kill -9 mid-stream, cold restart =="
# Journal overhead gate: admitting through the service journal (one
# fsync per accepted request) must cost <=5% submit-to-drained wall
# time, and a crashed service must cold-restart byte-identical (see
# benchmarks/bench_service_recovery.py for the asserted run).
env PYTHONPATH="$REPO_ROOT/src:$REPO_ROOT/benchmarks" \
    python -m pytest benchmarks/bench_service_recovery.py \
    --benchmark-only --benchmark-min-rounds=1 -q
# Live crash/restart: a `--service --checkpoint` master takes seeded
# open-loop traffic, dies by kill -9 once admissions are journaled,
# and a fresh process on the same checkpoint directory must finish
# every admitted request with hits byte-identical to the one-shot
# reference search while the loadgen rides over the outage on
# idempotent retries under stable request ids.
RECOV_DIR="$(mktemp -d -t repro-recov-XXXXXX)"
trap 'rm -f "$METRICS_OUT" "$EVENTS_OUT" "$TRACE_OUT" \
    "$PLAN_OUT" "$FAULT_EVENTS" "$FAULT_TRACE"; \
    rm -rf "$CKPT_DIR" "$TELE_DIR" "$SVC_DIR" "$RECOV_DIR"' EXIT
python - "$RECOV_DIR" <<'PY'
import sys

import numpy as np

from repro.sequences import query_set, random_database, write_fasta

rng = np.random.default_rng(31)
root = sys.argv[1]
write_fasta(query_set(3, rng, min_length=30, max_length=60),
            f"{root}/queries.fasta")
write_fasta(random_database(25, 50.0, rng, name="recovdb"),
            f"{root}/database.fasta")
PY
python -m repro serve "$RECOV_DIR/queries.fasta" \
    "$RECOV_DIR/database.fasta" \
    --service --checkpoint "$RECOV_DIR/ckpt" --port 0 \
    --export "$RECOV_DIR/export" \
    > "$RECOV_DIR/serve1.log" 2>&1 &
SERVE1_PID=$!
PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^master listening on .*:\([0-9][0-9]*\)$/\1/p' \
        "$RECOV_DIR/serve1.log" | head -n 1)"
    [ -n "$PORT" ] && break
    sleep 0.1
done
if [ -z "$PORT" ]; then
    echo "service master did not come up" >&2
    cat "$RECOV_DIR/serve1.log" >&2
    exit 1
fi
python -m repro worker --host 127.0.0.1 --port "$PORT" --pe-id w0 \
    --engine scan --queries "$RECOV_DIR/export/queries.seqx" \
    --database "$RECOV_DIR/export/database.seqx" \
    > "$RECOV_DIR/worker1.log" 2>&1 &
WORKER1_PID=$!
python -m repro loadgen --port "$PORT" --rate 12 --horizon 2.5 \
    --seed 37 --retries 8 --request-id-prefix recov \
    --json > "$RECOV_DIR/loadgen.json" &
LOADGEN_PID=$!
# Kill only after the journal holds real admissions, so the restart
# has something to recover; every record line carries its type.
COUNT=0
for _ in $(seq 1 200); do
    COUNT="$(grep -c admit "$RECOV_DIR/ckpt/service.jsonl" \
        2>/dev/null || true)"
    if [ "${COUNT:-0}" -ge 3 ]; then break; fi
    sleep 0.1
done
if [ "${COUNT:-0}" -lt 3 ]; then
    echo "loadgen admissions never reached the service journal" >&2
    exit 1
fi
kill -9 "$SERVE1_PID" 2>/dev/null || true
wait "$SERVE1_PID" 2>/dev/null || true
python - "$RECOV_DIR/ckpt" <<'PY'
import sys

from repro.durability import CheckpointStore

state = CheckpointStore(sys.argv[1]).recover_service()
if not state.requests:
    sys.exit("no admissions survived in the service journal")
print(f"killed -9 with {len(state.requests)} journaled admission(s)")
PY
python -m repro serve "$RECOV_DIR/queries.fasta" \
    "$RECOV_DIR/database.fasta" \
    --service --checkpoint "$RECOV_DIR/ckpt" --port "$PORT" \
    --export "$RECOV_DIR/export2" \
    > "$RECOV_DIR/serve2.log" 2>&1 &
SERVE2_PID=$!
REBOUND=""
for _ in $(seq 1 100); do
    REBOUND="$(sed -n 's/^master listening on .*:\([0-9][0-9]*\)$/\1/p' \
        "$RECOV_DIR/serve2.log" | head -n 1)"
    [ -n "$REBOUND" ] && break
    sleep 0.1
done
if [ "$REBOUND" != "$PORT" ]; then
    echo "restarted master did not rebind port $PORT" >&2
    cat "$RECOV_DIR/serve2.log" >&2
    exit 1
fi
python -m repro worker --host 127.0.0.1 --port "$PORT" --pe-id w1 \
    --engine scan --queries "$RECOV_DIR/export2/queries.seqx" \
    --database "$RECOV_DIR/export2/database.seqx" \
    > "$RECOV_DIR/worker2.log" 2>&1 &
WORKER2_PID=$!
LOADGEN_RC=0
wait "$LOADGEN_PID" || LOADGEN_RC=$?
if [ "$LOADGEN_RC" -ne 0 ]; then
    echo "loadgen exited $LOADGEN_RC across the restart" >&2
    cat "$RECOV_DIR/serve2.log" >&2
    exit 1
fi
python - "$RECOV_DIR" "$PORT" <<'PY'
import json
import sys

import numpy as np

from repro.align import BLOSUM62, DEFAULT_GAPS, database_search
from repro.sequences import SequenceDatabase, query_set
from repro.service import ServiceClient
from repro.simulate.loadgen import poisson_arrivals

root, port = sys.argv[1], int(sys.argv[2])
with open(f"{root}/loadgen.json", encoding="utf-8") as handle:
    report = json.load(handle)
conserved = (report["admitted"] + report["shed_total"]
             + report["unreachable"])
if report["offered"] != conserved:
    sys.exit(f"loadgen conservation violated: {report}")
if report["unreachable"]:
    sys.exit(f"retries exhausted across the restart: {report}")
if report["completed"] != report["admitted"] or not report["admitted"]:
    sys.exit(f"admitted requests did not all complete: {report}")
# Replay the loadgen's seeded synthesis (arrivals first, then the
# query set — exactly run_loadgen's rng order) to learn what each
# stable request id asked for, then diff the restarted master's hits
# against the one-shot reference search.
rng = np.random.default_rng(37)
arrivals = poisson_arrivals(12.0, 2.5, rng)
queries = query_set(max(len(arrivals), 1), rng,
                    min_length=40, max_length=120)
database = SequenceDatabase.from_fasta(
    f"{root}/database.fasta", alphabet=BLOSUM62.alphabet
)
client = ServiceClient("127.0.0.1", port)
done = 0
for index in range(report["offered"]):
    request_id = f"recov-{index:05d}"
    reply = client.poll(request_id)
    if reply.get("type") == "error":
        continue  # shed at admission; never entered the system
    if reply.get("state") != "done":
        sys.exit(f"{request_id} still {reply.get('state')!r} "
                 "after loadgen finished")
    expected = database_search(
        queries[index], database, BLOSUM62, DEFAULT_GAPS, top=5
    ).hits
    if tuple(reply["hits"]) != tuple(expected):
        sys.exit(f"{request_id} hits differ from the one-shot "
                 "reference after the restart")
    done += 1
client.close()
if done != report["completed"]:
    sys.exit(f"polled {done} done requests, loadgen saw "
             f"{report['completed']}")
print(f"recovery OK: {report['offered']} offered, {done} requests "
      f"byte-identical across kill -9, {report['shed_total']} shed")
PY
kill -TERM "$SERVE2_PID"
SERVE2_RC=0
wait "$SERVE2_PID" || SERVE2_RC=$?
if [ "$SERVE2_RC" -ne 0 ]; then
    echo "restarted master exited $SERVE2_RC after SIGTERM drain" >&2
    cat "$RECOV_DIR/serve2.log" >&2
    exit 1
fi
wait "$WORKER1_PID" 2>/dev/null || true
wait "$WORKER2_PID" 2>/dev/null || true
python - "$RECOV_DIR/ckpt" <<'PY'
import sys

from repro.durability import CheckpointStore

state = CheckpointStore(sys.argv[1]).recover_service()
if not state.drained:
    sys.exit("drained restart left the service journal undrained")
print("service journal records the drain; cold state is terminal")
PY

echo
echo "all checks passed"
