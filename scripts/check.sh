#!/usr/bin/env bash
# One-stop local gate: tier-1 test suite, then a short observability
# smoke benchmark that writes a metrics snapshot and validates it.
#
# Usage: scripts/check.sh
# Runs from any cwd; needs only the in-repo package (no installs).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== observability smoke benchmark =="
METRICS_OUT="$(mktemp -t repro-metrics-XXXXXX.json)"
trap 'rm -f "$METRICS_OUT"' EXIT
python -m pytest benchmarks/bench_metrics_smoke.py --benchmark-only \
    --benchmark-min-rounds=1 -q --metrics-out "$METRICS_OUT"

echo
echo "== validating metrics snapshot =="
python - "$METRICS_OUT" <<'PY'
import json
import sys

from repro.observability import MetricsRegistry

with open(sys.argv[1], encoding="utf-8") as handle:
    snapshots = json.load(handle)
if not snapshots:
    sys.exit("no snapshots were written")
for name, snapshot in sorted(snapshots.items()):
    registry = MetricsRegistry.from_snapshot(snapshot)
    text = registry.prometheus_text()
    print(f"{name}: {len(registry.names())} metric families, "
          f"{len(text.splitlines())} exposition lines")
print("snapshot validation OK")
PY

echo
echo "all checks passed"
