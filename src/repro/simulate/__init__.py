"""Hybrid-platform simulation substrate: DES, PE models, load, traces."""

from .des import (
    HybridSimulator,
    PESpec,
    ServiceArrival,
    ServiceSimReport,
    ServiceSimulator,
    SimReport,
    TaskInterval,
    service_arrivals,
)
from .events import EventHandle, EventQueue
from .loadgen import (
    competing_process,
    os_jitter,
    poisson_arrivals,
    step_load,
    uniform_arrivals,
)
from .pe_models import FPGAModel, GPUModel, PEModel, SSECoreModel, UniformModel
from .platform import (
    CONFIGURATIONS,
    fpgas,
    gpus,
    hybrid_platform,
    paper_platform,
    sse_cores,
)
from .metrics import PEUsage, ScheduleMetrics, schedule_metrics
from .network import (
    GIGABIT_ETHERNET,
    SHARED_MEMORY,
    LinkModel,
    MessageSizes,
    NetworkModel,
)
from .svg import gantt_svg, render_gantt_svg, write_gantt_svg
from .trace import binned_rate_series, gantt, rate_series

__all__ = [
    "HybridSimulator",
    "PESpec",
    "SimReport",
    "TaskInterval",
    "EventQueue",
    "EventHandle",
    "ServiceArrival",
    "ServiceSimReport",
    "ServiceSimulator",
    "service_arrivals",
    "step_load",
    "competing_process",
    "os_jitter",
    "poisson_arrivals",
    "uniform_arrivals",
    "PEModel",
    "SSECoreModel",
    "GPUModel",
    "FPGAModel",
    "UniformModel",
    "gpus",
    "sse_cores",
    "fpgas",
    "hybrid_platform",
    "paper_platform",
    "CONFIGURATIONS",
    "gantt",
    "gantt_svg",
    "render_gantt_svg",
    "write_gantt_svg",
    "rate_series",
    "binned_rate_series",
    "PEUsage",
    "ScheduleMetrics",
    "schedule_metrics",
    "LinkModel",
    "NetworkModel",
    "MessageSizes",
    "GIGABIT_ETHERNET",
    "SHARED_MEMORY",
]
