"""External-load generation: capacity profiles and arrival processes.

Section V-C introduces local load by running the compute-intensive
*superpi* benchmark on core 0 after 60 s: the core's GCUPS drop "to
less than a half" while the application competes for the CPU.  These
helpers build the capacity step-profiles that reproduce that experiment
(Fig. 8) and the small OS-service jitter visible even in the dedicated
run (Fig. 7).

The always-on service adds the *demand* side: open-loop arrival
processes (:func:`poisson_arrivals`, :func:`uniform_arrivals`) feed
the DES service model and ``repro loadgen`` — open-loop means clients
submit on their own schedule regardless of how the service is coping,
the regime that actually exposes overload behaviour.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "step_load",
    "competing_process",
    "os_jitter",
    "combine_profiles",
    "poisson_arrivals",
    "uniform_arrivals",
]

LoadProfile = tuple[tuple[float, float], ...]


def combine_profiles(*profiles: LoadProfile) -> LoadProfile:
    """Compose step profiles multiplicatively.

    Independent load sources (a competing process *and* OS jitter)
    each scale the remaining capacity; at any instant the effective
    capacity is the product of every source's current value.  The
    result is a single step profile with a step at every source's step
    time.
    """
    sources = [list(p) for p in profiles if p]
    if not sources:
        return ()
    times = sorted({at for profile in sources for at, _ in profile})
    combined: list[tuple[float, float]] = []
    for at in times:
        capacity = 1.0
        for profile in sources:
            current = 1.0
            for step_at, step_cap in profile:
                if step_at <= at:
                    current = step_cap
                else:
                    break
            capacity *= current
        combined.append((at, capacity))
    return tuple(combined)


def step_load(*steps: tuple[float, float]) -> LoadProfile:
    """Piecewise-constant capacity profile from explicit (time, cap) steps."""
    ordered = tuple(sorted(steps))
    for at, capacity in ordered:
        if at < 0:
            raise ValueError("step times must be non-negative")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
    return ordered


def competing_process(
    start: float,
    capacity: float = 0.45,
    stop: float | None = None,
) -> LoadProfile:
    """One CPU-bound competitor (the superpi model).

    Two runnable threads on one core each get about half of it; the
    default 0.45 reflects the paper's "reduced to less than a half".
    ``stop`` restores full capacity when the competitor exits.
    """
    steps: list[tuple[float, float]] = [(start, capacity)]
    if stop is not None:
        if stop <= start:
            raise ValueError("stop must come after start")
        steps.append((stop, 1.0))
    return step_load(*steps)


def os_jitter(
    duration: float,
    rng: np.random.Generator,
    period: float = 5.0,
    amplitude: float = 0.04,
) -> LoadProfile:
    """Small random capacity dips modelling OS services (Fig. 7).

    Every *period* seconds the capacity is redrawn from
    ``1 - U(0, amplitude)`` — the paper notes "a small variation in the
    GCUPs of each core, probably due to some operating system's
    services" even on a dedicated machine.
    """
    if duration <= 0:
        return ()
    times = np.arange(period, duration, period)
    caps = 1.0 - rng.uniform(0.0, amplitude, size=len(times))
    return tuple((float(t), float(c)) for t, c in zip(times, caps))


def poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator
) -> tuple[float, ...]:
    """Open-loop Poisson arrival times in ``[0, horizon)``.

    ``rate`` is the mean arrival rate λ (requests/second); inter-arrival
    gaps are drawn i.i.d. from ``Exp(λ)``, so the same seeded *rng*
    always produces the same schedule (experiments are replayable).
    A non-positive rate or horizon yields no arrivals; negative values
    are rejected loudly rather than silently emptied.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if rate == 0 or horizon == 0:
        return ()
    arrivals: list[float] = []
    at = 0.0
    while True:
        at += float(rng.exponential(1.0 / rate))
        if at >= horizon:
            return tuple(arrivals)
        arrivals.append(at)


def uniform_arrivals(rate: float, horizon: float) -> tuple[float, ...]:
    """Deterministic evenly-spaced arrivals at *rate* in ``[0, horizon)``.

    The closed-form companion of :func:`poisson_arrivals` for tests
    and capacity calibration: no variance, so a sweep isolates the
    service's queueing behaviour from arrival burstiness.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    if rate == 0 or horizon == 0:
        return ()
    gap = 1.0 / rate
    count = int(np.ceil(horizon * rate)) + 1
    times = tuple(gap * (i + 1) for i in range(count) if gap * (i + 1) < horizon)
    return times
