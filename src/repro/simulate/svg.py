"""SVG rendering of execution schedules (no plotting dependencies).

The ASCII Gantt (:func:`repro.simulate.trace.gantt`) is for terminals;
this module emits a standalone SVG file of the same schedule for
reports and papers — pure string assembly, viewable in any browser.

Won tasks are colored by PE class, lost/cancelled replicas are hatched
gray, and the time axis is labeled; the visual vocabulary mirrors the
paper's Fig. 5.

:func:`render_gantt_svg` consumes any iterable of interval records
with ``pe_id``/``task_id``/``start``/``end``/``outcome`` attributes —
the simulator's :class:`~repro.simulate.des.TaskInterval` and the trace
analyzer's :class:`~repro.observability.ExecutionInterval` alike — so
threaded-runtime and cluster event logs render exactly like simulated
schedules (``repro trace gantt --svg``).
"""

from __future__ import annotations

import html

from .des import SimReport

__all__ = ["render_gantt_svg", "gantt_svg", "write_gantt_svg"]

_ROW_HEIGHT = 26
_ROW_GAP = 8
_LEFT_MARGIN = 90
_TOP_MARGIN = 40
_WIDTH = 860
_AXIS_HEIGHT = 30

_CLASS_COLORS = {
    "gpu": "#4878a8",
    "sse": "#6aa84f",
    "fpga": "#b07aa1",
    "scan": "#c2a878",
}
_DEFAULT_COLOR = "#888888"
_LOST_COLOR = "#bbbbbb"


def _color_for(pe_id: str) -> str:
    for prefix, color in _CLASS_COLORS.items():
        if pe_id.startswith(prefix):
            return color
    return _DEFAULT_COLOR


def render_gantt_svg(intervals, title: str = "") -> str:
    """Render execution intervals as an SVG document string.

    *intervals* is any iterable of records with ``pe_id``, ``task_id``,
    ``start``, ``end`` and ``outcome`` attributes.
    """
    intervals = list(intervals)
    pe_ids = sorted({iv.pe_id for iv in intervals})
    horizon = max((iv.end for iv in intervals), default=1.0)
    if horizon <= 0:
        horizon = 1.0
    plot_width = _WIDTH - _LEFT_MARGIN - 20
    height = (
        _TOP_MARGIN
        + len(pe_ids) * (_ROW_HEIGHT + _ROW_GAP)
        + _AXIS_HEIGHT
    )

    def x(t: float) -> float:
        return _LEFT_MARGIN + t / horizon * plot_width

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_LEFT_MARGIN}" y="20" font-size="14" '
            f'font-weight="bold">{html.escape(title)}</text>'
        )
    rows = {pe: i for i, pe in enumerate(pe_ids)}
    for pe, row in rows.items():
        y = _TOP_MARGIN + row * (_ROW_HEIGHT + _ROW_GAP)
        parts.append(
            f'<text x="{_LEFT_MARGIN - 8}" y="{y + _ROW_HEIGHT - 9}" '
            f'text-anchor="end">{html.escape(pe)}</text>'
        )
        parts.append(
            f'<line x1="{_LEFT_MARGIN}" y1="{y + _ROW_HEIGHT}" '
            f'x2="{_WIDTH - 20}" y2="{y + _ROW_HEIGHT}" '
            f'stroke="#eeeeee"/>'
        )
    for interval in intervals:
        y = _TOP_MARGIN + rows[interval.pe_id] * (_ROW_HEIGHT + _ROW_GAP)
        x0 = x(interval.start)
        width = max(x(interval.end) - x0, 1.0)
        won = interval.outcome == "won"
        color = _color_for(interval.pe_id) if won else _LOST_COLOR
        opacity = "1.0" if won else "0.6"
        parts.append(
            f'<rect x="{x0:.1f}" y="{y}" width="{width:.1f}" '
            f'height="{_ROW_HEIGHT - 4}" fill="{color}" '
            f'fill-opacity="{opacity}" stroke="white" stroke-width="0.5">'
            f"<title>task {interval.task_id} on "
            f"{html.escape(interval.pe_id)}: "
            f"{interval.start:.2f}-{interval.end:.2f}s "
            f"({interval.outcome})</title></rect>"
        )
        if width > 18:
            parts.append(
                f'<text x="{x0 + 3:.1f}" y="{y + _ROW_HEIGHT - 9}" '
                f'fill="white" font-size="10">{interval.task_id}</text>'
            )
    axis_y = _TOP_MARGIN + len(pe_ids) * (_ROW_HEIGHT + _ROW_GAP) + 12
    parts.append(
        f'<line x1="{_LEFT_MARGIN}" y1="{axis_y}" x2="{_WIDTH - 20}" '
        f'y2="{axis_y}" stroke="#333333"/>'
    )
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = fraction * horizon
        parts.append(
            f'<text x="{x(t):.1f}" y="{axis_y + 16}" '
            f'text-anchor="middle">{t:.1f}s</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def gantt_svg(report: "SimReport | list", title: str = "") -> str:
    """Render a report's schedule (or a raw interval list) as SVG."""
    intervals = (
        report.intervals if isinstance(report, SimReport) else report
    )
    return render_gantt_svg(intervals, title=title)


def write_gantt_svg(
    report: "SimReport | list", path: str, title: str = ""
) -> str:
    """Write the SVG to *path*; returns the path for chaining."""
    document = gantt_svg(report, title=title)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
