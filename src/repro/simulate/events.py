"""Deterministic discrete-event queue.

A tiny priority queue specialized for simulation: events are ordered by
``(time, sequence)`` so simultaneous events fire in scheduling order —
which is what makes runs bit-reproducible and lets the Fig. 5
walk-through be asserted exactly.  Cancellation is by handle; cancelled
events stay in the heap but are skipped on pop (lazy deletion).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventHandle", "EventQueue"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry):
        self._entry = entry

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._entry.time

    @property
    def active(self) -> bool:
        """False once cancelled."""
        return not self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (lazy deletion)."""
        self._entry.cancelled = True


class EventQueue:
    """Time-ordered action queue with lazy cancellation."""

    def __init__(self):
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(
        self, time: float, action: Callable[[], None]
    ) -> EventHandle:
        """Enqueue *action* to fire at *time* (>= now)."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry = _Entry(time=max(time, self._now), seq=next(self._counter),
                       action=action)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Process events in order; returns the final simulation time.

        Stops when the queue drains or the next event is later than
        *until*.  ``max_events`` is a runaway guard — simulations here
        are finite by construction, so hitting it indicates a bug.
        """
        processed = 0
        while self._heap:
            entry = self._heap[0]
            if entry.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and entry.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = entry.time
            entry.action()
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    "event budget exhausted; simulation is not terminating"
                )
        return self._now
