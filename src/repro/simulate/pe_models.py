"""Calibrated performance models of the paper's processing elements.

The evaluation hardware (NVidia GTX 580 GPUs running CUDASW++ 2.0 and
Intel i7 SSE cores running the adapted Farrar kernel) is replaced by
throughput models whose constants are calibrated against the paper's
published aggregates:

* **SSE core** — Farrar-class engines sustain a nearly constant rate on
  database search; the paper reports 7,190 s for 40 queries (~102,000
  residues) against SwissProt on one core, which pins the rate at
  ~2.8 GCUPS.  A small per-task overhead models the master round-trip
  plus database streaming.
* **GPU (CUDASW++ 2.0 on GTX 580)** — throughput grows with query
  length (CUDASW++'s published curves saturate beyond a few hundred
  residues) and each task pays a large fixed cost, because the paper
  *encapsulates* CUDASW++ — every task is a full program invocation
  that reloads and converts the database.  This is what makes GPUs
  "obtain much better GCUPs ... for huge databases" (Table IV): the
  overhead amortizes over 16x more residues on SwissProt than on the
  Ensembl/RefSeq proteomes.

The models are pure functions of a :class:`~repro.core.task.Task`
(cells + query length), so the simulator stays independent of residue
content.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.task import Task

__all__ = ["PEModel", "SSECoreModel", "GPUModel", "FPGAModel", "UniformModel"]


class PEModel(abc.ABC):
    """Throughput model of one processing element."""

    #: Display / platform-builder class ("sse", "gpu", ...).
    pe_class: str = "generic"

    @abc.abstractmethod
    def task_rate(self, task: Task) -> float:
        """Sustained DP-cell throughput on *task*, in cells/second."""

    @abc.abstractmethod
    def task_overhead(self, task: Task) -> float:
        """Fixed per-task cost in seconds (launch, I/O, round-trip)."""

    def work_units(self, task: Task) -> float:
        """Task size in cell-equivalents, folding overhead into cells.

        The simulator tracks one scalar of remaining work per task so
        that capacity changes mid-task (the non-dedicated experiments)
        re-schedule cleanly; overhead is converted at the task's rate.
        """
        return task.cells + self.task_overhead(task) * self.task_rate(task)

    def task_seconds(self, task: Task) -> float:
        """Duration at full capacity (convenience for tests/benches)."""
        return self.work_units(task) / self.task_rate(task)


@dataclass(frozen=True)
class SSECoreModel(PEModel):
    """One SSE core running the adapted Farrar kernel.

    ``gcups`` defaults to the calibration described in the module
    docstring.  ``query_half_length`` models the mild short-query
    penalty of striped kernels (segment setup dominates tiny queries).
    """

    gcups: float = 2.8
    overhead_seconds: float = 0.02
    query_half_length: float = 25.0

    pe_class = "sse"

    def task_rate(self, task: Task) -> float:
        q = max(1, task.query_length)
        efficiency = q / (q + self.query_half_length)
        return self.gcups * 1e9 * efficiency

    def task_overhead(self, task: Task) -> float:
        return self.overhead_seconds


@dataclass(frozen=True)
class GPUModel(PEModel):
    """One GTX 580 running encapsulated CUDASW++ 2.0.

    Per task: a fixed launch cost (process + CUDA context), a
    database-size-proportional load/convert cost, and compute at
    ``peak_gcups`` scaled by a saturating query-length efficiency.
    """

    peak_gcups: float = 50.0
    launch_seconds: float = 1.0
    load_seconds_per_residue: float = 3.0e-9
    query_half_length: float = 150.0

    pe_class = "gpu"

    def task_rate(self, task: Task) -> float:
        q = max(1, task.query_length)
        efficiency = q / (q + self.query_half_length)
        return self.peak_gcups * 1e9 * efficiency

    def task_overhead(self, task: Task) -> float:
        database_residues = task.cells / max(1, task.query_length)
        return (
            self.launch_seconds
            + self.load_seconds_per_residue * database_residues
        )


@dataclass(frozen=True)
class FPGAModel(PEModel):
    """A Smith-Waterman FPGA accelerator (the paper's future work).

    Modelled after Meng & Chaudhary's platform (the paper's ref. [13]):
    a deeply pipelined systolic array with very high raw throughput but
    a hard limit on the query length it can hold.  Longer queries are
    *segmented with overlap*, which multiplies the cell count by the
    overlap factor (and, on real hardware, costs sensitivity — which is
    why [13] routes long sequences to the CPU instead).

    ``task_rate`` therefore degrades smoothly for queries beyond
    ``max_query_length``; per task there is a bitstream/buffer
    reconfiguration cost.
    """

    peak_gcups: float = 25.0
    max_query_length: int = 1024
    segment_overlap: int = 128
    reconfigure_seconds: float = 0.5

    pe_class = "fpga"

    def segments(self, query_length: int) -> int:
        """Number of (overlapping) segments a query is split into."""
        if query_length <= self.max_query_length:
            return 1
        usable = self.max_query_length - self.segment_overlap
        return 1 + -(-(query_length - self.max_query_length) // usable)

    def task_rate(self, task: Task) -> float:
        q = max(1, task.query_length)
        segments = self.segments(q)
        # Overlapped segmentation recomputes segment_overlap columns per
        # extra segment: effective useful-cell rate drops accordingly.
        padded = q + (segments - 1) * self.segment_overlap
        return self.peak_gcups * 1e9 * (q / padded)

    def task_overhead(self, task: Task) -> float:
        return self.reconfigure_seconds * self.segments(task.query_length)


@dataclass(frozen=True)
class UniformModel(PEModel):
    """Constant-rate PE with zero overhead.

    Used by the didactic scenarios (the paper's Fig. 5 assumes a GPU
    exactly 6x faster than an SSE core with negligible communication)
    and by the policy microbenchmarks.
    """

    rate: float  # cells (work units) per second
    pe_class_name: str = "uniform"

    @property
    def pe_class(self) -> str:  # type: ignore[override]
        return self.pe_class_name

    def task_rate(self, task: Task) -> float:
        return self.rate

    def task_overhead(self, task: Task) -> float:
        return 0.0
