"""Platform builders: compose PEs into the paper's test environments.

The evaluation platform (Section V) is two hosts on Gigabit Ethernet,
each with 2 NVidia GTX 580 GPUs and one Intel i7 (4 SSE cores).  These
helpers build that platform — and every sub-configuration the tables
sweep (1/2/4/8 SSE cores; 1/2/4 GPUs; the five hybrid combinations) —
as lists of :class:`~repro.simulate.des.PESpec`.
"""

from __future__ import annotations

from .des import PESpec
from .pe_models import FPGAModel, GPUModel, PEModel, SSECoreModel

__all__ = [
    "gpus",
    "sse_cores",
    "fpgas",
    "hybrid_platform",
    "paper_platform",
    "CONFIGURATIONS",
]


def gpus(
    count: int, model: GPUModel | None = None, host: str = "host0"
) -> list[PESpec]:
    """``count`` GPU PEs named ``gpu0..`` on *host*."""
    if count < 0:
        raise ValueError("count must be non-negative")
    model = model or GPUModel()
    return [PESpec(f"gpu{i}", model, host=host) for i in range(count)]


def sse_cores(
    count: int,
    model: SSECoreModel | None = None,
    load_profiles: dict[int, tuple[tuple[float, float], ...]] | None = None,
    host: str = "host0",
) -> list[PESpec]:
    """``count`` SSE-core PEs named ``sse0..``, optionally with load.

    ``load_profiles`` maps core indices to capacity step profiles — the
    non-dedicated experiments put a superpi-style profile on core 0.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    model = model or SSECoreModel()
    profiles = load_profiles or {}
    return [
        PESpec(f"sse{i}", model, load_profile=profiles.get(i, ()), host=host)
        for i in range(count)
    ]


def fpgas(count: int, model: FPGAModel | None = None) -> list[PESpec]:
    """``count`` FPGA PEs named ``fpga0..`` (future-work integration)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    model = model or FPGAModel()
    return [PESpec(f"fpga{i}", model) for i in range(count)]


def hybrid_platform(
    num_gpus: int,
    num_sse: int,
    num_fpgas: int = 0,
    gpu_model: GPUModel | None = None,
    sse_model: SSECoreModel | None = None,
    fpga_model: FPGAModel | None = None,
) -> list[PESpec]:
    """``num_gpus`` GPUs + ``num_sse`` SSE cores (+ optional FPGAs)."""
    return (
        gpus(num_gpus, gpu_model)
        + sse_cores(num_sse, sse_model)
        + fpgas(num_fpgas, fpga_model)
    )


def paper_platform() -> list[PESpec]:
    """The full Section V platform: 4 GPUs + 4 SSE cores on two hosts.

    Each host contributes 2 GPUs; the master and the 4 SSE cores (one
    i7's worth) live on host0, so gpu2/gpu3 sit across the Gigabit
    Ethernet link when a :class:`~repro.simulate.network.NetworkModel`
    is in play.
    """
    specs = hybrid_platform(4, 4)
    return [
        PESpec(
            spec.pe_id,
            spec.model,
            load_profile=spec.load_profile,
            host="host1" if spec.pe_id in ("gpu2", "gpu3") else "host0",
        )
        for spec in specs
    ]


#: The execution configurations of Fig. 6, in presentation order.
CONFIGURATIONS: tuple[tuple[str, int, int], ...] = (
    ("1GPU", 1, 0),
    ("1GPU+4SSEs", 1, 4),
    ("2GPUs", 2, 0),
    ("2GPUs+4SSEs", 2, 4),
    ("4GPUs", 4, 0),
    ("4GPUs+4SSEs", 4, 4),
)
