"""Network model: message-size-aware communication costs.

The paper's platform is "2 hosts interconnected by Gigabit Ethernet";
slaves on the master's own host talk over shared memory, slaves on the
other host pay wire latency plus serialization time.  This module
models both with the classic linear cost model

.. math::

   t(bytes) = \\alpha + bytes / \\beta

(per-message latency ``alpha``, bandwidth ``beta``), plus the message
sizes of the master/slave protocol so the simulator can charge each
interaction accurately instead of using one flat constant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkModel",
    "NetworkModel",
    "GIGABIT_ETHERNET",
    "SHARED_MEMORY",
    "MessageSizes",
]


@dataclass(frozen=True)
class LinkModel:
    """One link's linear cost model."""

    latency_seconds: float
    bandwidth_bytes_per_second: float
    name: str = "link"

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_seconds(self, message_bytes: int) -> float:
        """One-way cost of a *message_bytes*-sized message."""
        if message_bytes < 0:
            raise ValueError("message size must be non-negative")
        return (
            self.latency_seconds
            + message_bytes / self.bandwidth_bytes_per_second
        )


#: Gigabit Ethernet with typical kernel/NIC latency (the paper's wire).
GIGABIT_ETHERNET = LinkModel(
    latency_seconds=120e-6,
    bandwidth_bytes_per_second=118e6,  # ~1 Gbit/s payload rate
    name="gigabit-ethernet",
)

#: Same-host master/slave interaction (pipe / shared memory).
SHARED_MEMORY = LinkModel(
    latency_seconds=4e-6,
    bandwidth_bytes_per_second=6e9,
    name="shared-memory",
)


@dataclass(frozen=True)
class MessageSizes:
    """Wire sizes of the protocol messages (JSON-line measurements)."""

    request: int = 64
    per_task: int = 128
    progress: int = 96
    per_hit: int = 72
    top_hits: int = 10

    @property
    def result(self) -> int:
        """Bytes of one completed-task result message."""
        return 64 + self.per_hit * self.top_hits


@dataclass(frozen=True)
class NetworkModel:
    """Host-aware communication costs for the master/slave protocol.

    The master lives on ``master_host``; slaves on that host use the
    ``local`` link, every other slave uses ``remote``.
    """

    local: LinkModel = SHARED_MEMORY
    remote: LinkModel = GIGABIT_ETHERNET
    master_host: str = "host0"
    sizes: MessageSizes = MessageSizes()

    def link_for(self, host: str) -> LinkModel:
        """The link a slave on *host* uses to reach the master."""
        return self.local if host == self.master_host else self.remote

    def request_seconds(self, host: str) -> float:
        """Slave -> master task request (one way)."""
        return self.link_for(host).transfer_seconds(self.sizes.request)

    def assignment_seconds(self, host: str, num_tasks: int) -> float:
        """Master -> slave assignment delivery."""
        payload = self.sizes.request + self.sizes.per_task * max(1, num_tasks)
        return self.link_for(host).transfer_seconds(payload)

    def progress_seconds(self, host: str) -> float:
        """Slave -> master progress-notification cost."""
        return self.link_for(host).transfer_seconds(self.sizes.progress)

    def result_seconds(self, host: str) -> float:
        """Slave -> master completed-task result upload."""
        return self.link_for(host).transfer_seconds(self.sizes.result)
