"""Schedule quality metrics derived from a simulation report.

The paper argues about *load balance* — these helpers quantify it:
per-PE busy time and utilization, the work wasted on cancelled/lost
replicas (the price of the adjustment mechanism), and the imbalance of
the finishing times (the tail the mechanism removes).
"""

from __future__ import annotations

from dataclasses import dataclass

from .des import SimReport

__all__ = ["PEUsage", "ScheduleMetrics", "schedule_metrics"]


@dataclass(frozen=True)
class PEUsage:
    """Busy-time accounting for one PE."""

    pe_id: str
    busy_seconds: float
    useful_seconds: float  # intervals that won their task
    wasted_seconds: float  # lost or cancelled replica intervals
    last_finish: float

    @property
    def efficiency(self) -> float:
        """Useful fraction of busy time (1.0 = no replica waste)."""
        return self.useful_seconds / self.busy_seconds if self.busy_seconds else 1.0


@dataclass(frozen=True)
class ScheduleMetrics:
    """Whole-run schedule quality."""

    makespan: float
    per_pe: dict[str, PEUsage]

    @property
    def mean_utilization(self) -> float:
        """Mean busy/makespan over PEs (1.0 = perfectly packed)."""
        if not self.per_pe or self.makespan <= 0:
            return 0.0
        return sum(
            usage.busy_seconds / self.makespan
            for usage in self.per_pe.values()
        ) / len(self.per_pe)

    @property
    def replica_waste_fraction(self) -> float:
        """Wasted busy time / total busy time across the platform."""
        busy = sum(u.busy_seconds for u in self.per_pe.values())
        wasted = sum(u.wasted_seconds for u in self.per_pe.values())
        return wasted / busy if busy else 0.0

    @property
    def finish_spread(self) -> float:
        """Latest minus earliest per-PE finishing time — the tail."""
        finishes = [
            u.last_finish for u in self.per_pe.values() if u.last_finish > 0
        ]
        if len(finishes) < 2:
            return 0.0
        return max(finishes) - min(finishes)


def schedule_metrics(report: SimReport) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` from a simulation report."""
    busy: dict[str, float] = {}
    useful: dict[str, float] = {}
    wasted: dict[str, float] = {}
    last: dict[str, float] = {}
    for pe_id in report.tasks_won:
        busy[pe_id] = useful[pe_id] = wasted[pe_id] = 0.0
        last[pe_id] = 0.0
    for interval in report.intervals:
        duration = interval.end - interval.start
        busy.setdefault(interval.pe_id, 0.0)
        useful.setdefault(interval.pe_id, 0.0)
        wasted.setdefault(interval.pe_id, 0.0)
        last.setdefault(interval.pe_id, 0.0)
        busy[interval.pe_id] += duration
        if interval.outcome == "won":
            useful[interval.pe_id] += duration
        else:
            wasted[interval.pe_id] += duration
        last[interval.pe_id] = max(last[interval.pe_id], interval.end)
    per_pe = {
        pe_id: PEUsage(
            pe_id=pe_id,
            busy_seconds=busy[pe_id],
            useful_seconds=useful[pe_id],
            wasted_seconds=wasted[pe_id],
            last_finish=last[pe_id],
        )
        for pe_id in busy
    }
    return ScheduleMetrics(makespan=report.makespan, per_pe=per_pe)
