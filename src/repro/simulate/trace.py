"""Trace rendering: ASCII Gantt charts and per-PE rate series.

The paper presents its scheduling behaviour visually — Fig. 5 is a
task-per-PE Gantt chart, Figs. 7/8 are per-core GCUPS time series.
These helpers turn a :class:`~repro.simulate.des.SimReport` into the
text equivalents the benchmark harness prints.
"""

from __future__ import annotations

from .des import SimReport, TaskInterval

__all__ = ["gantt", "rate_series", "binned_rate_series"]


def gantt(
    report: "SimReport | list",
    width: int = 72,
    label_width: int = 8,
) -> str:
    """Render the run as an ASCII Gantt chart (one row per PE).

    Winning task intervals print their task id digits, lost/cancelled
    replicas print ``x`` — making the workload-adjustment mechanism's
    duplicated tails directly visible, as in Fig. 5.

    Accepts a :class:`SimReport` or any list of interval records with
    ``pe_id``/``task_id``/``start``/``end``/``outcome`` attributes
    (e.g. the trace analyzer's reconstruction of a runtime or cluster
    event log).
    """
    intervals = (
        report.intervals if isinstance(report, SimReport) else list(report)
    )
    if not intervals:
        return "(empty run)"
    horizon = max(iv.end for iv in intervals)
    if horizon <= 0:
        return "(zero-length run)"
    scale = width / horizon
    rows: dict[str, list[str]] = {}
    for interval in intervals:
        row = rows.setdefault(interval.pe_id, [" "] * width)
        start = int(interval.start * scale)
        end = max(start + 1, int(interval.end * scale))
        marker = _marker(interval)
        for col in range(start, min(end, width)):
            row[col] = marker
    lines = [
        f"{pe_id:<{label_width}}|{''.join(cells)}|"
        for pe_id, cells in sorted(rows.items())
    ]
    padding = max(0, width - 12)
    axis = f"{'':<{label_width}} 0{'':<{padding}}{horizon:10.1f}s"
    return "\n".join(lines + [axis])


def _marker(interval: TaskInterval) -> str:
    if interval.outcome != "won":
        return "x"
    return str(interval.task_id % 10)


def rate_series(
    report: SimReport, pe_id: str, to_gcups: bool = True
) -> list[tuple[float, float]]:
    """(time, rate) samples for one PE from its progress notifications."""
    factor = 1e-9 if to_gcups else 1.0
    return [
        (time, rate * factor)
        for time, rate in report.progress_series(pe_id)
    ]


def binned_rate_series(
    report: SimReport,
    pe_id: str,
    bin_seconds: float = 5.0,
    to_gcups: bool = True,
) -> list[tuple[float, float]]:
    """Rate series averaged into fixed time bins (smooths Fig. 7/8).

    Bins with no samples (idle PE) are reported as zero rate, making
    starvation visible instead of silently interpolated away.
    """
    samples = rate_series(report, pe_id, to_gcups=to_gcups)
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if not samples:
        return []
    horizon = max(t for t, _ in samples)
    bins = int(horizon / bin_seconds) + 1
    sums = [0.0] * bins
    counts = [0] * bins
    for time, rate in samples:
        index = min(int(time / bin_seconds), bins - 1)
        sums[index] += rate
        counts[index] += 1
    return [
        (
            (index + 0.5) * bin_seconds,
            sums[index] / counts[index] if counts[index] else 0.0,
        )
        for index in range(bins)
    ]
