"""Discrete-event simulator of the hybrid platform.

Runs the *actual* :class:`~repro.core.master.Master` — same policies,
same workload-adjustment mechanism, same traces — against virtual PEs
whose speeds come from the calibrated models in
:mod:`repro.simulate.pe_models`.  This is the substitution that lets the
benchmarks regenerate every table and figure of the paper at full
published scale (tens of teracells) on a laptop: scheduling decisions
are real, only the DP arithmetic is replaced by its exact cell count.

Semantics mirrored from the paper's environment:

* slaves register, then ask for work; the first allocation is whatever
  the policy grants with no history (one task);
* slaves notify progress every ``notify_interval`` seconds (the PSS
  input stream);
* a slave executes its assigned batch sequentially and asks for more
  when the batch drains;
* when no ready task exists the master hands out replicas of executing
  tasks (if adjustment is on); the first finisher wins and the master
  cancels the losers, which abort at once and ask for more work;
* communication costs ``comm_latency`` per hop (Gigabit Ethernet scale);
* non-dedicated load (the superpi experiment) is a per-PE piecewise-
  constant capacity multiplier that re-times in-flight work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.master import Master, TraceEvent
from ..core.policies import AllocationPolicy, PackageWeightedSelfScheduling
from ..core.task import Task, TaskResult
from ..durability import CheckpointStore, restore_into, workload_fingerprint
from ..faults import FaultInjector, FaultPlan
from ..observability import (
    EventLog,
    MetricsRegistry,
    TelemetryWriter,
    finalize_run_metrics,
)
from .events import EventHandle, EventQueue
from .network import NetworkModel
from .pe_models import PEModel

__all__ = [
    "PESpec",
    "TaskInterval",
    "SimReport",
    "HybridSimulator",
    "ServiceArrival",
    "ServiceSimReport",
    "ServiceSimulator",
    "service_arrivals",
]


@dataclass(frozen=True)
class PESpec:
    """One simulated processing element.

    ``load_profile`` is a sequence of ``(time, capacity)`` steps; the PE
    runs at ``capacity`` (1.0 = dedicated) from each step time until the
    next.  An empty profile means fully dedicated.

    ``join_time``/``leave_time`` model platform churn (the paper's
    future-work scenario): the PE registers with the master at
    ``join_time`` and deregisters at ``leave_time`` — any tasks it still
    holds are released back to the ready queue, so no work is lost.

    ``host`` locates the PE for the optional host-aware network model
    (the paper's two hosts on Gigabit Ethernet).
    """

    pe_id: str
    model: PEModel
    load_profile: tuple[tuple[float, float], ...] = ()
    join_time: float = 0.0
    leave_time: float | None = None
    host: str = "host0"

    def __post_init__(self) -> None:
        if self.join_time < 0:
            raise ValueError("join_time must be non-negative")
        if self.leave_time is not None and self.leave_time <= self.join_time:
            raise ValueError("leave_time must come after join_time")


@dataclass(frozen=True)
class TaskInterval:
    """One PE-task execution interval (drives the Gantt renderings)."""

    pe_id: str
    task_id: int
    start: float
    end: float
    outcome: str  # "won" | "lost" | "cancelled"


@dataclass
class SimReport:
    """Everything a benchmark needs from one simulated run."""

    makespan: float
    total_cells: int
    tasks_won: dict[str, int]
    replicas_assigned: int
    intervals: list[TaskInterval]
    trace: list[TraceEvent]
    policy_name: str
    adjustment: bool
    results: dict[int, TaskResult] = field(default_factory=dict)
    #: Metrics snapshot (``repro.metrics.v1``); same metric names as the
    #: threaded runtime, timestamped in virtual seconds.
    metrics: dict = field(default_factory=dict)
    #: The unified structured event log backing :attr:`trace`.
    events: EventLog = field(default_factory=EventLog)

    @property
    def gcups(self) -> float:
        """Aggregate useful throughput: total cells / makespan / 1e9."""
        return self.total_cells / self.makespan / 1e9 if self.makespan else 0.0

    def progress_series(self, pe_id: str) -> list[tuple[float, float]]:
        """(time, cells/s) samples of one PE — the Fig. 7/8 time series."""
        return [
            (event.time, event.value)
            for event in self.trace
            if event.kind == "progress" and event.pe_id == pe_id
        ]

    def to_json(self) -> str:
        """Serialize the report for external analysis/plotting tools.

        Includes the summary, per-PE wins, every task interval and the
        full master trace; progress samples carry their raw cells/s
        rates.
        """
        import json

        return json.dumps(
            {
                "makespan": self.makespan,
                "total_cells": self.total_cells,
                "gcups": self.gcups,
                "policy": self.policy_name,
                "adjustment": self.adjustment,
                "replicas_assigned": self.replicas_assigned,
                "tasks_won": self.tasks_won,
                "intervals": [
                    {
                        "pe": iv.pe_id,
                        "task": iv.task_id,
                        "start": iv.start,
                        "end": iv.end,
                        "outcome": iv.outcome,
                    }
                    for iv in self.intervals
                ],
                "trace": [
                    {
                        "kind": e.kind,
                        "time": e.time,
                        "pe": e.pe_id,
                        "task": e.task_id,
                        "value": e.value,
                    }
                    for e in self.trace
                ],
            },
            indent=2,
        )


class _SimPE:
    """Runtime state of one virtual PE."""

    __slots__ = (
        "spec", "capacity", "queue", "current", "total_work", "done_work",
        "rate", "task_start", "last_update", "processed", "last_reported",
        "completion", "finished", "intervals", "fault_factor",
        "tasks_completed",
    )

    def __init__(self, spec: PESpec):
        self.spec = spec
        self.capacity = 1.0
        self.fault_factor = 1.0  # straggler slow-down multiplier
        self.tasks_completed = 0  # local completions (drives crash-after-N)
        self.queue: deque[Task] = deque()
        self.current: Task | None = None
        self.total_work = 0.0
        self.done_work = 0.0
        self.rate = 0.0  # work units per second at current capacity
        self.task_start = 0.0
        self.last_update = 0.0
        self.processed = 0.0  # cumulative work units, feeds notifications
        self.last_reported = 0.0
        self.completion: EventHandle | None = None
        self.finished = False
        self.intervals: list[TaskInterval] = []

    @property
    def pe_id(self) -> str:
        """The PE identifier from the spec."""
        return self.spec.pe_id


class HybridSimulator:
    """Simulate one workload on a set of PE specs.

    Parameters default to the paper's environment: PSS policy,
    adjustment on, half-second progress notifications, and a 1 ms
    master round-trip hop.
    """

    def __init__(
        self,
        pes: list[PESpec],
        policy: AllocationPolicy | None = None,
        adjustment: bool = True,
        omega: int = 8,
        comm_latency: float = 0.001,
        notify_interval: float = 0.5,
        retry_interval: float = 0.25,
        network: "NetworkModel | None" = None,
        master_service_time: float = 0.0,
        checkpoint_replicas: bool = False,
        faults: FaultPlan | None = None,
        heartbeat_timeout: float | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_sync_every: int = 1,
        checkpoint_compact_every: int = 0,
        batch: int = 1,
        telemetry_path: str | None = None,
        telemetry_interval: float = 1.0,
    ):
        if not pes:
            raise ValueError("at least one PE is required")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        ids = [spec.pe_id for spec in pes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate PE ids")
        self.specs = list(pes)
        self.policy = policy or PackageWeightedSelfScheduling()
        self.adjustment = adjustment
        self.omega = omega
        self.comm_latency = comm_latency
        self.notify_interval = notify_interval
        self.retry_interval = retry_interval
        #: Optional host-aware message-cost model; when set it replaces
        #: the flat ``comm_latency`` for requests, deliveries and result
        #: uploads.
        self.network = network
        #: CPU time the master spends handling one task request.  The
        #: master is a single serial resource: overlapping requests
        #: queue behind each other, which is what eventually bottlenecks
        #: per-task policies (SS) on large platforms.
        if master_service_time < 0:
            raise ValueError("master_service_time must be non-negative")
        self.master_service_time = master_service_time
        #: Ablation knob (beyond the paper): when True, a replica starts
        #: from the most-advanced executor's checkpoint instead of from
        #: scratch — the idealized "task migration" upper bound on what
        #: the replication mechanism could gain if tasks were
        #: checkpointable.
        self.checkpoint_replicas = checkpoint_replicas
        #: Optional seed-deterministic fault plan; crashes, stragglers,
        #: message faults and partitions become scheduled events.
        self.faults = faults
        #: Reap slaves silent for this long (virtual seconds).  ``None``
        #: enables ``10 x notify_interval`` whenever faults are
        #: injected; ``0`` disables reaping (a crash with no reaper can
        #: strand tasks and the run will fail loudly).
        self.heartbeat_timeout = heartbeat_timeout
        #: Journal master state under this directory (virtual-time runs
        #: journal too: the records are what makes the ``master_crash``
        #: fault recoverable, and an aborted run's directory resumes).
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_sync_every = checkpoint_sync_every
        self.checkpoint_compact_every = checkpoint_compact_every
        #: Minimum tasks per non-empty grant (see ``Master(batch=...)``).
        #: A simulated slave still executes its batch sequentially, so
        #: batching here models the amortized request round-trips, not a
        #: kernel-level speedup.
        self.batch = batch
        #: Append a ``repro.telemetry.v1`` JSONL stream sampled on the
        #: *virtual* clock every ``telemetry_interval`` simulated
        #: seconds — an hour-long simulated trajectory costs
        #: milliseconds of wall time.
        self.telemetry_path = telemetry_path
        if telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        self.telemetry_interval = telemetry_interval

    # ------------------------------------------------------------------
    def run(self, tasks: list[Task]) -> SimReport:
        """Simulate the workload to completion; returns the report.

        Registers every (non-late-joining) PE, pumps the event queue
        until it drains, then derives the makespan, per-PE wins, task
        intervals and trace from the master's records.
        """
        queue = EventQueue()
        metrics = MetricsRegistry()
        events = EventLog()
        store: CheckpointStore | None = None
        workload = workload_fingerprint(list(tasks))
        if self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir,
                sync_every=self.checkpoint_sync_every,
                compact_every=self.checkpoint_compact_every,
            )
            recovered = store.open(workload)
        if (
            self.faults is not None
            and self.faults.master_crash is not None
            and store is None
        ):
            raise ValueError(
                "a master_crash fault requires checkpoint_dir: without a "
                "journal there is nothing for the replacement master to "
                "recover from"
            )
        master = Master(
            list(tasks),
            policy=self.policy,
            adjustment=self.adjustment,
            omega=self.omega,
            metrics=metrics,
            events=events,
            journal=store,
            batch=self.batch,
        )
        if store is not None and not recovered.empty:
            restore_into(master, recovered, now=0.0)
        pes = {spec.pe_id: _SimPE(spec) for spec in self.specs}
        injector = None
        heartbeat = self.heartbeat_timeout
        if self.faults is not None:
            injector = FaultInjector(
                self.faults, events=events, clock=lambda: queue.now
            )
            if heartbeat is None:
                heartbeat = 10 * self.notify_interval
        state = _RunState(
            queue, master, pes, self, injector, heartbeat or 0.0,
            tasks=list(tasks), store=store, workload=workload,
        )

        if injector is not None:
            if self.faults.master_crash is not None:
                queue.schedule(
                    self.faults.master_crash.at_time, state.on_master_crash
                )
            for crash in self.faults.crashes:
                pe = pes.get(crash.pe_id)
                if pe is not None and crash.at_time is not None:
                    queue.schedule(
                        crash.at_time, lambda p=pe: state.on_crash(p)
                    )
            for straggler in self.faults.stragglers:
                pe = pes.get(straggler.pe_id)
                if pe is None:
                    continue
                queue.schedule(
                    straggler.start, lambda p=pe: state.on_straggle(p)
                )
                if straggler.end is not None:
                    queue.schedule(
                        straggler.end, lambda p=pe: state.on_straggle(p)
                    )
        if heartbeat:
            queue.schedule(heartbeat / 4, state.on_reap)

        writer: TelemetryWriter | None = None
        if self.telemetry_path is not None:
            # Clock-agnostic sampling: the writer is driven by virtual-
            # time events, not a thread.  The tick reads the master via
            # ``state`` (a crash replaces ``state.master`` but keeps the
            # registry) and stops rescheduling once the workload is
            # finished so the event queue can drain.
            writer = TelemetryWriter(
                self.telemetry_path,
                metrics.snapshot,
                lambda: queue.now,
                interval=self.telemetry_interval,
                environment="des",
            )

            def telemetry_tick() -> None:
                assert writer is not None
                if state.master.finished:
                    return
                writer.sample()
                queue.schedule(
                    queue.now + writer.interval, telemetry_tick
                )

            queue.schedule(self.telemetry_interval, telemetry_tick)

        for spec in self.specs:
            pe = pes[spec.pe_id]
            if spec.join_time <= 0:
                master.register(spec.pe_id, 0.0)
                queue.schedule(
                    state._uplink(pe), lambda p=pe: state.on_request(p)
                )
                queue.schedule(
                    self.notify_interval, lambda p=pe: state.on_notify(p)
                )
            else:
                queue.schedule(
                    spec.join_time, lambda p=pe: state.on_join(p)
                )
            if spec.leave_time is not None:
                queue.schedule(
                    spec.leave_time, lambda p=pe: state.on_leave(p)
                )
            for at, capacity in spec.load_profile:
                queue.schedule(
                    at, lambda p=pe, c=capacity: state.on_load(p, c)
                )
        try:
            queue.run()
        finally:
            if state.store is not None:
                state.store.close()

        # A master crash replaces state.master mid-run; everything below
        # must look at the surviving master and the stitched trace.
        master = state.master
        full_trace = state.trace_prefix + list(master.trace)
        if not master.finished:
            raise RuntimeError("simulation drained without finishing tasks")
        makespan = max(
            (e.time for e in full_trace if e.kind == "complete" and e.value),
            default=0.0,
        )
        intervals: list[TaskInterval] = []
        for pe in pes.values():
            intervals.extend(pe.intervals)
        tasks_won = {spec.pe_id: 0 for spec in self.specs}
        for task_id in master.results:
            winner = master.pool.finished_by(task_id)
            assert winner is not None
            tasks_won[winner] += 1
        replicas = sum(1 for e in full_trace if e.kind == "replica")
        total_cells = sum(t.cells for t in tasks)
        finalize_run_metrics(metrics, makespan, total_cells)
        if writer is not None:
            # After finalize, so the stream's ``final`` record matches
            # the report's ``repro.metrics.v1`` snapshot byte for byte.
            writer.close()
        return SimReport(
            makespan=makespan,
            total_cells=total_cells,
            tasks_won=tasks_won,
            replicas_assigned=replicas,
            intervals=sorted(intervals, key=lambda iv: (iv.start, iv.pe_id)),
            trace=full_trace,
            policy_name=getattr(self.policy, "name", "custom"),
            adjustment=self.adjustment,
            results=dict(master.results),
            metrics=metrics.snapshot(),
            events=events,
        )


class _RunState:
    """Event handlers binding the master to the virtual PEs."""

    def __init__(
        self,
        queue: EventQueue,
        master: Master,
        pes: dict[str, _SimPE],
        config: HybridSimulator,
        injector: FaultInjector | None = None,
        heartbeat: float = 0.0,
        tasks: list[Task] | None = None,
        store: CheckpointStore | None = None,
        workload: dict | None = None,
    ):
        self.queue = queue
        self.master = master
        self.pes = pes
        self.config = config
        self.injector = injector
        self.heartbeat = heartbeat
        self.tasks = tasks if tasks is not None else []
        self.store = store
        self.workload = workload
        #: Trace of masters that crashed, stitched before the survivor's.
        self.trace_prefix: list[TraceEvent] = []
        #: The master is unreachable until this virtual time (a
        #: ``master_crash`` fault fired and recovery is in progress).
        self.master_down_until = 0.0
        self._master_free_at = 0.0  # serial master-CPU availability
        self._pending_restarts = 0  # keeps the reaper alive across gaps

    def _master_down(self) -> bool:
        return self.queue.now < self.master_down_until

    # -- communication costs ----------------------------------------------
    def _uplink(self, pe: _SimPE) -> float:
        """Slave -> master message cost (request)."""
        network = self.config.network
        if network is None:
            return self.config.comm_latency
        return network.request_seconds(pe.spec.host)

    def _downlink(self, pe: _SimPE, num_tasks: int) -> float:
        """Master -> slave assignment delivery cost."""
        network = self.config.network
        if network is None:
            return self.config.comm_latency
        return network.assignment_seconds(pe.spec.host, num_tasks)

    def _upload(self, pe: _SimPE) -> float:
        """Slave -> master result upload cost (0 under the flat model,
        which charges only the request/delivery hops, preserving the
        paper's 'negligible communication' scenarios)."""
        network = self.config.network
        if network is None:
            return 0.0
        return network.result_seconds(pe.spec.host)

    # -- bookkeeping ----------------------------------------------------
    def _advance(self, pe: _SimPE) -> None:
        """Accrue work done by the in-flight task up to the current time."""
        now = self.queue.now
        if pe.current is not None and pe.rate > 0:
            delta = (now - pe.last_update) * pe.rate
            usable = min(delta, pe.total_work - pe.done_work)
            pe.done_work += usable
            pe.processed += usable
        pe.last_update = now

    def _schedule_completion(self, pe: _SimPE) -> None:
        assert pe.current is not None
        if pe.completion is not None:
            pe.completion.cancel()
            pe.completion = None
        if pe.rate <= 0:
            return  # stalled until capacity returns
        remaining = max(0.0, pe.total_work - pe.done_work)
        task = pe.current
        pe.completion = self.queue.schedule(
            self.queue.now + remaining / pe.rate + self._upload(pe),
            lambda p=pe, t=task: self.on_complete(p, t),
        )

    def _start_next(self, pe: _SimPE) -> None:
        if pe.current is not None or not pe.queue:
            return
        task = pe.queue.popleft()
        model = pe.spec.model
        pe.current = task
        pe.total_work = model.work_units(task)
        pe.done_work = 0.0
        if self.config.checkpoint_replicas:
            pe.done_work = pe.total_work * self._checkpoint_fraction(
                task, exclude=pe
            )
        pe.rate = model.task_rate(task) * pe.capacity * pe.fault_factor
        pe.task_start = self.queue.now
        pe.last_update = self.queue.now
        self._schedule_completion(pe)

    def _checkpoint_fraction(self, task, exclude: _SimPE) -> float:
        """Progress fraction of the task's most-advanced other executor.

        Only meaningful under ``checkpoint_replicas``: an idealized
        migration hands the replica the winner-so-far's checkpoint.
        """
        best = 0.0
        for other in self.pes.values():
            if other is exclude or other.current is None:
                continue
            if other.current.task_id != task.task_id:
                continue
            self._advance(other)
            if other.total_work > 0:
                best = max(best, other.done_work / other.total_work)
        return min(best, 1.0)

    def _become_idle(self, pe: _SimPE) -> None:
        if pe.queue:
            self._start_next(pe)
        else:
            self.queue.schedule(
                self.queue.now + self._uplink(pe),
                lambda p=pe: self.on_request(p),
            )

    # -- event handlers ---------------------------------------------------
    def on_request(self, pe: _SimPE) -> None:
        """An idle slave asks the master for work.

        With faults injected the request first crosses the transport
        gate: partitioned PEs retry once the window heals, dropped or
        corrupted requests retry after ``retry_interval`` (the slave
        gets no reply and asks again), delayed requests arrive late.
        """
        if pe.finished:
            return
        if self.injector is not None:
            now = self.queue.now
            wait = self.injector.partition_remaining(pe.pe_id, now)
            if wait > 0:
                self.queue.schedule(
                    now + wait + self._uplink(pe),
                    lambda p=pe: self.on_request(p),
                )
                return
            action = self.injector.message_action(
                pe.pe_id, "request", now,
                allow=("drop", "delay", "corrupt"),
            )
            if action in ("drop", "corrupt"):
                self.queue.schedule(
                    now + self.config.retry_interval,
                    lambda p=pe: self.on_request(p),
                )
                return
            if action == "delay":
                self.queue.schedule(
                    now + self.injector.delay_seconds,
                    lambda p=pe: self._do_request(p),
                )
                return
        self._do_request(pe)

    def _do_request(self, pe: _SimPE) -> None:
        """The request actually reaches the master."""
        if pe.finished:
            return
        if self._master_down():
            # No reply from a dead master: the slave retries once the
            # replacement is back up.
            self.queue.schedule(
                self.master_down_until + self._uplink(pe),
                lambda p=pe: self.on_request(p),
            )
            return
        if (
            self.injector is not None
            and not self.master.is_registered(pe.pe_id)
        ):
            # The reaper deregistered this PE while it was partitioned
            # or its messages were lost; it simply rejoins.
            self.master.register(pe.pe_id, self.queue.now)
        assignment = self.master.on_request(pe.pe_id, self.queue.now)
        if assignment.done:
            pe.finished = True
            return
        if assignment.empty:
            self.queue.schedule(
                self.queue.now + self.config.retry_interval,
                lambda p=pe: self.on_request(p),
            )
            return
        pe.queue.extend(assignment.tasks)
        pe.queue.extend(assignment.replicas)
        granted = len(assignment.tasks) + len(assignment.replicas)
        # Preparing an allocation costs serial master CPU (reading the
        # indexed files, packaging tasks); concurrent grants queue
        # behind each other.  Idle polls are trivial lookups and are
        # not charged — the paper's master "waits" alongside idle
        # slaves rather than re-planning for them.
        now = self.queue.now
        service = self.config.master_service_time
        if service > 0:
            start = max(now, self._master_free_at)
            self._master_free_at = start + service
            ready_at = self._master_free_at
        else:
            ready_at = now
        # Delivery hop back to the slave before execution starts.
        self.queue.schedule(
            ready_at + self._downlink(pe, granted),
            lambda p=pe: self._start_next(p),
        )

    def on_complete(self, pe: _SimPE, task: Task) -> None:
        """A slave finishes (or loses the race for) a task.

        The local completion (the PE's own bookkeeping) is separated
        from the delivery of the result to the master so the transport
        gate can drop, duplicate, delay or defer the upload; the PE
        moves on to its next task either way.
        """
        self._advance(pe)
        pe.done_work = pe.total_work  # authoritative at completion time
        now = self.queue.now
        pe.tasks_completed += 1
        result = TaskResult(
            task_id=task.task_id,
            pe_id=pe.pe_id,
            elapsed=max(now - pe.task_start, 1e-12),
            cells=task.cells,
        )
        start, end = pe.task_start, now
        pe.current = None
        pe.completion = None
        crash_now = (
            self.injector is not None
            and self.injector.crash_due(pe.pe_id, now, pe.tasks_completed)
        )
        self._send_complete(pe, task, result, start, end, {"recorded": False})
        if crash_now:
            self.on_crash(pe)
            return
        self._become_idle(pe)

    def _send_complete(
        self,
        pe: _SimPE,
        task: Task,
        result: TaskResult,
        start: float,
        end: float,
        pending: dict,
    ) -> None:
        """Transport gate for the result upload (at-least-once).

        A dropped/corrupted upload is retransmitted after
        ``retry_interval``; a partitioned PE's upload is held until the
        window heals; a PE that crashed before its deferred upload left
        the host loses the result entirely (the reaper recovers the
        task).  ``pending`` makes the execution interval recorded
        exactly once even when the message is duplicated.
        """
        now = self.queue.now
        if self.injector is not None:
            if self.injector.crashed(pe.pe_id):
                return  # died with the result still on the host
            wait = self.injector.partition_remaining(pe.pe_id, now)
            if wait > 0:
                self.queue.schedule(
                    now + wait + self._upload(pe),
                    lambda: self._send_complete(
                        pe, task, result, start, end, pending
                    ),
                )
                return
            action = self.injector.message_action(
                pe.pe_id, "complete", now,
                allow=("drop", "duplicate", "delay", "corrupt"),
            )
            if action in ("drop", "corrupt"):
                self.queue.schedule(
                    now + self.config.retry_interval,
                    lambda: self._send_complete(
                        pe, task, result, start, end, pending
                    ),
                )
                return
            if action == "delay":
                self.queue.schedule(
                    now + self.injector.delay_seconds,
                    lambda: self._deliver_complete(
                        pe, task, result, start, end, pending
                    ),
                )
                return
            if action == "duplicate":
                self._deliver_complete(pe, task, result, start, end, pending)
        self._deliver_complete(pe, task, result, start, end, pending)

    def _deliver_complete(
        self,
        pe: _SimPE,
        task: Task,
        result: TaskResult,
        start: float,
        end: float,
        pending: dict,
    ) -> None:
        """The result reaches the master; first delivery decides the race."""
        if self._master_down():
            # The upload bounced off a dead master; the slave holds the
            # result and retransmits after recovery (at-least-once), so
            # work finished during the outage is adopted, not redone.
            self.queue.schedule(
                self.master_down_until + self._upload(pe),
                lambda: self._deliver_complete(
                    pe, task, result, start, end, pending
                ),
            )
            return
        losers = self.master.on_complete(pe.pe_id, result, self.queue.now)
        won = self.master.pool.finished_by(task.task_id) == pe.pe_id
        if not pending["recorded"]:
            pending["recorded"] = True
            pe.intervals.append(
                TaskInterval(
                    pe_id=pe.pe_id,
                    task_id=task.task_id,
                    start=start,
                    end=end,
                    outcome="won" if won else "lost",
                )
            )
        for loser_id in losers:
            self._cancel(self.pes[loser_id], task.task_id)

    def _cancel(self, pe: _SimPE, task_id: int) -> None:
        """Master-initiated cancellation of a losing replica."""
        if (
            self.injector is not None
            and self.injector.partitioned(pe.pe_id, self.queue.now)
        ):
            # The cancel message cannot reach a partitioned PE: it
            # keeps computing and its eventual completion arrives
            # stale, exactly as on a real network.
            return
        if pe.current is not None and pe.current.task_id == task_id:
            self._advance(pe)
            if pe.completion is not None:
                pe.completion.cancel()
                pe.completion = None
            pe.intervals.append(
                TaskInterval(
                    pe_id=pe.pe_id,
                    task_id=task_id,
                    start=pe.task_start,
                    end=self.queue.now,
                    outcome="cancelled",
                )
            )
            self.master.on_cancelled(pe.pe_id, task_id, self.queue.now)
            pe.current = None
            self._become_idle(pe)
            return
        for queued in list(pe.queue):
            if queued.task_id == task_id:
                pe.queue.remove(queued)
                self.master.on_cancelled(pe.pe_id, task_id, self.queue.now)
                if pe.current is None and not pe.queue:
                    # The cancellation emptied an idle PE's queue (its
                    # granted replica lost the race before delivery);
                    # without a fresh request the PE would stall forever.
                    self._become_idle(pe)
                return

    def on_notify(self, pe: _SimPE) -> None:
        """Periodic progress notification (the PSS input stream).

        Samples lost to drops or partitions are not retransmitted —
        the next successful notification reports the accumulated delta,
        which is exactly how a cumulative progress counter behaves.
        """
        if pe.finished:
            return
        self._advance(pe)
        now = self.queue.now
        delta = pe.processed - pe.last_reported
        # A down master hears nothing; the next sample after recovery
        # carries the accumulated delta.
        deliver = delta > 0 and not self._master_down()
        if deliver and self.injector is not None:
            if self.injector.partition_remaining(pe.pe_id, now) > 0:
                deliver = False
            else:
                action = self.injector.message_action(
                    pe.pe_id, "progress", now,
                    allow=("drop", "duplicate", "delay", "corrupt"),
                )
                if action in ("drop", "corrupt"):
                    deliver = False
                elif action == "delay":
                    deliver = False
                    pe.last_reported = pe.processed
                    interval = self.config.notify_interval
                    self.queue.schedule(
                        now + self.injector.delay_seconds,
                        lambda p=pe, d=delta, i=interval: (
                            self.master.on_progress(
                                p.pe_id, self.queue.now, d, i
                            )
                        ),
                    )
                elif action == "duplicate":
                    self.master.on_progress(
                        pe.pe_id, now, delta, self.config.notify_interval
                    )
        if deliver:
            self.master.on_progress(
                pe.pe_id, now, delta, self.config.notify_interval
            )
            pe.last_reported = pe.processed
        self.queue.schedule(
            now + self.config.notify_interval,
            lambda p=pe: self.on_notify(p),
        )

    def on_join(self, pe: _SimPE) -> None:
        """Platform churn: a PE arrives mid-run and registers."""
        if self.master.finished:
            pe.finished = True
            return
        if self._master_down():
            self.queue.schedule(
                self.master_down_until, lambda p=pe: self.on_join(p)
            )
            return
        now = self.queue.now
        self.master.register(pe.pe_id, now)
        self.queue.schedule(
            now + self._uplink(pe), lambda p=pe: self.on_request(p)
        )
        self.queue.schedule(
            now + self.config.notify_interval, lambda p=pe: self.on_notify(p)
        )

    def on_leave(self, pe: _SimPE) -> None:
        """Platform churn: a PE departs; its tasks go back to READY."""
        if pe.finished:
            return
        pe.finished = True  # stops notify/request events
        if pe.completion is not None:
            pe.completion.cancel()
            pe.completion = None
        if pe.current is not None:
            self._advance(pe)
            pe.intervals.append(
                TaskInterval(
                    pe_id=pe.pe_id,
                    task_id=pe.current.task_id,
                    start=pe.task_start,
                    end=self.queue.now,
                    outcome="cancelled",
                )
            )
            pe.current = None
        pe.queue.clear()
        if self.master.is_registered(pe.pe_id):
            # A recovered master may not have heard from this PE yet (it
            # re-registers on its next request); nothing to retire then.
            self.master.deregister(pe.pe_id, self.queue.now)

    def on_load(self, pe: _SimPE, capacity: float) -> None:
        """External-load step: re-time the in-flight task (superpi model)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._advance(pe)
        pe.capacity = capacity
        if pe.current is not None:
            pe.rate = (
                pe.spec.model.task_rate(pe.current)
                * capacity
                * pe.fault_factor
            )
            self._schedule_completion(pe)

    # -- fault handlers ---------------------------------------------------
    def on_crash(self, pe: _SimPE) -> None:
        """Injected crash: the PE dies silently, mid-task or not.

        Unlike :meth:`on_leave` there is no goodbye to the master — its
        tasks stay EXECUTING until the heartbeat reaper notices the
        silence and releases them, which is the whole recovery path
        this layer exists to exercise.
        """
        if pe.finished or self.injector is None:
            return
        now = self.queue.now
        if not self.injector.mark_crashed(pe.pe_id, now):
            return
        pe.finished = True
        if pe.completion is not None:
            pe.completion.cancel()
            pe.completion = None
        if pe.current is not None:
            self._advance(pe)
            pe.intervals.append(
                TaskInterval(
                    pe_id=pe.pe_id,
                    task_id=pe.current.task_id,
                    start=pe.task_start,
                    end=now,
                    outcome="cancelled",
                )
            )
            pe.current = None
        pe.queue.clear()
        spec = self.injector.crash_spec(pe.pe_id)
        if spec is not None and spec.restart_after is not None:
            self._pending_restarts += 1
            self.queue.schedule(
                now + spec.restart_after, lambda p=pe: self.on_restart(p)
            )

    def on_restart(self, pe: _SimPE) -> None:
        """A crashed PE comes back as a fresh incarnation."""
        if self._master_down():
            self.queue.schedule(
                self.master_down_until, lambda p=pe: self.on_restart(p)
            )
            return
        self._pending_restarts -= 1
        if self.master.finished:
            return
        now = self.queue.now
        self.injector.mark_restarted(pe.pe_id, now)
        if self.master.is_registered(pe.pe_id):
            # The reaper never noticed the crash; retire the stale
            # incarnation (releasing any tasks it still held) first.
            self.master.deregister(pe.pe_id, now, reason="restart")
        self.master.register(pe.pe_id, now)
        pe.finished = False
        pe.current = None
        pe.completion = None
        pe.queue.clear()
        pe.tasks_completed = 0
        self.queue.schedule(
            now + self._uplink(pe), lambda p=pe: self.on_request(p)
        )
        self.queue.schedule(
            now + self.config.notify_interval,
            lambda p=pe: self.on_notify(p),
        )

    def on_straggle(self, pe: _SimPE) -> None:
        """A straggler window opens or closes: re-time in-flight work."""
        if self.injector is None:
            return
        self._advance(pe)
        pe.fault_factor = self.injector.rate_factor(
            pe.pe_id, self.queue.now
        )
        if pe.current is not None and not pe.finished:
            pe.rate = (
                pe.spec.model.task_rate(pe.current)
                * pe.capacity
                * pe.fault_factor
            )
            self._schedule_completion(pe)

    def on_master_crash(self) -> None:
        """The plan's ``master_crash`` fault fires: the brain dies.

        Every in-memory structure of the current master is lost; only
        the journal survives.  The outage window ``[now, now +
        recovery_after)`` bounces all slave traffic (gates in
        :meth:`_do_request`, :meth:`_deliver_complete`, :meth:`on_notify`
        and friends), after which :meth:`on_master_recover` rebuilds a
        replacement from the checkpoint directory.
        """
        if self.master.finished:
            return  # nothing left to lose
        fault = self.config.faults.master_crash
        now = self.queue.now
        self.injector.record("master_crash", time=now)
        self.master_down_until = now + fault.recovery_after
        self.queue.schedule(self.master_down_until, self.on_master_recover)

    def on_master_recover(self) -> None:
        """A replacement master recovers from the journal and takes over.

        The old master's trace is stitched into :attr:`trace_prefix`
        (it happened; the report keeps it), its metrics/event log carry
        over — they model persistent telemetry sinks — and every
        journaled winning result is restored, so finished tasks are
        never re-executed.  Slaves re-register lazily on their next
        request, exactly like reaped PEs.
        """
        now = self.queue.now
        dead = self.master
        self.trace_prefix.extend(dead.trace)
        self.store.close()
        store = CheckpointStore(
            self.config.checkpoint_dir,
            sync_every=self.config.checkpoint_sync_every,
            compact_every=self.config.checkpoint_compact_every,
        )
        recovered = store.open(self.workload)
        replacement = Master(
            list(self.tasks),
            policy=self.config.policy,
            adjustment=self.config.adjustment,
            omega=self.config.omega,
            metrics=dead.metrics,
            events=dead.events,
            journal=store,
            batch=self.config.batch,
        )
        restore_into(replacement, recovered, now=now)
        self.master = replacement
        self.store = store

    def on_reap(self) -> None:
        """Periodic heartbeat sweep: deregister silent PEs.

        Stops rescheduling itself once the workload finished, or once
        every PE is gone with no restart pending (the run can then only
        drain — and fail loudly — rather than spin forever).
        """
        if self.master.finished:
            return
        if not self._master_down():
            # A dead master reaps nobody; the replacement starts with a
            # clean slate anyway (no PE is registered until it speaks).
            self.master.reap_silent(self.queue.now, self.heartbeat)
        if (
            all(p.finished for p in self.pes.values())
            and self._pending_restarts == 0
        ):
            return
        self.queue.schedule(
            self.queue.now + self.heartbeat / 4, self.on_reap
        )


# ----------------------------------------------------------------------
# Always-on service model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceArrival:
    """One request offered to the simulated service.

    ``deadline`` is *relative* seconds from the arrival instant, the
    same convention as the wire protocol; ``cells`` defaults to
    ``query_length * database_residues`` of the run.
    """

    time: float
    tenant: str = "default"
    query_id: str = ""
    query_length: int = 100
    cells: int | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("arrival time must be non-negative")
        if self.query_length <= 0:
            raise ValueError("query_length must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


def service_arrivals(
    rate: float,
    horizon: float,
    rng,
    tenants: tuple[str, ...] = ("default",),
    min_length: int = 40,
    max_length: int = 120,
    deadline: float | None = None,
) -> tuple[ServiceArrival, ...]:
    """Seeded open-loop Poisson request stream for the service model.

    The virtual-clock counterpart of
    :func:`repro.service.client.run_loadgen`'s schedule: arrival times
    from :func:`~repro.simulate.loadgen.poisson_arrivals`, query
    lengths uniform in ``[min_length, max_length]``, tenants assigned
    round-robin.  Same seed, same stream — sweeps are replayable.
    """
    from .loadgen import poisson_arrivals

    times = poisson_arrivals(rate, horizon, rng)
    if not times:
        return ()
    lengths = rng.integers(min_length, max_length + 1, size=len(times))
    return tuple(
        ServiceArrival(
            time=at,
            tenant=tenants[index % len(tenants)],
            query_id=f"q{index:05d}",
            query_length=int(lengths[index]),
            deadline=deadline,
        )
        for index, at in enumerate(times)
    )


@dataclass
class ServiceSimReport:
    """Outcome of one virtual-clock service run."""

    offered: int
    admitted: int
    #: Shed counts by reason (``queue_full`` / ``backlog`` / ``draining``).
    shed: dict[str, int]
    #: Terminal request states (admitted = completed+expired+cancelled).
    completed: int
    expired: int
    cancelled: int
    #: Virtual time the drain finished (last outstanding request done).
    drained_at: float
    #: tenant -> submit-to-done latencies of completed requests.
    latencies: dict[str, list[float]]
    requests: dict
    trace: list[TraceEvent]
    metrics: dict
    events: EventLog
    #: Arrivals that found the master dead (a ``master_crash`` outage):
    #: not offered to admission at all, so neither admitted nor shed.
    unreachable: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def latency_quantile(self, q: float, tenant: str | None = None) -> float:
        """Latency quantile over completed requests (0.0 when none)."""
        import numpy as np

        if tenant is None:
            values = [v for vs in self.latencies.values() for v in vs]
        else:
            values = list(self.latencies.get(tenant, ()))
        if not values:
            return 0.0
        return float(np.quantile(np.asarray(values, dtype=float), q))

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "completed": self.completed,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "unreachable": self.unreachable,
            "drained_at": self.drained_at,
            "latency_p50": self.latency_quantile(0.50),
            "latency_p99": self.latency_quantile(0.99),
        }


class _ServiceRunState(_RunState):
    """Run state plus the service brain: arrivals, ticks, drain.

    The admission logic lives in :class:`~repro.service.core.ServiceCore`
    — the exact object the threaded front-end and the cluster server
    drive — so shed decisions, deadline semantics and drain behaviour
    are identical across environments by construction.
    """

    def __init__(self, *args, service, **kwargs):
        super().__init__(*args, **kwargs)
        self.service = service
        self.offered = 0
        self.admitted_cells = 0
        self.shed: dict[str, int] = {}
        self.drained_at: float | None = None
        #: Arrivals during a master outage: the front door is simply
        #: gone (connection refused), which is neither an admission nor
        #: a shed decision — the report buckets them separately.
        self.unreachable = 0

    def service_tick(self) -> None:
        if self._master_down():
            return
        actions = self.service.tick(self.queue.now)
        for pe_id, task_id in actions.cancels:
            pe = self.pes.get(pe_id)
            if pe is not None:
                self._cancel(pe, task_id)
        if self.service.drained and self.drained_at is None:
            self.drained_at = self.queue.now

    def on_arrival(self, arrival: ServiceArrival) -> None:
        now = self.queue.now
        self.offered += 1
        if self._master_down():
            self.unreachable += 1
            return
        deadline = (
            None if arrival.deadline is None else now + arrival.deadline
        )
        cells = arrival.cells
        if cells is None:
            cells = arrival.query_length * self.config.database_residues
        outcome = self.service.submit(
            arrival.tenant,
            arrival.query_id or f"q{self.offered:05d}",
            arrival.query_length,
            cells,
            now,
            deadline=deadline,
        )
        if outcome.accepted:
            self.admitted_cells += cells
            if deadline is not None:
                # Exact-expiry tick: the request is retired (and its
                # executors interrupted) the instant its deadline
                # passes, not at the next completion or sweep.
                self.queue.schedule(deadline, self.service_tick)
        else:
            reason = outcome.reason or "unknown"
            self.shed[reason] = self.shed.get(reason, 0) + 1

    def on_drain(self) -> None:
        if self._master_down():
            # The drain request bounces off the dead master too; retry
            # the moment the replacement is up.
            self.queue.schedule(self.master_down_until, self.on_drain)
            return
        self.service.drain(self.queue.now)
        self.service_tick()

    def on_sweep(self) -> None:
        """Periodic service tick — progress without request traffic."""
        self.service_tick()
        if self.service.drained:
            return
        self.queue.schedule(
            self.queue.now + self.config.notify_interval, self.on_sweep
        )

    def _deliver_complete(self, pe, task, result, start, end, pending):
        super()._deliver_complete(pe, task, result, start, end, pending)
        # Finalize immediately: the request flips to ``done`` at the
        # completion instant, and the freed window refills.
        self.service_tick()

    def on_master_recover(self) -> None:
        """Cold-restart the service master from the journal pair.

        Extends the base recovery with the service journal: a fresh
        :class:`~repro.service.core.ServiceCore` is rebuilt via
        :meth:`~repro.service.core.ServiceCore.recover` — requests the
        dead service had finished readopt their journaled results,
        unfinished ones re-enter the fair queue with their original
        deadlines, and ones that expired during the outage are
        cancelled loudly.  Nothing is carried over in memory.
        """
        from ..service.core import ServiceCore

        now = self.queue.now
        dead = self.master
        self.trace_prefix.extend(dead.trace)
        self.store.close()
        store = CheckpointStore(
            self.config.checkpoint_dir,
            sync_every=self.config.checkpoint_sync_every,
            compact_every=self.config.checkpoint_compact_every,
        )
        recovered = store.open(self.workload)
        replacement = Master(
            [],
            policy=self.config.policy,
            adjustment=self.config.adjustment,
            omega=self.config.omega,
            metrics=dead.metrics,
            events=dead.events,
            journal=store,
            batch=self.config.batch,
        )
        restore_into(replacement, recovered, now=now)
        self.master = replacement
        self.store = store
        self.service = ServiceCore.recover(
            replacement,
            store,
            self.service.config,
            now=now,
            results={r.task_id: r for r in recovered.results()},
        )
        if self.service.drained and self.drained_at is None:
            self.drained_at = now


class ServiceSimulator(HybridSimulator):
    """Virtual-clock model of the always-on service.

    Replaces the fixed workload of :meth:`HybridSimulator.run` with an
    open-loop arrival stream feeding the *real*
    :class:`~repro.service.core.ServiceCore` on the *real*
    :class:`~repro.core.master.Master`: admission, weighted fair
    dequeue, backlog shedding, deadlines and drain all execute the
    production code paths — only the DP arithmetic is replaced by its
    cell count, so a λ sweep over an hour of simulated service costs
    milliseconds.

    ``database_residues`` sizes each request's matrix
    (``query_length * database_residues`` cells).  The run always ends
    in a drain — at ``drain_at``, or right after the last arrival — and
    fails loudly if the drain cannot complete (e.g. every PE crashed
    with no restart).
    """

    def __init__(self, *args, database_residues: int = 100_000, **kwargs):
        super().__init__(*args, **kwargs)
        if database_residues <= 0:
            raise ValueError("database_residues must be positive")
        self.database_residues = database_residues

    def run_service(
        self,
        arrivals,
        service=None,
        drain_at: float | None = None,
    ) -> ServiceSimReport:
        from ..service.core import ServiceConfig, ServiceCore

        arrivals = sorted(arrivals, key=lambda a: a.time)
        queue = EventQueue()
        metrics = MetricsRegistry()
        events = EventLog()
        store: CheckpointStore | None = None
        workload = workload_fingerprint([])
        if self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir,
                sync_every=self.checkpoint_sync_every,
                compact_every=self.checkpoint_compact_every,
            )
            recovered = store.open(workload)
        if (
            self.faults is not None
            and self.faults.master_crash is not None
            and store is None
        ):
            raise ValueError(
                "a master_crash fault requires checkpoint_dir: without "
                "the journal pair there is nothing for the replacement "
                "service master to recover from"
            )
        master = Master(
            [],
            policy=self.policy,
            adjustment=self.adjustment,
            omega=self.omega,
            metrics=metrics,
            events=events,
            journal=store,
            batch=self.batch,
        )
        if store is not None:
            if not recovered.empty:
                restore_into(master, recovered, now=0.0)
            core = ServiceCore.recover(
                master,
                store,
                service or ServiceConfig(),
                now=0.0,
                results={r.task_id: r for r in recovered.results()},
            )
        else:
            core = ServiceCore(master, service or ServiceConfig())
        pes = {spec.pe_id: _SimPE(spec) for spec in self.specs}
        injector = None
        heartbeat = self.heartbeat_timeout
        if self.faults is not None:
            injector = FaultInjector(
                self.faults, events=events, clock=lambda: queue.now
            )
            if heartbeat is None:
                heartbeat = 10 * self.notify_interval
        state = _ServiceRunState(
            queue, master, pes, self, injector, heartbeat or 0.0,
            tasks=[], store=store, workload=workload, service=core,
        )

        if injector is not None:
            if self.faults.master_crash is not None:
                queue.schedule(
                    self.faults.master_crash.at_time, state.on_master_crash
                )
            for crash in self.faults.crashes:
                pe = pes.get(crash.pe_id)
                if pe is not None and crash.at_time is not None:
                    queue.schedule(
                        crash.at_time, lambda p=pe: state.on_crash(p)
                    )
            for straggler in self.faults.stragglers:
                pe = pes.get(straggler.pe_id)
                if pe is None:
                    continue
                queue.schedule(
                    straggler.start, lambda p=pe: state.on_straggle(p)
                )
                if straggler.end is not None:
                    queue.schedule(
                        straggler.end, lambda p=pe: state.on_straggle(p)
                    )
        if heartbeat:
            queue.schedule(heartbeat / 4, state.on_reap)

        writer: TelemetryWriter | None = None
        if self.telemetry_path is not None:
            writer = TelemetryWriter(
                self.telemetry_path,
                metrics.snapshot,
                lambda: queue.now,
                interval=self.telemetry_interval,
                environment="des",
            )

            def telemetry_tick() -> None:
                assert writer is not None
                if state.master.finished:
                    return
                writer.sample()
                queue.schedule(
                    queue.now + writer.interval, telemetry_tick
                )

            queue.schedule(self.telemetry_interval, telemetry_tick)

        for spec in self.specs:
            pe = pes[spec.pe_id]
            if spec.join_time <= 0:
                master.register(spec.pe_id, 0.0)
                queue.schedule(
                    state._uplink(pe), lambda p=pe: state.on_request(p)
                )
                queue.schedule(
                    self.notify_interval, lambda p=pe: state.on_notify(p)
                )
            else:
                queue.schedule(
                    spec.join_time, lambda p=pe: state.on_join(p)
                )
            if spec.leave_time is not None:
                queue.schedule(
                    spec.leave_time, lambda p=pe: state.on_leave(p)
                )
            for at, capacity in spec.load_profile:
                queue.schedule(
                    at, lambda p=pe, c=capacity: state.on_load(p, c)
                )

        for arrival in arrivals:
            queue.schedule(
                arrival.time, lambda a=arrival: state.on_arrival(a)
            )
        last_arrival = arrivals[-1].time if arrivals else 0.0
        if drain_at is None:
            # Default experiment shape: offered load for the whole
            # horizon, then a graceful drain of whatever was admitted.
            drain_at = last_arrival
        queue.schedule(drain_at, state.on_drain)
        queue.schedule(self.notify_interval, state.on_sweep)

        try:
            queue.run()
        finally:
            if state.store is not None:
                state.store.close()

        # A master crash replaces state.master/state.service mid-run;
        # everything below must look at the survivors.
        master = state.master
        core = state.service
        if not core.drained or not master.finished:
            raise RuntimeError(
                "service simulation drained its event queue without "
                "completing the drain"
            )
        counts = core.counts()
        latencies: dict[str, list[float]] = {}
        for request in core.requests.values():
            if request.state == "done" and request.latency is not None:
                latencies.setdefault(request.tenant, []).append(
                    request.latency
                )
        drained_at = state.drained_at if state.drained_at is not None else 0.0
        finalize_run_metrics(metrics, drained_at, state.admitted_cells)
        if writer is not None:
            writer.close()
        return ServiceSimReport(
            offered=state.offered,
            admitted=len(core.requests),
            shed=dict(state.shed),
            completed=counts["done"],
            expired=counts["expired"],
            cancelled=counts["cancelled"],
            drained_at=drained_at,
            latencies=latencies,
            requests=dict(core.requests),
            trace=state.trace_prefix + list(master.trace),
            metrics=metrics.snapshot(),
            events=events,
            unreachable=state.unreachable,
        )
