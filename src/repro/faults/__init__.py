"""Deterministic fault injection for all three execution environments.

``FaultPlan`` describes what goes wrong (crashes, stragglers, message
faults, partitions) as immutable JSON-serialisable data;
``FaultInjector`` turns a plan into seed-deterministic runtime
decisions and records every fired fault into the run's ``EventLog``.
The DES simulator schedules plan faults as events, the threaded runtime
and TCP cluster apply them at the transport boundary.  See
``docs/robustness.md`` for the failure model and recovery guarantees.
"""

from .injector import (
    MESSAGE_ACTIONS,
    FaultInjector,
    InjectedCrash,
    MasterCrashed,
)
from .plan import (
    FAULT_PLAN_SCHEMA,
    CrashFault,
    FaultPlan,
    FaultPlanError,
    MasterCrashFault,
    MessageFaults,
    PartitionFault,
    StragglerFault,
)

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "MESSAGE_ACTIONS",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "InjectedCrash",
    "MasterCrashed",
    "MasterCrashFault",
    "MessageFaults",
    "PartitionFault",
    "StragglerFault",
]
