"""Runtime side of fault injection.

A :class:`FaultInjector` turns an immutable :class:`FaultPlan` into
per-run decisions.  Every probabilistic draw comes from a per-PE
``random.Random`` stream seeded from ``(plan.seed, pe_id)``, so the
decision sequence each PE sees is independent of thread interleaving
and identical across runs of the same environment.  Every fault that
actually fires is recorded in the shared :class:`EventLog` under a
``fault_*`` kind so ``repro trace analyze`` can report injected faults
alongside the recoveries they triggered.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Iterable

from ..observability import EventLog
from .plan import CrashFault, FaultPlan, PartitionFault

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "MasterCrashed",
    "MESSAGE_ACTIONS",
]

#: Cumulative-threshold order for message fault decisions.
MESSAGE_ACTIONS = ("drop", "duplicate", "delay", "corrupt")


class InjectedCrash(RuntimeError):
    """Raised inside a worker to make it die as the plan demands."""

    def __init__(self, pe_id: str, reason: str = "crash") -> None:
        super().__init__(f"injected crash of {pe_id} ({reason})")
        self.pe_id = pe_id
        self.reason = reason


class MasterCrashed(RuntimeError):
    """The plan's master crash fired: the scheduling brain is gone.

    Wall-clock environments raise this out of the run so the caller can
    restart with the same ``--checkpoint`` directory; recovery then
    replays the journal instead of recomputing finished tasks.
    """

    def __init__(self, at_time: float) -> None:
        super().__init__(
            f"injected master crash at t={at_time:.3f}s "
            "(resume from the checkpoint directory)"
        )
        self.at_time = at_time


class FaultInjector:
    """Deterministic decision engine over a :class:`FaultPlan`.

    The injector is shared between all PEs of one run; its methods are
    thread-safe.  ``events`` is optional — worker processes in the TCP
    cluster inject without recording (decisions are still drawn from
    the same streams), while the DES and threaded runtimes record every
    fired fault into the run's event log.
    """

    def __init__(
        self,
        plan: FaultPlan,
        events: EventLog | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.plan = plan
        self.events = events
        self._clock = clock or (lambda: 0.0)
        self._lock = threading.Lock()
        self._streams: dict[str, random.Random] = {}
        self._crash_fired: set[str] = set()  # a crash fires once per plan
        self._down: set[str] = set()  # crashed and not (yet) restarted
        self._straggling: set[str] = set()
        self._partitioned: set[tuple[str, float]] = set()

    # -- bookkeeping ----------------------------------------------------

    def _stream(self, pe_id: str) -> random.Random:
        stream = self._streams.get(pe_id)
        if stream is None:
            stream = random.Random(f"repro.faults:{self.plan.seed}:{pe_id}")
            self._streams[pe_id] = stream
        return stream

    def record(
        self, kind: str, pe_id: str = "", time: float | None = None, **fields
    ) -> None:
        """Emit a ``fault_<kind>`` event into the run's event log."""
        if self.events is None:
            return
        when = self._clock() if time is None else time
        self.events.emit(f"fault_{kind}", time=when, pe=pe_id, **fields)

    # -- crashes --------------------------------------------------------

    def crash_spec(self, pe_id: str) -> CrashFault | None:
        return self.plan.crash_for(pe_id)

    def crashed(self, pe_id: str) -> bool:
        """True while the PE is down (crash fired, no restart yet)."""
        with self._lock:
            return pe_id in self._down

    def crash_due(
        self, pe_id: str, now: float | None = None, tasks_completed: int = 0
    ) -> bool:
        """True when this PE's crash should fire (and has not yet)."""
        spec = self.plan.crash_for(pe_id)
        if spec is None:
            return False
        with self._lock:
            if pe_id in self._crash_fired:
                return False
        when = self._clock() if now is None else now
        if spec.at_time is not None and when >= spec.at_time:
            return True
        if (
            spec.after_tasks is not None
            and tasks_completed >= spec.after_tasks
        ):
            return True
        return False

    def mark_crashed(
        self, pe_id: str, now: float | None = None, reason: str = "crash"
    ) -> bool:
        """Record the crash; returns False if it already fired."""
        with self._lock:
            if pe_id in self._crash_fired:
                return False
            self._crash_fired.add(pe_id)
            self._down.add(pe_id)
        spec = self.plan.crash_for(pe_id)
        self.record(
            "crash",
            pe_id,
            time=now,
            reason=reason,
            restart_after=spec.restart_after if spec else None,
        )
        return True

    def mark_restarted(self, pe_id: str, now: float | None = None) -> None:
        # ``_crash_fired`` keeps the pe_id: a crash fires at most once
        # per plan, so the restarted incarnation does not immediately
        # re-trip its own (already elapsed) trigger.
        with self._lock:
            self._down.discard(pe_id)
        self.record("restart", pe_id, time=now)

    # -- stragglers -----------------------------------------------------

    def rate_factor(self, pe_id: str, now: float) -> float:
        """Product of all straggler windows active for this PE now."""
        factor = 1.0
        for straggler in self.plan.stragglers:
            if straggler.pe_id == pe_id and straggler.active(now):
                factor *= straggler.factor
        if factor < 1.0:
            with self._lock:
                fresh = pe_id not in self._straggling
                self._straggling.add(pe_id)
            if fresh:
                self.record("straggle", pe_id, time=now, factor=factor)
        else:
            with self._lock:
                self._straggling.discard(pe_id)
        return factor

    def straggle_sleep(self, pe_id: str, now: float, elapsed: float) -> float:
        """Extra wall-clock sleep that dilates ``elapsed`` by the factor."""
        factor = self.rate_factor(pe_id, now)
        if factor >= 1.0 or elapsed <= 0:
            return 0.0
        return elapsed * (1.0 / factor - 1.0)

    # -- message faults -------------------------------------------------

    @property
    def delay_seconds(self) -> float:
        return self.plan.messages.delay_seconds

    def message_action(
        self,
        pe_id: str,
        message_type: str,
        now: float | None = None,
        allow: Iterable[str] = MESSAGE_ACTIONS,
    ) -> str:
        """Decide one message's fate: deliver/drop/duplicate/delay/corrupt.

        One variate is always drawn (keeping per-PE streams aligned no
        matter which environment asks); if the chosen action is not in
        ``allow`` the message is delivered normally.  Non-deliver
        outcomes are recorded as ``fault_<action>`` events.
        """
        messages = self.plan.messages
        if messages.total_rate == 0.0:
            return "deliver"
        with self._lock:
            draw = self._stream(pe_id).random()
        action = "deliver"
        threshold = 0.0
        for name, rate in (
            ("drop", messages.drop_rate),
            ("duplicate", messages.duplicate_rate),
            ("delay", messages.delay_rate),
            ("corrupt", messages.corrupt_rate),
        ):
            threshold += rate
            if draw < threshold:
                action = name
                break
        if action == "deliver" or action not in tuple(allow):
            return "deliver"
        self.record(action, pe_id, time=now, message=message_type)
        return action

    # -- partitions -----------------------------------------------------

    def partition_window(
        self, pe_id: str, now: float
    ) -> PartitionFault | None:
        """The partition window covering this PE now, if any."""
        for partition in self.plan.partitions:
            if pe_id in partition.pe_ids and partition.active(now):
                return partition
        return None

    def partitioned(self, pe_id: str, now: float) -> bool:
        return self.partition_window(pe_id, now) is not None

    def partition_remaining(self, pe_id: str, now: float) -> float:
        """Seconds until this PE's active partition heals (0 if none)."""
        window = self.partition_window(pe_id, now)
        if window is None:
            return 0.0
        with self._lock:
            key = (pe_id, window.start)
            fresh = key not in self._partitioned
            self._partitioned.add(key)
        if fresh:
            self.record(
                "partition", pe_id, time=now,
                start=window.start, end=window.end,
            )
        return max(0.0, window.end - now)
