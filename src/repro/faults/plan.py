"""Seed-deterministic fault plans.

A :class:`FaultPlan` is an immutable, JSON-serialisable description of
every fault a run should suffer: worker crashes (at a point in time or
after a number of completed tasks), stragglers (rate slow-down windows),
message-level transport faults (drop / duplicate / delay / corrupt) and
network partitions.  The plan itself contains no randomness at
injection time — all probabilistic decisions are drawn by
:class:`repro.faults.injector.FaultInjector` from per-PE streams seeded
from ``FaultPlan.seed``, so the same plan produces the same fault
schedule in every environment that honours virtual/wall time the same
way.

Plans round-trip through JSON under the ``repro.fault_plan.v1`` schema
tag so they can be passed to the CLI (``repro simulate --faults`` /
``repro cluster --faults``) and shipped to worker processes.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FaultPlanError",
    "CrashFault",
    "MasterCrashFault",
    "StragglerFault",
    "MessageFaults",
    "PartitionFault",
    "FaultPlan",
]

FAULT_PLAN_SCHEMA = "repro.fault_plan.v1"


class FaultPlanError(ValueError):
    """A fault plan violated one of its invariants."""


@dataclass(frozen=True)
class CrashFault:
    """Kill one PE — silently, the way real workers die.

    Exactly like pulling the plug: the PE stops sending messages and
    the master only learns about it through heartbeat reaping.  Either
    ``at_time`` (seconds since run start) or ``after_tasks`` (crash
    after locally completing N tasks) must be set; if both are set the
    first to trigger wins.  ``restart_after`` optionally rejoins the PE
    that many seconds after the crash (honoured by the DES simulator;
    wall-clock environments treat crashed workers as permanently gone).
    """

    pe_id: str
    at_time: float | None = None
    after_tasks: int | None = None
    restart_after: float | None = None

    def __post_init__(self) -> None:
        if self.at_time is None and self.after_tasks is None:
            raise FaultPlanError(
                f"crash for {self.pe_id!r} needs at_time or after_tasks"
            )
        if self.at_time is not None and self.at_time < 0:
            raise FaultPlanError("crash at_time must be >= 0")
        if self.after_tasks is not None and self.after_tasks < 1:
            raise FaultPlanError("crash after_tasks must be >= 1")
        if self.restart_after is not None and self.restart_after <= 0:
            raise FaultPlanError("restart_after must be > 0")

    @property
    def permanent(self) -> bool:
        return self.restart_after is None


@dataclass(frozen=True)
class MasterCrashFault:
    """Kill the *master* at ``at_time`` seconds into the run.

    The inverse of :class:`CrashFault`: the scheduling brain dies with
    every in-memory result, and only the write-ahead journal
    (:mod:`repro.durability`) survives.  ``recovery_after`` is how long
    the master stays down before a replacement recovers from the
    checkpoint; the DES models the window explicitly (slave traffic
    stalls and is retried), while wall-clock environments surface the
    crash as :class:`~repro.faults.injector.MasterCrashed` and leave
    the restart to the caller.
    """

    at_time: float
    recovery_after: float = 0.5

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise FaultPlanError("master crash at_time must be >= 0")
        if self.recovery_after < 0:
            raise FaultPlanError("recovery_after must be >= 0")


@dataclass(frozen=True)
class StragglerFault:
    """Slow one PE down by ``factor`` during ``[start, end)``.

    ``factor`` multiplies the PE's effective rate, so ``0.25`` means
    the PE runs at a quarter of its modelled speed.  ``end=None``
    straggles until the end of the run.
    """

    pe_id: str
    factor: float
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise FaultPlanError("straggler factor must be in (0, 1]")
        if self.start < 0:
            raise FaultPlanError("straggler start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise FaultPlanError("straggler end must be > start")

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)


@dataclass(frozen=True)
class MessageFaults:
    """Per-message transport fault probabilities.

    Each message draws one uniform variate; the cumulative thresholds
    ``drop → duplicate → delay → corrupt`` decide its fate, so the
    rates must sum to at most 1.  ``delay_seconds`` is how long a
    delayed message is held.  Environments only apply the subset of
    actions that makes sense for a message type (e.g. only idempotent
    messages are ever duplicated); inapplicable draws deliver normally,
    keeping the decision stream aligned across environments.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.02
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1]")
        if self.total_rate > 1.0:
            raise FaultPlanError("message fault rates must sum to <= 1")
        if self.delay_seconds < 0:
            raise FaultPlanError("delay_seconds must be >= 0")

    @property
    def total_rate(self) -> float:
        return (
            self.drop_rate
            + self.duplicate_rate
            + self.delay_rate
            + self.corrupt_rate
        )


@dataclass(frozen=True)
class PartitionFault:
    """Cut a set of PEs off from the master during ``[start, end)``.

    Partitioned PEs keep computing but none of their messages reach the
    master (nor the master's replies them) until the window closes, at
    which point deferred traffic is delivered and reaped PEs
    re-register.
    """

    pe_ids: tuple[str, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "pe_ids", tuple(self.pe_ids))
        if not self.pe_ids:
            raise FaultPlanError("partition needs at least one PE")
        if self.start < 0 or self.end <= self.start:
            raise FaultPlanError("partition window must satisfy 0 <= start < end")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, deterministically."""

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    messages: MessageFaults = field(default_factory=MessageFaults)
    partitions: tuple[PartitionFault, ...] = ()
    master_crash: MasterCrashFault | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        seen: set[str] = set()
        for crash in self.crashes:
            if crash.pe_id in seen:
                raise FaultPlanError(
                    f"multiple crashes for PE {crash.pe_id!r}"
                )
            seen.add(crash.pe_id)

    @property
    def empty(self) -> bool:
        return (
            not self.crashes
            and not self.stragglers
            and not self.partitions
            and self.master_crash is None
            and self.messages.total_rate == 0.0
        )

    def crash_for(self, pe_id: str) -> CrashFault | None:
        for crash in self.crashes:
            if crash.pe_id == pe_id:
                return crash
        return None

    def survivors(self, pe_ids: Iterable[str]) -> tuple[str, ...]:
        """PEs that are never permanently crashed by this plan."""
        doomed = {c.pe_id for c in self.crashes if c.permanent}
        return tuple(pe for pe in pe_ids if pe not in doomed)

    def without_master_crash(self) -> "FaultPlan":
        """The same plan minus the master crash.

        Resume runs use this: the crash already fired in the run being
        resumed, and the fault's ``at_time`` is relative to run start,
        so carrying it into the restarted run would kill the master
        again at the same offset.
        """
        if self.master_crash is None:
            return self
        return FaultPlan(
            seed=self.seed,
            crashes=self.crashes,
            stragglers=self.stragglers,
            messages=self.messages,
            partitions=self.partitions,
        )

    # -- JSON round-trip ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "crashes": [asdict(c) for c in self.crashes],
            "stragglers": [asdict(s) for s in self.stragglers],
            "messages": asdict(self.messages),
            "partitions": [
                {"pe_ids": list(p.pe_ids), "start": p.start, "end": p.end}
                for p in self.partitions
            ],
            "master_crash": (
                asdict(self.master_crash)
                if self.master_crash is not None
                else None
            ),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        schema = payload.get("schema", FAULT_PLAN_SCHEMA)
        if schema != FAULT_PLAN_SCHEMA:
            raise FaultPlanError(f"unsupported fault-plan schema {schema!r}")
        return cls(
            seed=int(payload.get("seed", 0)),
            crashes=tuple(
                CrashFault(**c) for c in payload.get("crashes", ())
            ),
            stragglers=tuple(
                StragglerFault(**s) for s in payload.get("stragglers", ())
            ),
            messages=MessageFaults(**payload.get("messages", {})),
            partitions=tuple(
                PartitionFault(
                    pe_ids=tuple(p["pe_ids"]),
                    start=p["start"],
                    end=p["end"],
                )
                for p in payload.get("partitions", ())
            ),
            master_crash=(
                MasterCrashFault(**payload["master_crash"])
                if payload.get("master_crash")
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -- random plan generator ------------------------------------------

    @classmethod
    def random(
        cls,
        pe_ids: Sequence[str],
        seed: int,
        *,
        horizon: float = 4.0,
        crash_probability: float = 0.6,
        straggler_probability: float = 0.5,
        partition_probability: float = 0.3,
        max_drop_rate: float = 0.15,
        max_duplicate_rate: float = 0.15,
        max_delay_rate: float = 0.15,
        max_delay_seconds: float = 0.02,
        max_corrupt_rate: float = 0.05,
        allow_restarts: bool = False,
        master_crash_probability: float = 0.0,
    ) -> "FaultPlan":
        """A bounded random plan that always leaves >= 1 surviving PE.

        ``horizon`` scales every time in the plan (crash instants,
        straggler and partition windows) and should roughly match the
        expected fault-free makespan of the workload.  Rates are drawn
        uniformly in ``[0, max_*]`` and then rescaled if the sum would
        exceed 1.  The plan is a pure function of ``(pe_ids, seed)``
        and the keyword bounds.
        """
        if not pe_ids:
            raise FaultPlanError("need at least one PE")
        rng = random.Random(f"repro.fault_plan:{seed}")
        pes = list(pe_ids)

        crashes: list[CrashFault] = []
        # Leave at least one PE permanently alive.
        max_victims = len(pes) - 1
        victims = [pe for pe in pes if rng.random() < crash_probability]
        victims = victims[:max_victims]
        for pe in victims:
            restart = (
                rng.uniform(0.2, 0.6) * horizon
                if allow_restarts and rng.random() < 0.5
                else None
            )
            if rng.random() < 0.5:
                crashes.append(
                    CrashFault(
                        pe_id=pe,
                        at_time=rng.uniform(0.1, 0.7) * horizon,
                        restart_after=restart,
                    )
                )
            else:
                crashes.append(
                    CrashFault(
                        pe_id=pe,
                        after_tasks=rng.randint(1, 3),
                        restart_after=restart,
                    )
                )

        stragglers = tuple(
            StragglerFault(
                pe_id=pe,
                factor=rng.uniform(0.25, 0.9),
                start=rng.uniform(0.0, 0.4) * horizon,
                end=rng.uniform(0.6, 1.0) * horizon,
            )
            for pe in pes
            if rng.random() < straggler_probability
        )

        rates = [
            rng.uniform(0.0, max_drop_rate),
            rng.uniform(0.0, max_duplicate_rate),
            rng.uniform(0.0, max_delay_rate),
            rng.uniform(0.0, max_corrupt_rate),
        ]
        total = sum(rates)
        if total > 1.0:
            rates = [r / total for r in rates]
        messages = MessageFaults(
            drop_rate=rates[0],
            duplicate_rate=rates[1],
            delay_rate=rates[2],
            delay_seconds=rng.uniform(0.0, max_delay_seconds),
            corrupt_rate=rates[3],
        )

        partitions: list[PartitionFault] = []
        if len(pes) > 1 and rng.random() < partition_probability:
            cut = rng.sample(pes, rng.randint(1, len(pes) - 1))
            start = rng.uniform(0.1, 0.5) * horizon
            partitions.append(
                PartitionFault(
                    pe_ids=tuple(sorted(cut)),
                    start=start,
                    end=start + rng.uniform(0.1, 0.25) * horizon,
                )
            )

        # Drawn last so plans generated before master crashes existed
        # stay byte-identical for the same seed when the probability
        # keeps its default of 0.
        master_crash = None
        if master_crash_probability > 0 and (
            rng.random() < master_crash_probability
        ):
            master_crash = MasterCrashFault(
                at_time=rng.uniform(0.2, 0.6) * horizon,
                recovery_after=rng.uniform(0.05, 0.25) * horizon,
            )

        return cls(
            seed=seed,
            crashes=tuple(crashes),
            stragglers=stragglers,
            messages=messages,
            partitions=tuple(partitions),
            master_crash=master_crash,
        )
