"""Persistent pre-packed database store (``repro.packstore.v1``).

See :mod:`repro.store.packstore` for the format and integrity rules,
and ``docs/storage.md`` for the operator-facing walkthrough.
"""

from .packstore import (
    PACKSTORE_SCHEMA,
    PackStore,
    StoreError,
    build_store,
    database_digest,
)

__all__ = [
    "PACKSTORE_SCHEMA",
    "PackStore",
    "StoreError",
    "build_store",
    "database_digest",
]
