"""Persistent pre-packed database store (``repro.packstore.v1``).

The paper's contribution #4 is an indexed flat file that lets a PE
start computing without re-parsing FASTA; this module extends the idea
one conversion further.  Packing a database into SIMD lane batches and
building query profiles are the two conversions every engine repeats on
process start, and SWAPHI / CUDASW++-style systems amortize exactly
this cost across runs.  A :class:`PackStore` serializes the converted
artifacts once and lets every later process memory-map them back.

Layout of a store directory::

    DIR/
      store.json                 # {"schema": "repro.packstore.v1", "crc"}
      objects/
        <key>.json               # per-entry manifest, embedded crc
        <key>.residues.npy       # pack entries: three consolidated arrays
        <key>.lengths.npy
        <key>.order.npy
        <key>.array.npy          # profile entries: one array

Entries are **content-addressed**: ``<key>`` is a SHA-256 over what
determines the artifact's bytes — the database's residue content, the
substitution matrix digest (score table + alphabet, see
:attr:`~repro.align.scoring.SubstitutionMatrix.digest`), and the shape
parameters (lane count, profile kind).  Names never enter the key, so
two same-named customs can never alias, and rebuilding an entry that
already exists is a no-op.

Integrity follows the ``durability/journal.py`` discipline: manifests
are canonical JSON with an embedded CRC-32 (via
:func:`~repro.durability.journal.encode_record`), each array file's
CRC-32 is recorded in its manifest, and every load re-verifies both by
default — a corrupt shard raises :class:`StoreError` loudly instead of
mis-scoring.  Writes are atomic (tmp file, fsync, ``os.replace``,
directory fsync): a crash mid-write leaves no manifest, so the
half-written entry is invisible.

Memory-mapping: packs are stored as flat consolidated arrays and each
:class:`~repro.align.intersequence.LanePack` is a contiguous reshaped
slice, so ``load_packs(..., mmap=True)`` hands the engines read-only
views straight over the page cache — byte-identical to freshly built
packs, without materializing them.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..align.intersequence import DEFAULT_LANES, LanePack, pack_database
from ..align.screening import (
    DEFAULT_BIN_WIDTH,
    LengthBinnedPack,
    pack_database_binned,
)
from ..align.scoring import SubstitutionMatrix
from ..align.striped import StripedProfile
from ..durability.journal import JournalError, decode_record, encode_record
from ..sequences.database import SequenceDatabase

__all__ = [
    "PACKSTORE_SCHEMA",
    "StoreError",
    "PackStore",
    "build_store",
    "database_digest",
]

PACKSTORE_SCHEMA = "repro.packstore.v1"

#: Profile kinds the store can serialize.  "multi" profiles are batch
#: composites keyed by tuples of queries; they stay in-memory only.
STORABLE_PROFILE_KINDS = ("padded", "striped")

_CRC_CHUNK = 1 << 20


class StoreError(RuntimeError):
    """A store failed validation (corruption, schema or shape mismatch)."""


def database_digest(database: SequenceDatabase) -> str:
    """Content digest of a database's residues, in record order.

    Only residue content enters the digest — ids and descriptions do
    not affect pack bytes (hit identities come from the caller's
    in-memory database), and the residue→code mapping is covered by the
    matrix digest alongside this one in the entry key.
    """
    h = hashlib.sha256()
    h.update(str(len(database)).encode("ascii"))
    for record in database:
        h.update(b"\x1f")
        h.update(record.residues.encode("ascii"))
    return h.hexdigest()


def _entry_key(*parts: str) -> str:
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


def _file_crc(path: Path) -> str:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CRC_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return format(crc, "08x")


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, blob: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _serialize_array(array: np.ndarray) -> tuple[bytes, str]:
    """``.npy`` bytes of *array* plus their CRC-32 (eight hex digits)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array))
    blob = buffer.getvalue()
    return blob, format(zlib.crc32(blob), "08x")


class PackStore:
    """Content-addressed on-disk tier under the pack/profile caches.

    Parameters
    ----------
    directory:
        The store root.  Must contain a valid ``store.json`` unless
        ``create=True``, in which case an empty store is initialised.
    mmap:
        Load arrays memory-mapped read-only (the warm-start path).
        ``False`` materializes copies instead.
    verify:
        Re-verify manifest and array CRCs on every load.  Leave on:
        this is what makes a corrupt shard fail loudly instead of
        mis-scoring, and a sequential CRC pass over the page cache is
        still far cheaper than re-packing.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        mmap: bool = True,
        verify: bool = True,
        create: bool = False,
    ):
        self.directory = Path(directory)
        self.mmap = bool(mmap)
        self.verify_on_load = bool(verify)
        self._objects = self.directory / "objects"
        marker = self.directory / "store.json"
        if create:
            self._objects.mkdir(parents=True, exist_ok=True)
            if not marker.exists():
                line = encode_record({"schema": PACKSTORE_SCHEMA})
                _atomic_write(marker, line.encode("utf-8") + b"\n")
        if not marker.exists():
            raise StoreError(
                f"{self.directory} is not a pack store (no store.json); "
                "create one with `repro db build`"
            )
        self._check_marker(marker)

    def _check_marker(self, marker: Path) -> None:
        try:
            record = decode_record(marker.read_text(encoding="utf-8"))
        except (OSError, JournalError) as exc:
            raise StoreError(f"unreadable store marker {marker}: {exc}")
        schema = record.get("schema")
        if schema != PACKSTORE_SCHEMA:
            raise StoreError(
                f"store schema {schema!r} is not {PACKSTORE_SCHEMA!r}; "
                "rebuild the store with this version"
            )

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def packs_key(
        db_digest: str, matrix_digest: str, lanes: int
    ) -> str:
        return _entry_key("packs", db_digest, matrix_digest, str(int(lanes)))

    @staticmethod
    def binned_packs_key(
        db_digest: str, matrix_digest: str, lanes: int, bin_width: int
    ) -> str:
        return _entry_key(
            "packs-binned",
            db_digest,
            matrix_digest,
            str(int(lanes)),
            str(int(bin_width)),
        )

    @staticmethod
    def profile_key(
        kind: str, codes_digest: str, matrix_digest: str, params: tuple
    ) -> str:
        return _entry_key(
            "profile",
            kind,
            codes_digest,
            matrix_digest,
            json.dumps(list(params)),
        )

    def _manifest_path(self, key: str) -> Path:
        return self._objects / f"{key}.json"

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put_packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int = DEFAULT_LANES,
    ) -> str:
        """Pack *database* and persist the batches; returns the key.

        Content addressing makes this idempotent: if the entry already
        exists the pack step is skipped entirely.
        """
        db_digest = database_digest(database)
        key = self.packs_key(db_digest, matrix.digest, lanes)
        if self._manifest_path(key).exists():
            return key
        packs = tuple(pack_database(database, matrix, lanes=lanes))
        residues = (
            np.concatenate([p.residues.ravel() for p in packs])
            if packs
            else np.zeros(0, dtype=np.int16)
        )
        lengths = (
            np.concatenate([p.lengths for p in packs])
            if packs
            else np.zeros(0, dtype=np.int64)
        )
        order = (
            np.concatenate([p.order for p in packs])
            if packs
            else np.zeros(0, dtype=np.int64)
        )
        arrays = {}
        for field, array in (
            ("residues", residues),
            ("lengths", lengths),
            ("order", order),
        ):
            filename = f"{key}.{field}.npy"
            blob, crc = _serialize_array(array)
            _atomic_write(self._objects / filename, blob)
            arrays[field] = {
                "file": filename,
                "dtype": str(array.dtype),
                "size": int(array.size),
                "crc": crc,
            }
        manifest = {
            "schema": PACKSTORE_SCHEMA,
            "kind": "packs",
            "key": key,
            "lanes": int(lanes),
            "pad_code": int(packs[0].pad_code)
            if packs
            else int(matrix.alphabet.size),
            "matrix": {"name": matrix.name, "digest": matrix.digest},
            "database": {
                "digest": db_digest,
                "records": len(database),
                "residues": int(database.total_residues),
                "name": database.name,
            },
            "packs": [
                [int(p.residues.shape[0]), int(p.residues.shape[1])]
                for p in packs
            ],
            "arrays": arrays,
        }
        self._write_manifest(key, manifest)
        return key

    def put_binned_packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int,
        bin_width: int = DEFAULT_BIN_WIDTH,
    ) -> str:
        """Persist the length-binned screening packs; returns the key.

        The manifest reuses kind ``"packs"`` (so ``verify``/``inspect``
        tooling needs no new branch) and records the per-pack length
        bins under ``"bins"`` — their presence is what marks the entry
        as binned for :meth:`load_binned_packs`.
        """
        db_digest = database_digest(database)
        key = self.binned_packs_key(
            db_digest, matrix.digest, lanes, bin_width
        )
        if self._manifest_path(key).exists():
            return key
        packs = tuple(
            pack_database_binned(
                database, matrix, lanes=lanes, bin_width=bin_width
            )
        )
        residues = (
            np.concatenate([p.residues.ravel() for p in packs])
            if packs
            else np.zeros(0, dtype=np.int16)
        )
        lengths = (
            np.concatenate([p.lengths for p in packs])
            if packs
            else np.zeros(0, dtype=np.int64)
        )
        order = (
            np.concatenate([p.order for p in packs])
            if packs
            else np.zeros(0, dtype=np.int64)
        )
        arrays = {}
        for field, array in (
            ("residues", residues),
            ("lengths", lengths),
            ("order", order),
        ):
            filename = f"{key}.{field}.npy"
            blob, crc = _serialize_array(array)
            _atomic_write(self._objects / filename, blob)
            arrays[field] = {
                "file": filename,
                "dtype": str(array.dtype),
                "size": int(array.size),
                "crc": crc,
            }
        manifest = {
            "schema": PACKSTORE_SCHEMA,
            "kind": "packs",
            "key": key,
            "lanes": int(lanes),
            "bin_width": int(bin_width),
            "pad_code": int(packs[0].pad_code)
            if packs
            else int(matrix.alphabet.size),
            "matrix": {"name": matrix.name, "digest": matrix.digest},
            "database": {
                "digest": db_digest,
                "records": len(database),
                "residues": int(database.total_residues),
                "name": database.name,
            },
            "packs": [
                [int(p.residues.shape[0]), int(p.residues.shape[1])]
                for p in packs
            ],
            "bins": [[int(p.bin_lo), int(p.bin_hi)] for p in packs],
            "arrays": arrays,
        }
        self._write_manifest(key, manifest)
        return key

    def put_profile(
        self,
        kind: str,
        codes: bytes,
        matrix: SubstitutionMatrix,
        params: tuple,
        value,
    ) -> str:
        """Persist a query profile; returns the entry key.

        ``value`` is whatever the engine's builder produced: a plain
        ``ndarray`` for kind ``"padded"``, a :class:`StripedProfile`
        for kind ``"striped"``.
        """
        if kind not in STORABLE_PROFILE_KINDS:
            raise StoreError(f"profile kind {kind!r} is not storable")
        codes_digest = hashlib.sha256(codes).hexdigest()
        key = self.profile_key(kind, codes_digest, matrix.digest, params)
        if self._manifest_path(key).exists():
            return key
        if kind == "striped":
            array = value.scores
            meta = {
                "query_length": int(value.query_length),
                "lanes": int(value.lanes),
            }
        else:
            array = value
            meta = {}
        array = np.asarray(array)
        filename = f"{key}.array.npy"
        blob, crc = _serialize_array(array)
        _atomic_write(self._objects / filename, blob)
        manifest = {
            "schema": PACKSTORE_SCHEMA,
            "kind": "profile",
            "profile_kind": kind,
            "key": key,
            "codes_digest": codes_digest,
            "params": list(params),
            "meta": meta,
            "matrix": {"name": matrix.name, "digest": matrix.digest},
            "arrays": {
                "array": {
                    "file": filename,
                    "dtype": str(array.dtype),
                    "size": int(array.size),
                    "crc": crc,
                }
            },
            "array_shape": [int(n) for n in array.shape],
        }
        self._write_manifest(key, manifest)
        return key

    def _write_manifest(self, key: str, manifest: dict) -> None:
        line = encode_record(manifest)
        _atomic_write(
            self._manifest_path(key), line.encode("utf-8") + b"\n"
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get_packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int,
    ) -> tuple[LanePack, ...] | None:
        """Load the packs for (*database*, *matrix*, *lanes*), or ``None``.

        ``None`` means the entry simply is not in the store (the caller
        falls back to packing in memory).  A *present but corrupt*
        entry raises :class:`StoreError` instead — the engines must
        refuse a bad shard, never silently rebuild over it.
        """
        key = self.packs_key(
            database_digest(database), matrix.digest, lanes
        )
        if not self._manifest_path(key).exists():
            return None
        return self.load_packs(key, mmap=self.mmap)

    def load_packs(
        self, key: str, mmap: bool | None = None
    ) -> tuple[LanePack, ...]:
        """Materialize the :class:`LanePack` batches of entry *key*."""
        manifest = self.read_manifest(key)
        if manifest.get("kind") != "packs":
            raise StoreError(f"entry {key} is not a pack entry")
        use_mmap = self.mmap if mmap is None else bool(mmap)
        arrays = {
            field: self._load_array(manifest["arrays"][field], use_mmap)
            for field in ("residues", "lengths", "order")
        }
        pad_code = int(manifest["pad_code"])
        packs = []
        flat_offset = 0
        lane_offset = 0
        for rows, lanes in manifest["packs"]:
            span = rows * lanes
            residues = arrays["residues"][
                flat_offset : flat_offset + span
            ].reshape(rows, lanes)
            lengths = arrays["lengths"][lane_offset : lane_offset + lanes]
            order = arrays["order"][lane_offset : lane_offset + lanes]
            flat_offset += span
            lane_offset += lanes
            packs.append(
                LanePack(
                    residues=residues,
                    lengths=lengths,
                    order=order,
                    pad_code=pad_code,
                )
            )
        if flat_offset != arrays["residues"].size or (
            lane_offset != arrays["lengths"].size
            or lane_offset != arrays["order"].size
        ):
            raise StoreError(
                f"entry {key}: pack shapes do not tile the stored arrays"
            )
        return tuple(packs)

    def get_binned_packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int,
        bin_width: int,
    ) -> tuple[LengthBinnedPack, ...] | None:
        """Load binned screening packs, or ``None`` when absent.

        Same contract as :meth:`get_packs`: absence returns ``None``
        (callers pack in memory), corruption raises.
        """
        key = self.binned_packs_key(
            database_digest(database), matrix.digest, lanes, bin_width
        )
        if not self._manifest_path(key).exists():
            return None
        return self.load_binned_packs(key, mmap=self.mmap)

    def load_binned_packs(
        self, key: str, mmap: bool | None = None
    ) -> tuple[LengthBinnedPack, ...]:
        """Materialize the :class:`LengthBinnedPack` batches of *key*."""
        manifest = self.read_manifest(key)
        if manifest.get("kind") != "packs":
            raise StoreError(f"entry {key} is not a pack entry")
        bins = manifest.get("bins")
        if bins is None:
            raise StoreError(
                f"entry {key} is a plain pack entry, not a binned one"
            )
        if len(bins) != len(manifest["packs"]):
            raise StoreError(
                f"entry {key}: bins and pack shapes disagree"
            )
        use_mmap = self.mmap if mmap is None else bool(mmap)
        arrays = {
            field: self._load_array(manifest["arrays"][field], use_mmap)
            for field in ("residues", "lengths", "order")
        }
        pad_code = int(manifest["pad_code"])
        packs = []
        flat_offset = 0
        lane_offset = 0
        for (rows, lanes), (bin_lo, bin_hi) in zip(
            manifest["packs"], bins
        ):
            span = rows * lanes
            residues = arrays["residues"][
                flat_offset : flat_offset + span
            ].reshape(rows, lanes)
            lengths = arrays["lengths"][lane_offset : lane_offset + lanes]
            order = arrays["order"][lane_offset : lane_offset + lanes]
            flat_offset += span
            lane_offset += lanes
            packs.append(
                LengthBinnedPack(
                    residues=residues,
                    lengths=lengths,
                    order=order,
                    pad_code=pad_code,
                    bin_lo=int(bin_lo),
                    bin_hi=int(bin_hi),
                )
            )
        if flat_offset != arrays["residues"].size or (
            lane_offset != arrays["lengths"].size
            or lane_offset != arrays["order"].size
        ):
            raise StoreError(
                f"entry {key}: pack shapes do not tile the stored arrays"
            )
        return tuple(packs)

    def get_profile(
        self,
        kind: str,
        codes: bytes,
        matrix: SubstitutionMatrix,
        params: tuple,
    ):
        """Load a stored profile, or ``None`` when absent."""
        if kind not in STORABLE_PROFILE_KINDS:
            return None
        codes_digest = hashlib.sha256(codes).hexdigest()
        key = self.profile_key(kind, codes_digest, matrix.digest, params)
        if not self._manifest_path(key).exists():
            return None
        return self.load_profile(key)

    def load_profile(self, key: str):
        manifest = self.read_manifest(key)
        if manifest.get("kind") != "profile":
            raise StoreError(f"entry {key} is not a profile entry")
        array = self._load_array(manifest["arrays"]["array"], self.mmap)
        array = array.reshape(manifest["array_shape"])
        kind = manifest["profile_kind"]
        if kind == "striped":
            meta = manifest["meta"]
            return StripedProfile(
                scores=array,
                query_length=int(meta["query_length"]),
                lanes=int(meta["lanes"]),
            )
        return array

    def read_manifest(self, key: str) -> dict:
        path = self._manifest_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StoreError(f"unreadable manifest {path}: {exc}")
        try:
            manifest = decode_record(text)
        except JournalError as exc:
            raise StoreError(f"corrupt manifest {path}: {exc}")
        if manifest.get("schema") != PACKSTORE_SCHEMA:
            raise StoreError(
                f"manifest {path} schema {manifest.get('schema')!r} "
                f"is not {PACKSTORE_SCHEMA!r}"
            )
        return manifest

    def _load_array(self, spec: dict, mmap: bool) -> np.ndarray:
        path = self._objects / spec["file"]
        if not path.exists():
            raise StoreError(f"missing array file {path}")
        if self.verify_on_load:
            crc = _file_crc(path)
            if crc != spec["crc"]:
                raise StoreError(
                    f"array {path} crc mismatch: recorded {spec['crc']}, "
                    f"computed {crc}"
                )
        if spec["size"] == 0:
            # numpy cannot memory-map a zero-length array; an empty
            # database legitimately stores empty arrays.
            empty = np.zeros(0, dtype=spec["dtype"])
            empty.setflags(write=False)
            return empty
        try:
            array = np.load(path, mmap_mode="r" if mmap else None)
        except Exception as exc:  # numpy raises ValueError/OSError
            raise StoreError(f"unloadable array {path}: {exc}")
        if str(array.dtype) != spec["dtype"] or array.size != spec["size"]:
            raise StoreError(
                f"array {path} shape drifted from its manifest: "
                f"{array.dtype}[{array.size}] != "
                f"{spec['dtype']}[{spec['size']}]"
            )
        array = array.reshape(-1)
        if not mmap:
            array = np.array(array)
        array.setflags(write=False)
        return array

    # ------------------------------------------------------------------
    # Inventory and verification
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        if not self._objects.is_dir():
            return []
        return sorted(p.stem for p in self._objects.glob("*.json"))

    def entries(self) -> Iterator[dict]:
        """Validated manifests of every entry, sorted by key."""
        for key in self.keys():
            yield self.read_manifest(key)

    def verify(self) -> dict:
        """Re-check every manifest and array CRC; raises on the first bad.

        Returns a summary ``{"entries": n, "packs": p, "profiles": q}``
        for display by ``repro db verify``.
        """
        counts = {"entries": 0, "packs": 0, "profiles": 0}
        was_verifying = self.verify_on_load
        self.verify_on_load = True  # verify() always checks CRCs
        try:
            for manifest in self.entries():
                counts["entries"] += 1
                kind = manifest.get("kind")
                if kind == "packs":
                    counts["packs"] += 1
                    self.load_packs(manifest["key"], mmap=True)
                elif kind == "profile":
                    counts["profiles"] += 1
                    self.load_profile(manifest["key"])
                else:
                    raise StoreError(
                        f"entry {manifest.get('key')} has unknown kind "
                        f"{kind!r}"
                    )
        finally:
            self.verify_on_load = was_verifying
        return counts


def build_store(
    directory: str | os.PathLike,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    queries=None,
    lanes_list: tuple[int, ...] = (DEFAULT_LANES,),
    striped_lanes: tuple[int, ...] = (16, 8),
    binned_lanes: tuple[int, ...] = (),
    bin_width: int = DEFAULT_BIN_WIDTH,
) -> PackStore:
    """Populate (or extend) the store at *directory* for one workload.

    Serializes the database's lane packs at every width in
    *lanes_list* (the inter-sequence engine's default is
    :data:`~repro.align.intersequence.DEFAULT_LANES`) and, when
    *queries* are given, each query's padded profile plus striped
    profiles at every width in *striped_lanes* (the SSE engine's
    8-bit/16-bit plan widths).  Content addressing makes every put
    idempotent, so re-building an unchanged workload is cheap.
    """
    from ..align.intersequence import _padded_profile

    store = PackStore(directory, create=True)
    for lanes in lanes_list:
        store.put_packs(database, matrix, lanes=lanes)
    for lanes in binned_lanes:
        # Length-binned screening packs (``repro search --screen``);
        # off by default so plain stores keep their historical shape.
        store.put_binned_packs(
            database, matrix, lanes=lanes, bin_width=bin_width
        )
    for query in queries or ():
        codes = matrix.alphabet.encode(query.residues)
        key = codes.tobytes()
        store.put_profile(
            "padded", key, matrix, (), _padded_profile(codes, matrix)
        )
        for lanes in striped_lanes:
            store.put_profile(
                "striped",
                key,
                matrix,
                (int(lanes),),
                StripedProfile.build(codes, matrix, lanes=lanes),
            )
    return store
