"""Checkpoint store: journal + compacted snapshot + recovery.

A :class:`CheckpointStore` owns one directory holding a write-ahead
journal (``journal.jsonl``, :mod:`repro.durability.journal`) and an
optional compacted snapshot (``snapshot.json``, ``repro.snapshot.v1``).
It doubles as the :class:`~repro.core.master.Master`'s journal sink:
the master calls the ``on_*`` hooks on every scheduling transition and
the store turns them into durable records.

Recovery replays snapshot + journal: every journaled winning
completion is restored onto a fresh master via
:func:`restore_into` (the task transitions READY → FINISHED without
re-execution and its :class:`~repro.core.task.TaskResult` — payload
included — rejoins ``master.results``), while tasks that were merely
assigned or in flight simply stay READY and are re-scheduled.  A torn
final record is dropped and truncated away; anything worse raises
:class:`~repro.durability.journal.JournalError`.

Snapshots are written atomically (tmp file, fsync, ``os.replace``,
directory fsync) so a crash during compaction can never destroy the
previous snapshot; compaction then restarts the journal with a bare
header, bounding replay time on long runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..align.api import SearchHit
from ..core.task import Task, TaskResult
from .journal import (
    JOURNAL_SCHEMA,
    SERVICE_JOURNAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    Journal,
    JournalError,
    scan_journal,
)

__all__ = [
    "CheckpointStore",
    "RecoveredState",
    "ServiceRecoveredState",
    "workload_fingerprint",
    "restore_into",
]


def workload_fingerprint(tasks: list[Task]) -> dict:
    """Identify a workload so a checkpoint can refuse the wrong one.

    The digest covers every task's identity and size; resuming a
    checkpoint against a different workload is a loud
    :class:`JournalError` instead of silently merged garbage.
    """
    hasher = hashlib.sha256()
    for task in sorted(tasks, key=lambda t: t.task_id):
        hasher.update(
            f"{task.task_id}:{task.query_id}:{task.query_length}:"
            f"{task.cells}:{task.chunk_index}\n".encode("utf-8")
        )
    return {
        "tasks": len(tasks),
        "cells": sum(t.cells for t in tasks),
        "digest": hasher.hexdigest(),
    }


def _encode_payload(payload: object) -> object:
    """JSON-encode a TaskResult payload (hit tuples or None)."""
    if payload is None:
        return None
    if isinstance(payload, (tuple, list)) and all(
        isinstance(hit, SearchHit) for hit in payload
    ):
        return {
            "hits": [
                [h.subject_id, h.subject_index, h.score, h.subject_length]
                for h in payload
            ]
        }
    raise JournalError(
        f"cannot journal result payload of type {type(payload).__name__}"
    )


def _decode_payload(encoded: object) -> object:
    if encoded is None:
        return None
    if isinstance(encoded, dict) and "hits" in encoded:
        return tuple(
            SearchHit(
                subject_id=str(sid),
                subject_index=int(sidx),
                score=int(score),
                subject_length=int(slen),
            )
            for sid, sidx, score, slen in encoded["hits"]
        )
    raise JournalError(f"unrecognized journaled payload: {encoded!r}")


def _complete_record(result: TaskResult, now: float) -> dict:
    return {
        "type": "complete",
        "time": now,
        "task": result.task_id,
        "pe": result.pe_id,
        "elapsed": result.elapsed,
        "cells": result.cells,
        "payload": _encode_payload(result.payload),
    }


def _decode_result(record: dict) -> TaskResult:
    return TaskResult(
        task_id=int(record["task"]),
        pe_id=str(record["pe"]),
        elapsed=float(record["elapsed"]),
        cells=int(record["cells"]),
        payload=_decode_payload(record.get("payload")),
    )


@dataclass
class RecoveredState:
    """Everything recovery extracted from one checkpoint directory."""

    #: Winning ``complete`` records, task-id order (first write wins).
    finished_records: list[dict] = field(default_factory=list)
    header: dict | None = None
    journal_records: int = 0
    journal_good_bytes: int = 0
    torn_tail: bool = False
    snapshot_tasks: int = 0

    @property
    def empty(self) -> bool:
        return not self.finished_records and self.header is None

    def results(self) -> list[TaskResult]:
        """The recovered winning results, payloads decoded."""
        return [_decode_result(r) for r in self.finished_records]


#: Admission-lifecycle record types of ``repro.service_journal.v1``.
SERVICE_RECORD_TYPES = (
    "header", "admit", "dispatch", "complete", "cancel", "expire",
    "drain", "drain_complete",
)

#: Request outcome -> service journal record type.
_SERVICE_OUTCOME_TYPES = {
    "done": "complete",
    "cancelled": "cancel",
    "expired": "expire",
}


@dataclass
class ServiceRecoveredState:
    """Folded admission state replayed from one service journal.

    ``requests`` holds one dict per ever-admitted request, in original
    admission order, each carrying the last-known lifecycle state
    (``queued``/``running``/``done``/``expired``/``cancelled``) plus
    everything needed to re-create its task and — for cluster/threaded
    environments — the inline query payload to re-execute it.
    """

    requests: list[dict] = field(default_factory=list)
    draining: bool = False
    drained: bool = False
    records: int = 0
    good_bytes: int = 0
    torn_tail: bool = False

    @property
    def empty(self) -> bool:
        return not self.requests and not self.draining


def _fold_service_records(
    records: list[dict], path: Path
) -> ServiceRecoveredState:
    """Collapse a service journal into per-request final states."""
    state = ServiceRecoveredState(records=len(records))
    by_id: dict[str, dict] = {}
    for record in records:
        kind = record.get("type")
        if kind == "header":
            if record.get("schema") != SERVICE_JOURNAL_SCHEMA:
                raise JournalError(
                    f"{path}: unsupported service journal schema "
                    f"{record.get('schema')!r}"
                )
        elif kind == "admit":
            request_id = str(record["request"])
            if request_id in by_id:
                continue  # duplicate admit (idempotent resubmission)
            folded = {
                "request_id": request_id,
                "tenant": str(record["tenant"]),
                "task": int(record["task"]),
                "query_id": str(record["query_id"]),
                "query_length": int(record["query_length"]),
                "cells": int(record["cells"]),
                "submitted_at": float(record["submitted_at"]),
                "deadline": (
                    None if record.get("deadline") is None
                    else float(record["deadline"])
                ),
                "query": record.get("query"),
                "wall": record.get("wall"),
                # Compaction folds terminal state into the admit record
                # so a compacted journal replays without its history.
                "state": str(record.get("state", "queued")),
                "dispatched_at": record.get("dispatched_at"),
                "finished_at": record.get("finished_at"),
            }
            by_id[request_id] = folded
            state.requests.append(folded)
        elif kind == "dispatch":
            folded = by_id.get(str(record["request"]))
            if folded is not None and folded["state"] == "queued":
                folded["state"] = "running"
                folded["dispatched_at"] = float(record["time"])
        elif kind in ("complete", "cancel", "expire"):
            folded = by_id.get(str(record["request"]))
            if folded is not None:
                folded["state"] = {
                    "complete": "done", "cancel": "cancelled",
                    "expire": "expired",
                }[kind]
                folded["finished_at"] = float(record["time"])
        elif kind == "drain":
            state.draining = True
        elif kind == "drain_complete":
            state.drained = True
    return state


class CheckpointStore:
    """Journal + snapshot pair under one directory.

    Acts as the master's journal sink (the ``on_*`` hooks) and as the
    recovery source (:meth:`recover`/:meth:`open`).  ``sync_every``
    maps straight onto :class:`Journal`; ``compact_every`` writes a
    snapshot and restarts the journal every N winning completions
    (``0`` disables compaction).

    A service-running master additionally journals its admission
    lifecycle into a sibling file (``service.jsonl``,
    ``repro.service_journal.v1``) through the ``on_service_*`` hooks;
    :meth:`open_service` replays it so a cold-restarted service master
    can rebuild its per-tenant queues and in-flight sets from disk.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"
    SERVICE_NAME = "service.jsonl"

    def __init__(
        self,
        directory: str | Path,
        sync_every: int = 1,
        compact_every: int = 0,
    ):
        if compact_every < 0:
            raise ValueError("compact_every must be non-negative")
        self.directory = Path(directory)
        self.sync_every = sync_every
        self.compact_every = compact_every
        self._journal: Journal | None = None
        self._workload: dict | None = None
        #: task id -> winning complete record (journaled or recovered).
        self._finished: dict[int, dict] = {}
        self._since_compaction = 0
        self._service_journal: Journal | None = None
        #: request id -> folded admission record (mirrors the service
        #: journal so compaction can rewrite it from memory).
        self._service_state: dict[str, dict] = {}
        self._service_draining = False

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def service_path(self) -> Path:
        return self.directory / self.SERVICE_NAME

    @property
    def service_open(self) -> bool:
        """True once :meth:`open_service` opened the service journal."""
        return self._service_journal is not None

    # -- recovery -------------------------------------------------------
    def _load_snapshot(self, workload: dict | None) -> list[dict]:
        path = self.snapshot_path
        if not path.exists():
            return []
        text = path.read_text(encoding="utf-8")
        if not text.strip():
            return []  # an empty snapshot is the same as no snapshot
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}: unreadable snapshot: {exc}") from None
        if not isinstance(document, dict) or (
            document.get("schema") != SNAPSHOT_SCHEMA
        ):
            raise JournalError(
                f"{path}: not a {SNAPSHOT_SCHEMA} snapshot"
            )
        self._check_workload(workload, document.get("workload"), path)
        finished = document.get("finished", [])
        if not isinstance(finished, list):
            raise JournalError(f"{path}: malformed finished list")
        return finished

    @staticmethod
    def _check_workload(
        expected: dict | None, found: object, path: Path
    ) -> None:
        if expected is None or found is None:
            return
        if expected.get("digest") != (found or {}).get("digest"):
            raise JournalError(
                f"{path}: checkpoint belongs to a different workload "
                f"(digest {(found or {}).get('digest')!r}, "
                f"expected {expected.get('digest')!r})"
            )

    def recover(self, workload: dict | None = None) -> RecoveredState:
        """Replay snapshot + journal into a :class:`RecoveredState`.

        Read-only: safe to call on a directory another process wrote,
        or mid-run on an open store (after :meth:`sync`).  Passing the
        current ``workload`` fingerprint validates the checkpoint
        against it.
        """
        state = RecoveredState()
        for record in self._load_snapshot(workload):
            task_id = int(record["task"])
            if task_id not in self._snapshot_seen(state):
                state.finished_records.append(record)
        state.snapshot_tasks = len(state.finished_records)

        scan = scan_journal(self.journal_path)
        if not scan.ok:
            raise JournalError(
                f"{self.journal_path}: corrupt record at line "
                f"{scan.error_line}: {scan.error}"
            )
        state.torn_tail = scan.torn
        state.journal_records = len(scan.records)
        state.journal_good_bytes = scan.good_bytes
        seen = {int(r["task"]) for r in state.finished_records}
        for record in scan.records:
            kind = record.get("type")
            if kind == "header":
                if record.get("schema") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"{self.journal_path}: unsupported journal schema "
                        f"{record.get('schema')!r}"
                    )
                self._check_workload(
                    workload, record.get("workload"), self.journal_path
                )
                if state.header is None:
                    state.header = record
            elif kind == "complete":
                task_id = int(record["task"])
                if task_id not in seen:
                    seen.add(task_id)
                    state.finished_records.append(record)
        state.finished_records.sort(key=lambda r: int(r["task"]))
        return state

    @staticmethod
    def _snapshot_seen(state: RecoveredState) -> set[int]:
        return {int(r["task"]) for r in state.finished_records}

    def open(self, workload: dict) -> RecoveredState:
        """Recover what exists, heal a torn tail, open for appending.

        Creates the directory on first use; writes a header record when
        the journal is fresh (or was just compacted away).  Returns the
        recovered state so the caller can restore it onto its master.
        """
        if self._journal is not None:
            raise JournalError("checkpoint store is already open")
        self.directory.mkdir(parents=True, exist_ok=True)
        recovered = self.recover(workload)
        if recovered.torn_tail:
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(recovered.journal_good_bytes)
        self._workload = dict(workload)
        self._finished = {
            int(r["task"]): r for r in recovered.finished_records
        }
        self._since_compaction = 0
        self._journal = Journal(self.journal_path, self.sync_every)
        if recovered.header is None:
            self._append(self._header_record())
        return recovered

    def _header_record(self, now: float = 0.0) -> dict:
        return {
            "type": "header",
            "schema": JOURNAL_SCHEMA,
            "workload": self._workload,
            "time": now,
        }

    # -- service journal ------------------------------------------------
    def recover_service(self) -> ServiceRecoveredState:
        """Replay the service journal into folded per-request states.

        Read-only, same failure semantics as :meth:`recover`: a torn
        final record is dropped (flagged via ``torn_tail``), mid-file
        corruption raises :class:`JournalError` loudly.  A missing file
        replays as empty — the service never admitted anything.
        """
        scan = scan_journal(self.service_path)
        if not scan.ok:
            raise JournalError(
                f"{self.service_path}: corrupt record at line "
                f"{scan.error_line}: {scan.error}"
            )
        state = _fold_service_records(scan.records, self.service_path)
        state.torn_tail = scan.torn
        state.good_bytes = scan.good_bytes
        return state

    def open_service(self) -> ServiceRecoveredState:
        """Recover the service journal, heal its tail, open for appends.

        The service analogue of :meth:`open`: replays what exists (so a
        cold-restarted :class:`~repro.service.core.ServiceCore` can
        rebuild its queues), truncates a torn tail, seeds the in-memory
        mirror compaction rewrites from, and appends a header when the
        file is fresh.  Requires the store itself to be open.
        """
        if self._journal is None:
            raise JournalError("checkpoint store is not open")
        if self._service_journal is not None:
            raise JournalError("service journal is already open")
        recovered = self.recover_service()
        if recovered.torn_tail:
            with open(self.service_path, "r+b") as handle:
                handle.truncate(recovered.good_bytes)
        self._service_state = {
            dict(r)["request_id"]: dict(r) for r in recovered.requests
        }
        self._service_draining = recovered.draining
        self._service_journal = Journal(self.service_path, self.sync_every)
        if recovered.records == 0:
            self._service_append(self._service_header())
        return recovered

    def _service_header(self, now: float = 0.0) -> dict:
        return {
            "type": "header",
            "schema": SERVICE_JOURNAL_SCHEMA,
            "time": now,
        }

    def _service_append(self, record: dict) -> None:
        if self._service_journal is None:
            raise JournalError("service journal is not open")
        self._service_journal.append(record)

    def on_service_admit(
        self,
        request_id: str,
        tenant: str,
        task_id: int,
        query_id: str,
        query_length: int,
        cells: int,
        now: float,
        deadline: float | None = None,
        query: dict | None = None,
    ) -> None:
        """One request cleared admission (durable before the reply)."""
        record = {
            "type": "admit",
            "time": now,
            "request": request_id,
            "tenant": tenant,
            "task": task_id,
            "query_id": query_id,
            "query_length": query_length,
            "cells": cells,
            "submitted_at": now,
            "deadline": deadline,
            # Wall-clock anchor: ``now`` lives in the dead process's
            # monotonic clock, which restarts at zero on recovery.  A
            # real-time environment translates deadlines into its new
            # clock domain through this anchor (the DES shares one
            # virtual clock across incarnations and ignores it).
            "wall": time.time(),
        }
        if query is not None:
            record["query"] = dict(query)
        self._service_append(record)
        folded = dict(record)
        folded["request_id"] = request_id
        folded["state"] = "queued"
        folded["dispatched_at"] = None
        folded["finished_at"] = None
        self._service_state[request_id] = folded

    def on_service_dispatch(self, request_id: str, now: float) -> None:
        self._service_append(
            {"type": "dispatch", "time": now, "request": request_id}
        )
        folded = self._service_state.get(request_id)
        if folded is not None:
            folded["state"] = "running"
            folded["dispatched_at"] = now

    def on_service_retire(
        self, request_id: str, outcome: str, now: float
    ) -> None:
        """A request reached a terminal state (done/cancelled/expired)."""
        kind = _SERVICE_OUTCOME_TYPES.get(outcome)
        if kind is None:
            raise JournalError(f"unknown service outcome {outcome!r}")
        self._service_append(
            {"type": kind, "time": now, "request": request_id}
        )
        folded = self._service_state.get(request_id)
        if folded is not None:
            folded["state"] = outcome
            folded["finished_at"] = now

    def on_service_drain(self, now: float) -> None:
        self._service_append({"type": "drain", "time": now})
        self._service_draining = True

    def on_service_drain_complete(self, now: float) -> None:
        self._service_append({"type": "drain_complete", "time": now})

    def _compact_service(self, now: float) -> None:
        """Rewrite the service journal as folded admit records.

        Mirrors master compaction: one ``admit`` record per request with
        its terminal/last-known state embedded, so replay after
        compaction never needs the retired history.
        """
        if self._service_journal is None:
            return
        self._service_journal.close()
        self._service_journal = Journal(
            self.service_path, self.sync_every, fresh=True
        )
        self._service_append(self._service_header(now))
        for request_id, folded in self._service_state.items():
            record = {
                "type": "admit",
                "time": now,
                "request": request_id,
                "tenant": folded["tenant"],
                "task": folded["task"],
                "query_id": folded["query_id"],
                "query_length": folded["query_length"],
                "cells": folded["cells"],
                "submitted_at": folded["submitted_at"],
                "deadline": folded["deadline"],
                "wall": folded.get("wall"),
                "state": folded["state"],
                "dispatched_at": folded["dispatched_at"],
                "finished_at": folded["finished_at"],
            }
            if folded.get("query") is not None:
                record["query"] = dict(folded["query"])
            self._service_append(record)
        if self._service_draining:
            self._service_append({"type": "drain", "time": now})

    # -- journal sink (the Master's hooks) ------------------------------
    def _append(self, record: dict) -> None:
        if self._journal is None:
            raise JournalError("checkpoint store is not open")
        self._journal.append(record)

    def on_register(self, pe_id: str, now: float, attempt: int = 0) -> None:
        self._append(
            {"type": "register", "time": now, "pe": pe_id,
             "attempt": attempt}
        )

    def on_deregister(
        self, pe_id: str, now: float, reason: str, released: tuple[int, ...]
    ) -> None:
        self._append(
            {"type": "deregister", "time": now, "pe": pe_id,
             "reason": reason, "released": list(released)}
        )

    def on_assign(
        self, pe_id: str, task_id: int, now: float, kind: str = "assign"
    ) -> None:
        self._append(
            {"type": "assign", "time": now, "pe": pe_id, "task": task_id,
             "kind": kind}
        )

    def on_complete(
        self,
        result: TaskResult,
        first: bool,
        losers: frozenset[str],
        now: float,
    ) -> None:
        if not first:
            return  # a stale completion changes no durable state
        record = _complete_record(result, now)
        self._append(record)
        self._finished[result.task_id] = record
        for loser in sorted(losers):
            self._append(
                {"type": "cancel", "time": now, "pe": loser,
                 "task": result.task_id}
            )
        self._since_compaction += 1
        if self.compact_every and (
            self._since_compaction >= self.compact_every
        ):
            self.compact(now)

    def on_cancelled(self, pe_id: str, task_id: int, now: float) -> None:
        self._append(
            {"type": "cancelled", "time": now, "pe": pe_id, "task": task_id}
        )

    # -- snapshots ------------------------------------------------------
    def compact(self, now: float = 0.0) -> None:
        """Snapshot all finished results atomically, restart the journal.

        Write order is what makes this crash-safe: the snapshot reaches
        disk (tmp + fsync + rename + directory fsync) *before* the
        journal is truncated, so every instant in time has either the
        old journal or the new snapshot holding the full finished set.
        """
        if self._journal is None:
            raise JournalError("checkpoint store is not open")
        document = {
            "schema": SNAPSHOT_SCHEMA,
            "workload": self._workload,
            "time": now,
            "finished": [
                self._finished[task_id] for task_id in sorted(self._finished)
            ],
        }
        tmp = self.snapshot_path.with_name(self.SNAPSHOT_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        directory_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)
        self._journal.close()
        self._journal = Journal(
            self.journal_path, self.sync_every, fresh=True
        )
        self._append(self._header_record(now))
        self._compact_service(now)
        self._since_compaction = 0

    # -- lifecycle ------------------------------------------------------
    def sync(self) -> None:
        if self._journal is not None:
            self._journal.sync()
        if self._service_journal is not None:
            self._service_journal.sync()

    def close(self) -> None:
        if self._service_journal is not None:
            self._service_journal.close()
            self._service_journal = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None


def restore_into(master, recovered: RecoveredState, now: float = 0.0) -> int:
    """Mark every recovered result finished on a fresh master.

    Emits one ``recovery_task`` event per restored task (via
    ``Master.restore_result``) and a single ``recovery_resume``
    summary event, so ``repro trace analyze`` can report recovered
    versus recomputed work.  Returns the number of restored tasks.

    Results whose task ids the pool does not know are skipped: they
    belong to service-admitted requests (created after the preloaded
    workload), and service recovery re-creates their tasks — with these
    same results — from the service journal's admit records.
    """
    restored = 0
    for result in recovered.results():
        if result.task_id not in master.pool:
            continue
        if master.restore_result(result, now):
            restored += 1
    master.events.emit(
        "recovery_resume",
        now,
        pe="",
        restored=restored,
        journal_records=recovered.journal_records,
        snapshot_tasks=recovered.snapshot_tasks,
        torn_tail=recovered.torn_tail,
    )
    return restored
