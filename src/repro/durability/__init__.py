"""Durable master state: write-ahead journal, snapshots, recovery.

See :mod:`repro.durability.journal` for the on-disk record format and
:mod:`repro.durability.checkpoint` for the checkpoint store that the
master journals into and recovers from.
"""

from .checkpoint import (
    CheckpointStore,
    RecoveredState,
    ServiceRecoveredState,
    restore_into,
    workload_fingerprint,
)
from .journal import (
    JOURNAL_SCHEMA,
    SERVICE_JOURNAL_SCHEMA,
    SNAPSHOT_SCHEMA,
    Journal,
    JournalError,
    JournalScan,
    decode_record,
    encode_record,
    read_journal,
    scan_journal,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SERVICE_JOURNAL_SCHEMA",
    "Journal",
    "JournalError",
    "JournalScan",
    "encode_record",
    "decode_record",
    "scan_journal",
    "read_journal",
    "CheckpointStore",
    "RecoveredState",
    "ServiceRecoveredState",
    "workload_fingerprint",
    "restore_into",
]
