"""Append-only CRC-checksummed write-ahead journal (``repro.journal.v1``).

One journal is one JSONL file.  Every line is a single JSON object with
an embedded ``"crc"`` field: the CRC-32 (as eight lowercase hex digits)
of the record serialized *without* the crc field, keys sorted, compact
separators.  Because the body serialization is canonical, a record
round-trips bit-exactly and any torn or flipped byte is detected.

Failure semantics, chosen to match what a crash can physically do to an
append-only file:

* a damaged **final** record is a torn write — the machine died mid
  ``write``.  Readers drop it silently (the run resumes from the last
  durable record) and :meth:`CheckpointStore.open` truncates it away
  before appending;
* a damaged record **before** the end is real corruption — storage
  rot, truncation by a third party — and raises :class:`JournalError`
  loudly rather than resuming from silently wrong state.

Durability is controlled by ``sync_every``: ``1`` fsyncs after every
record (every completion is durable before the master acknowledges
it), ``N`` batches the fsync every N records, and ``0`` never fsyncs
(the OS flushes whenever it likes — fastest, weakest).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "JOURNAL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SERVICE_JOURNAL_SCHEMA",
    "JournalError",
    "Journal",
    "JournalScan",
    "encode_record",
    "decode_record",
    "scan_journal",
    "read_journal",
]

JOURNAL_SCHEMA = "repro.journal.v1"
SNAPSHOT_SCHEMA = "repro.snapshot.v1"
#: Sibling journal of admission-lifecycle records (``admit`` /
#: ``dispatch`` / ``complete`` / ``cancel`` / ``expire`` / ``drain``),
#: same record codec and failure semantics as ``repro.journal.v1``.
SERVICE_JOURNAL_SCHEMA = "repro.service_journal.v1"


class JournalError(RuntimeError):
    """A journal or snapshot failed validation (corruption, mismatch)."""


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: dict) -> str:
    """Serialize one record as a CRC-checksummed journal line."""
    if "crc" in record:
        raise JournalError("record must not carry a crc field of its own")
    crc = format(zlib.crc32(_canonical(record).encode("utf-8")), "08x")
    return _canonical({**record, "crc": crc})


def decode_record(line: str) -> dict:
    """Parse and validate one journal line; raises :class:`JournalError`."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(f"unparseable journal record: {exc}") from None
    if not isinstance(record, dict):
        raise JournalError("journal record is not a JSON object")
    crc = record.pop("crc", None)
    if not isinstance(crc, str):
        raise JournalError("journal record carries no crc")
    expected = format(zlib.crc32(_canonical(record).encode("utf-8")), "08x")
    if crc != expected:
        raise JournalError(
            f"crc mismatch: recorded {crc}, computed {expected}"
        )
    return record


class Journal:
    """Append-only writer over one journal file.

    ``sync_every=1`` (the default) fsyncs after every appended record;
    ``N > 1`` fsyncs every N records; ``0`` never fsyncs explicitly.
    ``fresh=True`` truncates any existing file (used by compaction).
    """

    def __init__(
        self,
        path: str | Path,
        sync_every: int = 1,
        fresh: bool = False,
    ):
        if sync_every < 0:
            raise ValueError("sync_every must be non-negative")
        self.path = Path(path)
        self.sync_every = sync_every
        self._handle = open(
            self.path, "w" if fresh else "a", encoding="utf-8"
        )
        self._unsynced = 0
        self.appended = 0

    def append(self, record: dict) -> None:
        self._handle.write(encode_record(record) + "\n")
        self.appended += 1
        self._unsynced += 1
        if self.sync_every and self._unsynced >= self.sync_every:
            self.sync()
        else:
            self._handle.flush()

    def sync(self) -> None:
        """Flush and fsync everything appended so far."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self.sync_every:
            os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalScan:
    """Outcome of scanning one journal file front to back."""

    records: list[dict] = field(default_factory=list)
    #: Byte offset where the valid prefix ends (truncate here to heal
    #: a torn tail before appending).
    good_bytes: int = 0
    #: A damaged final record was dropped (crash mid-append).
    torn: bool = False
    #: Mid-file corruption: description and 1-based line number.
    error: str | None = None
    error_line: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def scan_journal(path: str | Path) -> JournalScan:
    """Scan a journal, validating every record's CRC.

    Never raises on file content: a damaged final record sets
    ``torn``, damage anywhere earlier sets ``error``/``error_line``
    (and scanning stops there).  A missing file scans as empty.
    """
    path = Path(path)
    if not path.exists():
        return JournalScan()
    data = path.read_bytes()
    scan = JournalScan()
    pos = 0
    line_no = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            line, end = data[pos:], len(data)
        else:
            line, end = data[pos:newline], newline + 1
        line_no += 1
        stripped = line.strip()
        if stripped:
            try:
                scan.records.append(decode_record(stripped.decode("utf-8")))
            except (JournalError, UnicodeDecodeError) as exc:
                if data[end:].strip():
                    scan.error = str(exc)
                    scan.error_line = line_no
                else:
                    scan.torn = True
                return scan
        scan.good_bytes = end
        pos = end
    return scan


def read_journal(path: str | Path) -> tuple[list[dict], bool]:
    """All valid records of a journal, plus the torn-tail flag.

    Raises :class:`JournalError` on mid-file corruption; a torn final
    record is tolerated (dropped) because that is what a crash during
    an append legitimately leaves behind.
    """
    scan = scan_journal(path)
    if not scan.ok:
        raise JournalError(
            f"{path}: corrupt record at line {scan.error_line}: {scan.error}"
        )
    return scan.records, scan.torn
