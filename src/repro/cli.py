"""Command-line interface: ``repro-sw`` / ``python -m repro``.

Subcommands mirror the paper's workflow:

* ``search``  — compare a query FASTA against a database FASTA on a set
  of worker engines (the real execution environment of Fig. 4);
* ``index``   — convert a FASTA file to the paper's indexed format;
* ``simulate``— run a workload on the simulated hybrid platform;
* ``tables``  — regenerate the paper's tables and figures;
* ``metrics`` — ``metrics show`` renders/validates a snapshot
  (Prometheus/OpenMetrics text, JSON, or a summary with
  p50/p95/p99 quantile columns) and ``metrics diff`` reports
  per-family deltas between two snapshots;
  ``search``/``simulate``/``cluster`` write such snapshots via
  ``--metrics-out`` and live interval-delta streams via
  ``--telemetry-out``;
* ``top``     — terminal dashboard: poll a live master's ``/statusz``
  endpoint (``cluster``/``serve`` ``--http-port``) or tail a
  ``repro.telemetry.v1`` stream;
* ``trace``   — analyze an event log written by ``--events-out``:
  per-PE timelines, scheduling diagnostics, Gantt renderings and
  run-vs-run diffs (``repro.trace_report.v1`` documents, also written
  directly by ``--trace-out``);
* ``journal`` — inspect/verify a ``--checkpoint`` directory's
  write-ahead journal and snapshot (``repro journal verify`` checks
  every record's CRC);
* ``db``      — build/inspect/verify a persistent pre-packed database
  store (``repro.packstore.v1``); ``search``/``cluster``/``serve``/
  ``worker`` warm-start from it via ``--store``;
* ``loadgen`` — open-loop Poisson load against a ``serve --service``
  master: submit on a seeded arrival schedule, report admitted/shed
  counts and latency quantiles.
"""

from __future__ import annotations

import argparse
import sys

from .align import (
    DEFAULT_GAPS,
    affine_gap,
    align_linear_space,
    get_matrix,
    nw_align,
    semiglobal_align,
)
from .bench import (
    fig5_schedule,
    fig6_adjustment,
    format_cell_rows,
    format_fig6,
    format_headline,
    format_policy_rows,
    headline,
    table1_policies,
    table3_sse,
    table4_gpu,
    table5_hybrid,
    tasks_for_profile,
)
from .cluster.launcher import DEFAULT_HEARTBEAT_TIMEOUT
from .core import (
    HybridRuntime,
    InterSequenceEngine,
    StripedSSEEngine,
    make_policy,
)
from .sequences import SequenceDatabase, get_profile, index_fasta, read_fasta
from .simulate import HybridSimulator, gantt, hybrid_platform

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree for repro-sw."""
    parser = argparse.ArgumentParser(
        prog="repro-sw",
        description="Smith-Waterman on hybrid platforms with dynamic "
        "workload adjustment (IPDPSW 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="query x database SW search")
    search.add_argument("query", help="query FASTA file")
    search.add_argument("database", help="database FASTA file")
    search.add_argument("--matrix", default="blosum62")
    search.add_argument("--gap-open", type=int, default=DEFAULT_GAPS.open)
    search.add_argument("--gap-extend", type=int, default=DEFAULT_GAPS.extend)
    search.add_argument("--gpus", type=int, default=1,
                        help="inter-sequence engines to spawn")
    search.add_argument("--sse", type=int, default=1,
                        help="striped engines to spawn")
    search.add_argument("--policy", default="pss",
                        choices=["ss", "pss", "fixed", "wfixed"])
    search.add_argument("--no-adjustment", action="store_true")
    search.add_argument("--top", type=int, default=5)
    search.add_argument(
        "--evalue", action="store_true",
        help="annotate hits with Karlin-Altschul E-values/bit scores",
    )
    search.add_argument(
        "--chunks", type=int, default=1,
        help="database chunks per query (coarse-grained decomposition; "
        "1 = the paper's very coarse tasks)",
    )
    _add_batching_flags(search)
    _add_screen_flags(search)
    _add_checkpoint_flag(search)
    _add_store_flag(search)
    _add_telemetry_flags(search)

    align = sub.add_parser("align", help="pairwise alignment of two FASTAs")
    align.add_argument("query", help="FASTA with the query (first record)")
    align.add_argument("subject", help="FASTA with the subject (first record)")
    align.add_argument(
        "--mode", default="local",
        choices=["local", "global", "semiglobal"],
    )
    align.add_argument("--matrix", default="blosum62")
    align.add_argument("--gap-open", type=int, default=DEFAULT_GAPS.open)
    align.add_argument("--gap-extend", type=int, default=DEFAULT_GAPS.extend)

    index = sub.add_parser("index", help="convert FASTA to indexed format")
    index.add_argument("fasta")
    index.add_argument("output")

    cluster = sub.add_parser(
        "cluster",
        help="distributed search: TCP master + slave worker processes",
    )
    cluster.add_argument("query", help="query FASTA file")
    cluster.add_argument("database", help="database FASTA file")
    cluster.add_argument(
        "--workers", default="gpu,sse",
        help="comma-separated engine kinds, one worker each "
        "(gpu/sse/scan), e.g. 'gpu,gpu,sse'",
    )
    cluster.add_argument("--policy", default="pss",
                         choices=["ss", "pss", "fixed", "wfixed"])
    cluster.add_argument("--no-adjustment", action="store_true")
    cluster.add_argument("--top", type=int, default=5)
    cluster.add_argument(
        "--threads", action="store_true",
        help="run workers as threads instead of processes",
    )
    cluster.add_argument(
        "--faults", metavar="FILE", default=None,
        help="inject a repro.fault_plan.v1 JSON plan into the workers",
    )
    cluster.add_argument(
        "--heartbeat", type=float, default=None,
        help="seconds of silence before a worker is reaped (default "
        f"{DEFAULT_HEARTBEAT_TIMEOUT:g}; 0 disables reaping)",
    )
    cluster.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="serve live /metrics, /healthz and /statusz endpoints "
        "from the master for the duration of the run (0 = free port)",
    )
    _add_batching_flags(cluster)
    _add_screen_flags(cluster)
    _add_checkpoint_flag(cluster)
    _add_store_flag(cluster)
    _add_telemetry_flags(cluster)

    simulate = sub.add_parser(
        "simulate", help="simulate a paper workload on a hybrid platform"
    )
    simulate.add_argument("--database", default="swissprot",
                          help="profile name or alias (e.g. swissprot, dog)")
    simulate.add_argument("--queries", type=int, default=40)
    simulate.add_argument("--gpus", type=int, default=4)
    simulate.add_argument("--sse", type=int, default=4)
    simulate.add_argument("--fpgas", type=int, default=0)
    simulate.add_argument("--policy", default="pss",
                          choices=["ss", "pss", "fixed", "wfixed"])
    simulate.add_argument("--no-adjustment", action="store_true")
    simulate.add_argument("--gantt", action="store_true")
    simulate.add_argument("--svg", metavar="FILE", default=None,
                          help="write the schedule as an SVG Gantt chart")
    simulate.add_argument(
        "--faults", metavar="FILE", default=None,
        help="inject a repro.fault_plan.v1 JSON plan into the simulation",
    )
    simulate.add_argument(
        "--heartbeat", type=float, default=None,
        help="virtual seconds of silence before a PE is reaped "
        "(default 10x the notify interval when faults are injected; "
        "0 disables reaping)",
    )
    _add_batching_flags(simulate)
    _add_screen_flags(simulate)
    _add_checkpoint_flag(simulate)
    _add_telemetry_flags(simulate)

    generate = sub.add_parser(
        "generate",
        help="materialize a synthetic workload (FASTA query + database)",
    )
    generate.add_argument("--database", default="dog",
                          help="Table II profile name or alias")
    generate.add_argument("--scale", type=float, default=0.01,
                          help="fraction of the published sequence count")
    generate.add_argument("--queries", type=int, default=40)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True,
                          help="output directory")

    inspect = sub.add_parser(
        "inspect", help="print the header/stats of an indexed file"
    )
    inspect.add_argument("indexed")
    inspect.add_argument("--records", type=int, default=3,
                         help="number of leading records to preview")

    serve = sub.add_parser(
        "serve",
        help="run a standalone TCP master for remote workers "
        "(the paper's multi-host deployment)",
    )
    serve.add_argument("query", help="query FASTA file")
    serve.add_argument("database", help="database FASTA file")
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for the master socket (default loopback; "
        "pass an interface address or 0.0.0.0 explicitly to accept "
        "workers from other hosts)",
    )
    serve.add_argument("--port", type=int, default=7171)
    serve.add_argument("--policy", default="pss",
                       choices=["ss", "pss", "fixed", "wfixed"])
    serve.add_argument("--no-adjustment", action="store_true")
    serve.add_argument(
        "--heartbeat", type=float, default=DEFAULT_HEARTBEAT_TIMEOUT,
        help="silent-worker reap timeout in seconds (default "
        f"{DEFAULT_HEARTBEAT_TIMEOUT:g}, shared with `repro cluster`; "
        "0 disables reaping)",
    )
    serve.add_argument("--timeout", type=float, default=3600.0)
    serve.add_argument("--top", type=int, default=5)
    serve.add_argument(
        "--export", default=None,
        help="directory to write the indexed query/database files that "
        "workers must be pointed at (default: a temp directory)",
    )
    serve.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="serve live /metrics, /healthz and /statusz endpoints "
        "alongside the master (0 = free port)",
    )
    serve.add_argument(
        "--service", action="store_true",
        help="always-on mode: accept submit/poll/cancel/drain requests "
        "(protocol 4) on top of the initial workload; the master keeps "
        "running until SIGTERM or a drain request, then finishes "
        "in-flight queries and exits 0 with a final service record",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=16,
        help="per-tenant admission queue bound; a full lane sheds with "
        "reason queue_full (service mode)",
    )
    serve.add_argument(
        "--max-backlog-seconds", type=float, default=60.0,
        help="shed new requests with reason backlog when estimated "
        "queued+in-flight work exceeds this many seconds of fleet "
        "throughput (0 disables the gate; service mode)",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline applied to submissions that carry none; expired "
        "requests are cancelled wherever they run (service mode)",
    )
    serve.add_argument(
        "--tenant-weight", action="append", default=None,
        metavar="TENANT=WEIGHT",
        help="fair-dequeue weight for one tenant (repeatable; "
        "default weight 1)",
    )
    serve.add_argument(
        "--admission", default="static", choices=["static", "slo"],
        help="admission gate: static (fixed --max-backlog-seconds "
        "bound) or slo (shed a deadline-carrying request when its "
        "predicted completion — service-rate EWMA + backlog, inflated "
        "by the observed error quantile — would overshoot the "
        "deadline); service mode",
    )
    _add_checkpoint_flag(serve)
    _add_store_flag(serve)

    worker = sub.add_parser(
        "worker", help="run a standalone slave against a remote master"
    )
    worker.add_argument("--host", required=True)
    worker.add_argument("--port", type=int, required=True)
    worker.add_argument("--pe-id", required=True)
    worker.add_argument("--engine", default="sse",
                        choices=["gpu", "sse", "scan"])
    worker.add_argument("--queries", required=True,
                        help="indexed query file (from `serve --export`)")
    worker.add_argument("--database", required=True,
                        help="indexed database file")
    worker.add_argument("--matrix", default="blosum62")
    worker.add_argument("--gap-open", type=int, default=10)
    worker.add_argument("--gap-extend", type=int, default=2)
    worker.add_argument("--top", type=int, default=5)
    worker.add_argument("--chunk-size", type=int, default=16)
    _add_store_flag(worker)

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load against a `serve --service` master",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--rate", type=float, required=True,
                         help="mean arrival rate lambda (requests/second)")
    loadgen.add_argument("--horizon", type=float, required=True,
                         help="submission window in seconds")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="rng seed: same seed, same schedule and "
                         "queries")
    loadgen.add_argument("--tenants", default="default",
                         help="comma-separated tenant names, assigned "
                         "round-robin")
    loadgen.add_argument("--deadline", type=float, default=None,
                         help="relative per-request deadline in seconds")
    loadgen.add_argument("--min-length", type=int, default=40)
    loadgen.add_argument("--max-length", type=int, default=120)
    loadgen.add_argument("--wait-timeout", type=float, default=60.0,
                         help="seconds to wait for each admitted request "
                         "after the submission window closes")
    loadgen.add_argument("--retries", type=int, default=0,
                         help="submit attempts per request with jittered "
                         "exponential backoff (idempotent resubmission "
                         "under stable request ids; 0 = single attempt)")
    loadgen.add_argument("--request-id-prefix", default=None,
                         metavar="PREFIX",
                         help="pin request ids to PREFIX-NNNNN so a "
                         "recovery harness can poll them after a master "
                         "restart")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of a "
                         "summary")

    tables = sub.add_parser("tables", help="regenerate paper tables/figures")
    tables.add_argument(
        "which",
        choices=["1", "3", "4", "5", "fig5", "fig6", "headline", "all"],
    )
    tables.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write machine-readable CSV files into DIR",
    )

    metrics = sub.add_parser(
        "metrics",
        help="render/summarize metrics snapshots written by "
        "--metrics-out (bare `metrics FILE` is shorthand for "
        "`metrics show FILE`)",
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command",
                                         required=True)

    mshow = metrics_sub.add_parser(
        "show", help="render/validate one snapshot"
    )
    mshow.add_argument("snapshot", help="metrics snapshot JSON file")
    mshow.add_argument(
        "--format", default="prom",
        choices=["prom", "openmetrics", "json", "names", "summary"],
        help="prom: Prometheus text exposition; openmetrics: "
        "OpenMetrics 1.0 text (with # EOF); json: normalized "
        "snapshot; names: metric names only; summary: one line per "
        "series with p50/p95/p99 quantile columns for histograms",
    )

    mdiff = metrics_sub.add_parser(
        "diff",
        help="per-family deltas between two snapshots (counters and "
        "histograms subtract; gauges show before -> after; families "
        "absent from the second snapshot are dropped)",
    )
    mdiff.add_argument("first", help="baseline snapshot JSON file")
    mdiff.add_argument("second", help="comparison snapshot JSON file")

    top = sub.add_parser(
        "top",
        help="terminal dashboard: poll a live master's /statusz "
        "(--http-port) or tail a repro.telemetry.v1 stream",
    )
    top.add_argument(
        "source",
        help="master base URL (http://host:port) or telemetry JSONL path",
    )
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between frames")
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: until the run finishes or "
        "interrupted)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen "
        "(the default when stdout is not a terminal)",
    )

    trace = sub.add_parser(
        "trace",
        help="analyze an event log written by --events-out "
        "(timelines, diagnostics, Gantt, diffs)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    analyze = trace_sub.add_parser(
        "analyze", help="reconstruct timelines and diagnostics"
    )
    analyze.add_argument("events", help="event-log JSONL file")
    analyze.add_argument(
        "--format", default="text", choices=["text", "json"],
    )
    analyze.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the repro.trace_report.v1 JSON document",
    )
    analyze.add_argument("--omega", type=int, default=8,
                         help="rate-reconstruction window length")

    tgantt = trace_sub.add_parser(
        "gantt", help="render the reconstructed schedule as a Gantt chart"
    )
    tgantt.add_argument("events", help="event-log JSONL file")
    tgantt.add_argument("--width", type=int, default=72)
    tgantt.add_argument(
        "--svg", metavar="FILE", default=None,
        help="write an SVG rendering instead of ASCII",
    )
    tgantt.add_argument("--title", default="")
    tgantt.add_argument("--omega", type=int, default=8)

    tdiff = trace_sub.add_parser(
        "diff",
        help="compare two runs (event logs or trace reports), e.g. "
        "SS vs PSS",
    )
    tdiff.add_argument("first", help="event-log JSONL or trace-report JSON")
    tdiff.add_argument("second", help="event-log JSONL or trace-report JSON")
    tdiff.add_argument(
        "--format", default="text", choices=["text", "json"],
    )
    tdiff.add_argument("--omega", type=int, default=8)

    journal = sub.add_parser(
        "journal",
        help="inspect/verify a checkpoint journal written by --checkpoint",
    )
    journal_sub = journal.add_subparsers(dest="journal_command",
                                         required=True)

    jinspect = journal_sub.add_parser(
        "inspect", help="summarize a journal: records, tasks, PEs"
    )
    jinspect.add_argument(
        "path", help="checkpoint directory or journal.jsonl file"
    )
    jinspect.add_argument(
        "--format", default="text", choices=["text", "json"],
    )

    jverify = journal_sub.add_parser(
        "verify",
        help="check every record's CRC and the snapshot/journal schema",
    )
    jverify.add_argument(
        "path", help="checkpoint directory or journal.jsonl file"
    )

    db = sub.add_parser(
        "db",
        help="build/inspect/verify a persistent pre-packed database "
        "store (repro.packstore.v1) for warm-started engines",
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)

    dbuild = db_sub.add_parser(
        "build",
        help="serialize a database's lane packs (and optional query "
        "profiles) into a store directory",
    )
    dbuild.add_argument("database", help="database FASTA file")
    dbuild.add_argument(
        "--store", required=True, metavar="DIR",
        help="store directory (created if missing)",
    )
    dbuild.add_argument(
        "--queries", default=None, metavar="FASTA",
        help="also serialize these queries' padded/striped profiles",
    )
    dbuild.add_argument("--matrix", default="blosum62")
    dbuild.add_argument(
        "--lanes", default="32", metavar="N[,N...]",
        help="comma-separated lane widths to pack at (default: 32, "
        "the inter-sequence engine's width)",
    )
    dbuild.add_argument(
        "--screen-lanes", default=None, metavar="N[,N...]",
        help="also serialize length-binned screening packs at these "
        "lane widths (for `search --screen --store`; default: none)",
    )
    dbuild.add_argument(
        "--bin-width", type=int, default=None, metavar="W",
        help="length-bin width for --screen-lanes entries (default: "
        "the screening kernel's default)",
    )

    dinspect = db_sub.add_parser(
        "inspect", help="list a store's entries and their geometry"
    )
    dinspect.add_argument("store", metavar="DIR")
    dinspect.add_argument(
        "--format", default="text", choices=["text", "json"],
    )

    dverify = db_sub.add_parser(
        "verify",
        help="re-check every manifest and array CRC; non-zero exit on "
        "any corruption",
    )
    dverify.add_argument("store", metavar="DIR")
    return parser


def _add_batching_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--batch", type=int, default=1, metavar="K",
        help="coalesce up to K compatible queries per assignment into "
        "one multi-query sweep (1 = the paper's per-task granularity; "
        "results are bit-identical either way)",
    )
    command.add_argument(
        "--cache", action="store_true",
        help="enable the process-wide pack/profile caches so repeated "
        "tasks skip database conversion (the simulator models timing "
        "only, so there the flag is accepted but has no kernel state "
        "to cache)",
    )


def _add_screen_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--screen", action="store_true",
        help="two-stage pipeline on the inter-sequence engines: an "
        "8-bit saturating screen over length-binned packs, then exact "
        "rescoring of saturated/above-threshold sequences (final hits "
        "are bit-identical to a full exact sweep; the simulator models "
        "timing only, so there the flag is accepted but inert)",
    )
    command.add_argument(
        "--screen-threshold", type=int, default=None, metavar="SCORE",
        help="explicit rescore threshold for --screen (default: "
        "adaptive, derived from the running top-k scores; exactness "
        "holds for any value)",
    )


def _add_store_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--store", metavar="DIR", default=None,
        help="warm-start from a repro.packstore.v1 directory (see "
        "`repro-sw db build`): engines memory-map pre-packed database "
        "shards and profiles instead of re-packing on start",
    )


def _add_checkpoint_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal master state under DIR (crash-safe write-ahead "
        "log); re-running with the same DIR resumes, skipping tasks "
        "that already finished",
    )


def _add_telemetry_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the run's metrics snapshot as JSON",
    )
    command.add_argument(
        "--events-out", metavar="FILE", default=None,
        help="write the run's structured event log as JSONL",
    )
    command.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the run's trace analysis "
        "(repro.trace_report.v1 JSON)",
    )
    command.add_argument(
        "--telemetry-out", metavar="FILE", default=None,
        help="append a live repro.telemetry.v1 JSONL stream of "
        "interval-delta metric samples during the run (virtual-clock "
        "samples in the simulator)",
    )
    command.add_argument(
        "--telemetry-interval", type=float, default=1.0,
        metavar="SECONDS",
        help="sampling cadence for --telemetry-out (default 1.0)",
    )


def _write_telemetry(args: argparse.Namespace, metrics: dict, events) -> None:
    """Honour --metrics-out/--events-out/--trace-out on a run report."""
    import json

    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2)
            handle.write("\n")
        print(f"(wrote metrics snapshot {args.metrics_out})")
    if getattr(args, "events_out", None):
        events.to_jsonl(args.events_out)
        print(f"(wrote event log {args.events_out})")
    if getattr(args, "trace_out", None):
        from .observability import analyze_events

        document = analyze_events(events).to_document()
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"(wrote trace report {args.trace_out})")


def _cmd_search(args: argparse.Namespace) -> int:
    matrix = get_matrix(args.matrix)
    gaps = affine_gap(args.gap_open, args.gap_extend)
    queries = read_fasta(args.query, alphabet=matrix.alphabet)
    database = SequenceDatabase.from_fasta(
        args.database, alphabet=matrix.alphabet
    )
    store = None
    if args.store is not None:
        from .store import PackStore, StoreError

        # Fail before the run starts: a StoreError surfacing inside a
        # PE thread would stall the master instead of aborting.
        try:
            store = PackStore(args.store)
            store.verify()
        except StoreError as exc:
            print(f"store verification FAILED: {exc}", file=sys.stderr)
            return 1
    engines = {}
    for i in range(args.gpus):
        engines[f"gpu{i}"] = InterSequenceEngine(
            matrix, gaps, top=args.top, cache=args.cache, store=store,
            screen=args.screen, screen_threshold=args.screen_threshold,
        )
    for i in range(args.sse):
        engines[f"sse{i}"] = StripedSSEEngine(
            matrix, gaps, top=args.top, cache=args.cache, store=store
        )
    runtime = HybridRuntime(
        engines,
        policy=make_policy(args.policy),
        adjustment=not args.no_adjustment,
        checkpoint_dir=args.checkpoint,
        batch=args.batch,
        telemetry_path=args.telemetry_out,
        telemetry_interval=args.telemetry_interval,
    )
    report = runtime.run(
        queries, database, chunks_per_query=args.chunks, top=args.top
    )
    params = None
    if args.evalue:
        from .align.statistics import stock_parameters

        params = stock_parameters(matrix, gaps)
        if params is None:
            import numpy as np

            from .align.statistics import calibrate

            params = calibrate(matrix, gaps, np.random.default_rng(0))
    for query in queries:
        print(f"# query {query.id} ({len(query)} residues)")
        for hit in report.results[query.id]:
            stats = ""
            if params is not None:
                evalue = params.evalue(
                    hit.score, len(query), database.total_residues
                )
                stats = (
                    f" bits={params.bit_score(hit.score):<7.1f}"
                    f" E={evalue:.2g}"
                )
            print(
                f"  {hit.subject_id:<30} score={hit.score:<6}"
                f" length={hit.subject_length}{stats}"
            )
    print(
        f"# makespan {report.makespan:.2f}s"
        f"  {report.gcups:.4f} GCUPS  tasks by PE: {report.tasks_by_pe}"
    )
    _write_telemetry(args, report.metrics, report.events)
    return 0


def _cmd_align(args: argparse.Namespace) -> int:
    matrix = get_matrix(args.matrix)
    gaps = affine_gap(args.gap_open, args.gap_extend)
    query = read_fasta(args.query, alphabet=matrix.alphabet)[0]
    subject = read_fasta(args.subject, alphabet=matrix.alphabet)[0]
    if args.mode == "local":
        alignment = align_linear_space(query, subject, matrix, gaps)
    elif args.mode == "global":
        alignment = nw_align(query, subject, matrix, gaps)
    else:
        alignment = semiglobal_align(query, subject, matrix, gaps)
    print(f"# mode={args.mode} matrix={matrix.name} gaps={gaps}")
    print(alignment.pretty())
    print(f"# CIGAR {alignment.cigar()}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    stats = index_fasta(args.fasta, args.output)
    print(
        f"indexed {stats.count} sequences (longest {stats.longest}) "
        f"-> {args.output}"
    )
    return 0


def _load_fault_plan(path: str | None):
    if path is None:
        return None
    from .faults import FaultPlan

    return FaultPlan.load(path)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import run_cluster

    kinds = [k.strip() for k in args.workers.split(",") if k.strip()]
    workers = {f"{kind}{i}": kind for i, kind in enumerate(kinds)}
    report = run_cluster(
        args.query,
        args.database,
        workers,
        policy=make_policy(args.policy),
        adjustment=not args.no_adjustment,
        top=args.top,
        use_processes=not args.threads,
        heartbeat_timeout=args.heartbeat,
        faults=_load_fault_plan(args.faults),
        checkpoint_dir=args.checkpoint,
        batch=args.batch,
        cache=args.cache,
        store_dir=args.store,
        screen=args.screen,
        screen_threshold=args.screen_threshold,
        http_port=args.http_port,
        telemetry_path=args.telemetry_out,
        telemetry_interval=args.telemetry_interval,
    )
    for query_id, hits in report.results.items():
        print(f"# query {query_id}")
        for hit in hits:
            print(f"  {hit.subject_id:<30} score={hit.score:<6}"
                  f" length={hit.subject_length}")
    print(f"# makespan {report.makespan:.2f}s  {report.gcups:.4f} GCUPS  "
          f"workers: {sorted(workers)}")
    _write_telemetry(args, report.metrics, report.events)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = get_profile(args.database)
    tasks = tasks_for_profile(profile, args.queries)
    simulator = HybridSimulator(
        hybrid_platform(args.gpus, args.sse, num_fpgas=args.fpgas),
        policy=make_policy(args.policy),
        adjustment=not args.no_adjustment,
        faults=_load_fault_plan(args.faults),
        heartbeat_timeout=args.heartbeat,
        checkpoint_dir=args.checkpoint,
        batch=args.batch,
        telemetry_path=args.telemetry_out,
        telemetry_interval=args.telemetry_interval,
    )
    report = simulator.run(tasks)
    extras = f" + {args.fpgas} FPGAs" if args.fpgas else ""
    print(
        f"{profile.name}: {args.gpus} GPUs + {args.sse} SSE cores{extras}, "
        f"policy={report.policy_name}, adjustment={report.adjustment}"
    )
    print(
        f"  makespan {report.makespan:.1f}s  {report.gcups:.2f} GCUPS  "
        f"replicas {report.replicas_assigned}  won {report.tasks_won}"
    )
    if args.gantt:
        print(gantt(report))
    if args.svg:
        from .simulate import write_gantt_svg

        write_gantt_svg(
            report, args.svg,
            title=f"{profile.name} on {args.gpus} GPUs + {args.sse} SSEs",
        )
        print(f"(wrote {args.svg})")
    _write_telemetry(args, report.metrics, report.events)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    import os

    import numpy as np

    from .sequences import query_set, write_fasta

    profile = get_profile(args.database)
    rng = np.random.default_rng(args.seed)
    os.makedirs(args.out, exist_ok=True)
    database = profile.materialize(rng, scale=args.scale)
    db_path = os.path.join(args.out, "database.fasta")
    write_fasta(database, db_path)
    queries = query_set(
        args.queries, rng,
        min_length=profile.shortest,
        max_length=min(profile.longest, 5000),
    )
    q_path = os.path.join(args.out, "queries.fasta")
    write_fasta(queries, q_path)
    print(f"database: {db_path} ({len(database)} sequences, "
          f"{database.total_residues} residues)")
    print(f"queries:  {q_path} ({len(queries)} sequences, "
          f"{sum(len(q) for q in queries)} residues)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .sequences import IndexedReader

    with IndexedReader(args.indexed) as reader:
        print(f"records: {len(reader)}")
        print(f"longest: {reader.longest} residues")
        offsets = reader.offsets
        if offsets:
            print(f"offset table: {offsets[0]} .. {offsets[-1]}")
        for record in reader[: args.records]:
            preview = record.residues[:50]
            ellipsis = "..." if len(record) > 50 else ""
            print(f"  >{record.id} ({len(record)} aa) {preview}{ellipsis}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import tempfile

    from .cluster import MasterServer
    from .core.runtime import build_tasks
    from .sequences import SequenceDatabase, write_indexed

    queries = read_fasta(args.query)
    database = SequenceDatabase.from_fasta(args.database)
    export_dir = args.export or tempfile.mkdtemp(prefix="repro-serve-")
    os.makedirs(export_dir, exist_ok=True)
    q_path = os.path.join(export_dir, "queries.seqx")
    d_path = os.path.join(export_dir, "database.seqx")
    write_indexed(queries, q_path)
    write_indexed(list(database), d_path)
    if args.store is not None:
        # Populate (idempotently) before verifying, so a fresh serve
        # both builds the warm-start shards and vouches for them.
        from .store import build_store

        build_store(
            args.store, database, get_matrix("blosum62"), queries=queries
        )

    service_config = None
    if args.service:
        from .service import ServiceConfig

        weights = {}
        for item in args.tenant_weight or ():
            name, _, value = item.partition("=")
            if not name or not value:
                print(f"error: malformed --tenant-weight {item!r} "
                      "(expected TENANT=WEIGHT)", file=sys.stderr)
                return 2
            weights[name] = float(value)
        service_config = ServiceConfig(
            max_queue_depth=args.max_queue_depth,
            max_backlog_seconds=args.max_backlog_seconds,
            default_deadline=args.default_deadline,
            weights=weights,
            admission=args.admission,
        )
    server = MasterServer(
        build_tasks(queries, database),
        policy=make_policy(args.policy),
        adjustment=not args.no_adjustment,
        host=args.host,
        port=args.port,
        heartbeat_timeout=args.heartbeat,
        checkpoint=args.checkpoint,
        store=args.store,
        http_port=args.http_port,
        service=service_config,
        top=args.top,
    )
    server.start()
    host, port = server.address
    print(f"master listening on {host}:{port}")
    if server.httpd is not None:
        print(f"live endpoints at {server.httpd.url('/metrics')} "
              "( /metrics /healthz /statusz )")
    print(f"indexed files for workers:\n  {q_path}\n  {d_path}")
    print("start workers with e.g.:")
    store_hint = f" --store {args.store}" if args.store else ""
    print(
        f"  repro-sw worker --host <this-host> --port {port} "
        f"--pe-id sse0 --engine sse --queries {q_path} "
        f"--database {d_path}{store_hint}"
    )
    if args.service:
        import json
        import signal

        # SIGTERM/SIGINT stop admission and drain: in-flight and queued
        # requests finish, new submissions are shed with reason
        # "draining", then the master exits 0 with a final record.
        def _drain(signum, frame):
            outstanding = server.drain()
            print(f"\ndrain requested (signal {signum}); "
                  f"{outstanding} requests outstanding", flush=True)

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        print("service mode: accepting submit/poll/cancel/drain "
              "(SIGTERM drains)")
        try:
            server.wait_drained(timeout=args.timeout)
            print(json.dumps(server.final_record()))
            return 0
        finally:
            server.stop()
    try:
        server.wait_finished(timeout=args.timeout)
        print("\nall tasks finished; merged results:")
        for query in queries:
            hits = server.results()[query.id][: args.top]
            print(f"# query {query.id}")
            for hit in hits:
                print(f"  {hit.subject_id:<30} score={hit.score}")
        return 0
    finally:
        server.stop()


def _cmd_worker(args: argparse.Namespace) -> int:
    from .cluster import WorkerConfig, run_worker

    config = WorkerConfig(
        host=args.host,
        port=args.port,
        pe_id=args.pe_id,
        engine=args.engine,
        query_path=args.queries,
        database_path=args.database,
        matrix=args.matrix,
        gap_open=args.gap_open,
        gap_extend=args.gap_extend,
        top=args.top,
        chunk_size=args.chunk_size,
        store=args.store,
    )
    completed = run_worker(config)
    print(f"worker {args.pe_id} completed {completed} tasks")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from .service import run_loadgen

    tenants = tuple(t for t in args.tenants.split(",") if t)
    if not tenants:
        print("error: --tenants must name at least one tenant",
              file=sys.stderr)
        return 2
    report = run_loadgen(
        args.host,
        args.port,
        rate=args.rate,
        horizon=args.horizon,
        rng=np.random.default_rng(args.seed),
        tenants=tenants,
        deadline=args.deadline,
        min_length=args.min_length,
        max_length=args.max_length,
        wait_timeout=args.wait_timeout,
        retries=args.retries,
        request_id_prefix=args.request_id_prefix,
    )
    if args.json:
        print(json.dumps(report.to_dict()))
        return 0
    print(f"offered {report.offered} requests over {args.horizon:g}s "
          f"(lambda={args.rate:g}/s, seed={args.seed})")
    print(f"  admitted  {report.admitted}")
    print(f"  completed {report.completed}")
    print(f"  expired   {report.expired}")
    print(f"  cancelled {report.cancelled}")
    if report.unreachable:
        print(f"  unreachable {report.unreachable}")
    shed = ", ".join(f"{k}={v}" for k, v in sorted(report.shed.items()))
    print(f"  shed      {report.shed_total}" + (f" ({shed})" if shed else ""))
    if report.latencies:
        print(f"  latency   p50={report.p50 * 1e3:.1f}ms "
              f"p99={report.p99 * 1e3:.1f}ms")
    return 0


def _cmd_db(args: argparse.Namespace) -> int:
    """Build/inspect/verify a ``repro.packstore.v1`` directory."""
    import json

    from .store import PackStore, StoreError, build_store

    if args.db_command == "build":
        matrix = get_matrix(args.matrix)
        database = SequenceDatabase.from_fasta(
            args.database, alphabet=matrix.alphabet
        )
        queries = (
            read_fasta(args.queries, alphabet=matrix.alphabet)
            if args.queries
            else None
        )
        lanes = tuple(
            int(part) for part in str(args.lanes).split(",") if part.strip()
        )
        binned = tuple(
            int(part)
            for part in str(args.screen_lanes or "").split(",")
            if part.strip()
        )
        from .align.screening import DEFAULT_BIN_WIDTH

        store = build_store(
            args.store, database, matrix, queries=queries, lanes_list=lanes,
            binned_lanes=binned,
            bin_width=args.bin_width or DEFAULT_BIN_WIDTH,
        )
        counts = store.verify()
        binned_note = f", screen lanes {list(binned)}" if binned else ""
        print(
            f"store {args.store}: {counts['packs']} pack entries, "
            f"{counts['profiles']} profile entries "
            f"(db {len(database)} seqs / {database.total_residues} "
            f"residues, matrix {matrix.name}, lanes {list(lanes)}"
            f"{binned_note})"
        )
        return 0

    try:
        store = PackStore(args.store)
        if args.db_command == "verify":
            counts = store.verify()
            print(
                f"OK: {counts['entries']} entries verified "
                f"({counts['packs']} packs, {counts['profiles']} profiles)"
            )
            return 0
        entries = list(store.entries())
    except StoreError as exc:
        print(f"store verification FAILED: {exc}", file=sys.stderr)
        return 1

    # inspect
    if args.format == "json":
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    print(f"# {args.store}: {len(entries)} entries")
    for entry in entries:
        if entry["kind"] == "packs":
            db = entry["database"]
            binned = (
                f" binned(w={entry['bin_width']})"
                if "bin_width" in entry
                else ""
            )
            print(
                f"  packs    {entry['key'][:12]}  lanes={entry['lanes']:<3} "
                f"batches={len(entry['packs'])}{binned} "
                f"db={db['name']} ({db['records']} seqs, "
                f"{db['residues']} residues)  matrix={entry['matrix']['name']}"
            )
        else:
            print(
                f"  profile  {entry['key'][:12]}  "
                f"kind={entry['profile_kind']:<8} "
                f"params={entry['params']}  "
                f"matrix={entry['matrix']['name']}"
            )
    return 0


def _load_metrics_snapshot(path: str) -> dict:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _format_series_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _metrics_summary_lines(registry) -> list[str]:
    """One line per series; histograms get count/mean + p50/p95/p99."""
    lines: list[str] = []
    snapshot = registry.snapshot()
    for family in snapshot["metrics"]:
        kind = family["type"]
        for series in family["series"]:
            label = family["name"] + _format_series_labels(series["labels"])
            if kind == "histogram":
                histogram = registry.get(family["name"]).labels(
                    **series["labels"]
                )
                count = series["count"]
                mean = series["sum"] / count if count else 0.0
                quantiles = "  ".join(
                    f"p{int(q * 100)}={histogram.quantile(q):.6g}"
                    for q in (0.5, 0.95, 0.99)
                )
                lines.append(
                    f"{label}  count={count}  sum={series['sum']:.6g}  "
                    f"mean={mean:.6g}  {quantiles}"
                )
            else:
                lines.append(f"{label}  {series['value']:.6g}")
    return lines


def _cmd_metrics_show(args: argparse.Namespace) -> int:
    from .observability import MetricsRegistry, openmetrics_text

    snapshot = _load_metrics_snapshot(args.snapshot)
    registry = MetricsRegistry.from_snapshot(snapshot)  # validates
    if args.format == "prom":
        sys.stdout.write(registry.prometheus_text())
    elif args.format == "openmetrics":
        sys.stdout.write(openmetrics_text(registry))
    elif args.format == "json":
        print(registry.to_json())
    elif args.format == "summary":
        for line in _metrics_summary_lines(registry):
            print(line)
    else:
        for name in registry.names():
            print(name)
    return 0


def _cmd_metrics_diff(args: argparse.Namespace) -> int:
    """Per-family deltas between two snapshots of the same run."""
    from .observability import MetricsRegistry, snapshot_delta

    first = _load_metrics_snapshot(args.first)
    second = _load_metrics_snapshot(args.second)
    before = MetricsRegistry.from_snapshot(first)  # validates both
    MetricsRegistry.from_snapshot(second)
    delta = snapshot_delta(first, second)
    delta_registry = MetricsRegistry.from_snapshot(delta)
    before_gauges = {
        family["name"]: {
            tuple(sorted(series["labels"].items())): series["value"]
            for series in family["series"]
        }
        for family in first["metrics"]
        if family["type"] == "gauge"
    }
    for family in delta["metrics"]:
        kind = family["type"]
        for series in family["series"]:
            label = family["name"] + _format_series_labels(series["labels"])
            if kind == "histogram":
                histogram = delta_registry.get(family["name"]).labels(
                    **series["labels"]
                )
                count = series["count"]
                quantiles = "  ".join(
                    f"p{int(q * 100)}={histogram.quantile(q):.6g}"
                    for q in (0.5, 0.95, 0.99)
                )
                print(
                    f"{label}  +count={count}  +sum={series['sum']:.6g}  "
                    f"{quantiles}"
                )
            elif kind == "gauge":
                key = tuple(sorted(series["labels"].items()))
                previous = before_gauges.get(family["name"], {}).get(key)
                if previous is None:
                    print(f"{label}  -> {series['value']:.6g}")
                else:
                    print(
                        f"{label}  {previous:.6g} -> {series['value']:.6g}"
                    )
            else:
                print(f"{label}  +{series['value']:.6g}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dispatch ``metrics show`` / ``metrics diff``."""
    if args.metrics_command == "diff":
        return _cmd_metrics_diff(args)
    return _cmd_metrics_show(args)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over an endpoint or telemetry stream."""
    from .observability import run_top

    try:
        return run_top(
            args.source,
            interval=args.interval,
            iterations=args.iterations,
            clear=False if args.no_clear else None,
        )
    except KeyboardInterrupt:
        return 0


def _load_trace_document(path: str, omega: int) -> dict:
    """Load a run for ``trace diff``: report JSON or event-log JSONL.

    A file whose first JSON object carries the trace-report schema tag
    is used as-is; anything else is parsed as an event log and
    analyzed on the fly, so diffing two fresh ``--events-out`` files
    needs no intermediate ``trace analyze`` step.
    """
    import json

    from .observability import (
        TRACE_REPORT_SCHEMA,
        EventLog,
        analyze_events,
    )

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None  # multiple lines: an event-log JSONL
    if isinstance(document, dict) and "schema" in document:
        if document["schema"] == TRACE_REPORT_SCHEMA:
            return document
        raise ValueError(
            f"{path}: JSON document is not a {TRACE_REPORT_SCHEMA} report"
        )
    import io

    events = EventLog.from_jsonl(io.StringIO(text))
    return analyze_events(events, omega=omega).to_document()


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .observability import EventLog, analyze_events, format_report

    if args.trace_command == "analyze":
        analysis = analyze_events(
            EventLog.from_jsonl(args.events), omega=args.omega
        )
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(analysis.to_document(), handle, indent=2)
                handle.write("\n")
            print(f"(wrote trace report {args.out})")
        if args.format == "json":
            print(json.dumps(analysis.to_document(), indent=2))
        else:
            print(format_report(analysis))
        return 0

    if args.trace_command == "gantt":
        analysis = analyze_events(
            EventLog.from_jsonl(args.events), omega=args.omega
        )
        intervals = [iv for iv in analysis.intervals if iv.duration > 0]
        if args.svg:
            from .simulate.svg import render_gantt_svg

            with open(args.svg, "w", encoding="utf-8") as handle:
                handle.write(render_gantt_svg(intervals, title=args.title))
            print(f"(wrote {args.svg})")
        else:
            print(gantt(intervals, width=args.width))
        return 0

    # diff
    from .observability import diff_documents, format_diff

    first = _load_trace_document(args.first, args.omega)
    second = _load_trace_document(args.second, args.omega)
    diff = diff_documents(first, second)
    if args.format == "json":
        print(json.dumps(diff, indent=2))
    else:
        print(format_diff(diff, labels=(args.first, args.second)))
    return 0


def _journal_paths(path: str) -> tuple[str, str | None]:
    """Resolve a CLI path to (journal file, snapshot file or None)."""
    import os

    from .durability import CheckpointStore

    if os.path.isdir(path):
        journal = os.path.join(path, CheckpointStore.JOURNAL_NAME)
        snapshot = os.path.join(path, CheckpointStore.SNAPSHOT_NAME)
        return journal, snapshot if os.path.exists(snapshot) else None
    sibling = os.path.join(
        os.path.dirname(path) or ".", CheckpointStore.SNAPSHOT_NAME
    )
    return path, sibling if os.path.exists(sibling) else None


def _cmd_journal(args: argparse.Namespace) -> int:
    import json
    import os

    from .durability import JOURNAL_SCHEMA, SNAPSHOT_SCHEMA, scan_journal

    journal_path, snapshot_path = _journal_paths(args.path)
    if not os.path.exists(journal_path) and snapshot_path is None:
        print(f"error: no journal at {journal_path}", file=sys.stderr)
        return 1
    scan = scan_journal(journal_path)
    if not scan.ok:
        print(
            f"error: {journal_path}: corrupt record at line "
            f"{scan.error_line}: {scan.error}",
            file=sys.stderr,
        )
        return 1

    header = next(
        (r for r in scan.records if r.get("type") == "header"), None
    )
    if header is not None and header.get("schema") != JOURNAL_SCHEMA:
        print(
            f"error: {journal_path}: unsupported journal schema "
            f"{header.get('schema')!r}",
            file=sys.stderr,
        )
        return 1

    snapshot = None
    if snapshot_path is not None:
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if text.strip():
            try:
                snapshot = json.loads(text)
            except json.JSONDecodeError as err:
                print(
                    f"error: {snapshot_path}: unreadable snapshot: {err}",
                    file=sys.stderr,
                )
                return 1
            if snapshot.get("schema") != SNAPSHOT_SCHEMA:
                print(
                    f"error: {snapshot_path}: not a "
                    f"{SNAPSHOT_SCHEMA} snapshot",
                    file=sys.stderr,
                )
                return 1

    by_type: dict[str, int] = {}
    finished: dict[int, str] = {}
    pes: set[str] = set()
    if snapshot is not None:
        for record in snapshot.get("finished", []):
            finished.setdefault(record["task"], record["pe"])
            pes.add(record["pe"])
    for record in scan.records:
        kind = record.get("type", "?")
        by_type[kind] = by_type.get(kind, 0) + 1
        if kind == "complete":
            finished.setdefault(record["task"], record["pe"])
            pes.add(record["pe"])
        elif kind == "register":
            pes.add(record["pe"])

    if args.journal_command == "verify":
        print(f"{journal_path}: {len(scan.records)} records ok "
              f"({scan.good_bytes} bytes)")
        if scan.torn:
            print("  torn final record (tolerated; truncated on resume)")
        if snapshot_path is not None:
            print(f"{snapshot_path}: snapshot ok "
                  f"({len((snapshot or {}).get('finished', []))} "
                  f"finished tasks)")
        print(f"finished tasks: {len(finished)}")
        return 0

    # inspect
    workload = (header or {}).get("workload") or (
        (snapshot or {}).get("workload")
    )
    if args.format == "json":
        document = {
            "journal": journal_path,
            "snapshot": snapshot_path,
            "records": len(scan.records),
            "records_by_type": dict(sorted(by_type.items())),
            "torn_tail": scan.torn,
            "workload": workload,
            "finished_tasks": sorted(finished),
            "pes": sorted(pes),
        }
        print(json.dumps(document, indent=2))
        return 0
    print(f"journal:  {journal_path} ({len(scan.records)} records"
          f"{', torn tail' if scan.torn else ''})")
    if snapshot_path is not None:
        print(f"snapshot: {snapshot_path} "
              f"({len((snapshot or {}).get('finished', []))} "
              f"finished tasks)")
    if workload:
        print(f"workload: {workload.get('tasks')} tasks, "
              f"{workload.get('cells')} cells, "
              f"digest {workload.get('digest', '')[:12]}")
    for kind in sorted(by_type):
        print(f"  {kind:<12} {by_type[kind]}")
    print(f"finished tasks ({len(finished)}): "
          f"{', '.join(str(t) for t in sorted(finished)) or '-'}")
    print(f"PEs seen ({len(pes)}): {', '.join(sorted(pes)) or '-'}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    import os

    from .bench import cell_rows_to_csv, fig6_to_csv

    which = args.which
    csv_dir = args.csv
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)

    def save_csv(name: str, text: str) -> None:
        if csv_dir:
            path = os.path.join(csv_dir, name)
            with open(path, "w", encoding="ascii") as handle:
                handle.write(text)
            print(f"(wrote {path})")

    if which in ("1", "all"):
        print(format_policy_rows(table1_policies(), "Table I (policy survey)"))
        print()
    if which in ("3", "all"):
        rows = table3_sse()
        print(format_cell_rows(rows, "Table III (SSE cores)"))
        save_csv("table3_sse.csv", cell_rows_to_csv(rows))
        print()
    if which in ("4", "all"):
        rows = table4_gpu()
        print(format_cell_rows(rows, "Table IV (GPUs)"))
        save_csv("table4_gpu.csv", cell_rows_to_csv(rows))
        print()
    if which in ("5", "all"):
        rows = table5_hybrid()
        print(format_cell_rows(rows, "Table V (hybrid)"))
        save_csv("table5_hybrid.csv", cell_rows_to_csv(rows))
        print()
    if which in ("fig5", "all"):
        print(fig5_schedule().render())
        print()
    if which in ("fig6", "all"):
        result = fig6_adjustment()
        print(format_fig6(result))
        save_csv("fig6_adjustment.csv", fig6_to_csv(result))
        print()
    if which in ("headline", "all"):
        print(format_headline(headline()))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Back-compat shim: ``repro metrics FILE`` (pre-subcommand shape)
    # still works by defaulting to the ``show`` subcommand.
    if (
        argv
        and argv[0] == "metrics"
        and len(argv) > 1
        and argv[1] not in ("show", "diff", "-h", "--help")
    ):
        argv.insert(1, "show")
    args = build_parser().parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "align": _cmd_align,
        "index": _cmd_index,
        "cluster": _cmd_cluster,
        "simulate": _cmd_simulate,
        "generate": _cmd_generate,
        "inspect": _cmd_inspect,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "loadgen": _cmd_loadgen,
        "tables": _cmd_tables,
        "metrics": _cmd_metrics,
        "top": _cmd_top,
        "trace": _cmd_trace,
        "journal": _cmd_journal,
        "db": _cmd_db,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
