"""Biological alphabets and residue encoding.

The paper (Section II) treats biological sequences as strings over one of
three alphabets: DNA ``{A,T,G,C}``, RNA ``{A,U,G,C}`` and the 20-letter
protein alphabet.  Every kernel in :mod:`repro.align` operates on
*encoded* sequences — compact ``numpy`` ``int8`` arrays of residue codes —
so that substitution scores can be fetched with a single fancy-index into
the scoring matrix.  This module owns the mapping between residue
characters and codes.

Unknown characters map to a dedicated *wildcard* code (``X`` for
proteins, ``N`` for nucleotides) whose substitution scores are neutral or
mildly negative, matching the convention of BLOSUM-style matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "infer_alphabet",
]


@dataclass(frozen=True)
class Alphabet:
    """An ordered residue alphabet with an int8 encoding.

    Parameters
    ----------
    name:
        Human-readable identifier (``"dna"``, ``"rna"``, ``"protein"``).
    letters:
        The canonical residue letters, in code order: ``letters[i]`` has
        code ``i``.
    wildcard:
        Letter every unknown input character is coerced to.  Must be a
        member of ``letters``.
    """

    name: str
    letters: str
    wildcard: str
    _encode_table: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.letters)) != len(self.letters):
            raise ValueError(f"duplicate letters in alphabet {self.name!r}")
        if self.wildcard not in self.letters:
            raise ValueError(
                f"wildcard {self.wildcard!r} not in alphabet {self.name!r}"
            )
        table = np.full(256, self.letters.index(self.wildcard), dtype=np.int8)
        for code, letter in enumerate(self.letters):
            table[ord(letter)] = code
            table[ord(letter.lower())] = code
        # Bypass frozen-dataclass immutability for the derived cache.
        object.__setattr__(self, "_encode_table", table)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of residue codes (including the wildcard)."""
        return len(self.letters)

    @property
    def wildcard_code(self) -> int:
        return self.letters.index(self.wildcard)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.size

    def __contains__(self, letter: str) -> bool:
        return letter.upper() in self.letters

    def code_of(self, letter: str) -> int:
        """Return the code for a single residue letter.

        Unknown letters map to the wildcard code, mirroring
        :meth:`encode`.
        """
        if len(letter) != 1:
            raise ValueError("code_of expects a single character")
        return int(self._encode_table[ord(letter)])

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, sequence: str | bytes) -> np.ndarray:
        """Encode a residue string into an ``int8`` code array.

        Characters outside the alphabet (including gaps and whitespace
        that leaked through parsing) are coerced to the wildcard code;
        validation belongs to the parsers, not to the hot encode path.
        """
        if isinstance(sequence, str):
            raw = sequence.encode("ascii", errors="replace")
        else:
            raw = bytes(sequence)
        return self._encode_table[np.frombuffer(raw, dtype=np.uint8)]

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode` (canonical upper-case letters)."""
        codes = np.asarray(codes)
        if codes.size and (codes.min() < 0 or codes.max() >= self.size):
            raise ValueError("residue code out of range for alphabet")
        lookup = np.frombuffer(self.letters.encode("ascii"), dtype=np.uint8)
        return lookup[codes].tobytes().decode("ascii")

    def validate(self, sequence: str) -> bool:
        """True when *sequence* contains only canonical letters."""
        return all(ch.upper() in self.letters for ch in sequence)


#: DNA alphabet, Section II of the paper: Sigma = {A, T, G, C} (+ N wildcard).
DNA = Alphabet(name="dna", letters="ACGTN", wildcard="N")

#: RNA alphabet: Sigma = {A, U, G, C} (+ N wildcard).
RNA = Alphabet(name="rna", letters="ACGUN", wildcard="N")

#: Protein alphabet: the 20 standard amino acids in the BLOSUM row order
#: used by :mod:`repro.align.scoring`, plus B/Z/X ambiguity codes and the
#: ``*`` stop symbol so real database files round-trip.
PROTEIN = Alphabet(
    name="protein",
    letters="ARNDCQEGHILKMFPSTWYVBZX*",
    wildcard="X",
)

_BY_NAME = {a.name: a for a in (DNA, RNA, PROTEIN)}


def get_alphabet(name: str) -> Alphabet:
    """Look an alphabet up by its :attr:`Alphabet.name`."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown alphabet {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def infer_alphabet(sequence: str) -> Alphabet:
    """Guess the alphabet of a residue string.

    Uses the classic heuristic: if >=90% of the residues are ACGTUN the
    sequence is treated as nucleic acid (DNA unless it contains ``U``),
    otherwise as protein.  Empty sequences default to protein, the
    paper's evaluation domain.
    """
    if not sequence:
        return PROTEIN
    upper = sequence.upper()
    nucleic = sum(upper.count(ch) for ch in "ACGTUN")
    if nucleic / len(upper) >= 0.9:
        return RNA if "U" in upper else DNA
    return PROTEIN
