"""Low-complexity region detection and masking (SEG-style filter).

Database search tools mask *low-complexity* regions (poly-A runs,
proline-rich stretches, tandem repeats) before scoring: such regions
produce strong SW scores without any evolutionary signal and flood hit
lists with false positives.  The classic filter (Wootton & Federhen's
SEG) thresholds the Shannon entropy of a sliding residue window; this
module implements that scheme.

Masked residues are replaced by the alphabet's wildcard (``X``/``N``),
whose substitution scores are neutral-to-negative, so masked regions
cannot seed alignments but the sequence geometry is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import Sequence

__all__ = ["entropy_profile", "low_complexity_regions", "mask_low_complexity"]


def entropy_profile(sequence: Sequence, window: int = 12) -> np.ndarray:
    """Shannon entropy (bits) of each length-*window* substring.

    Returns an array of length ``len(sequence) - window + 1`` (empty
    when the sequence is shorter than the window).

    Wildcard residues each count as a *unique* symbol (maximal
    entropy contribution) rather than as one shared letter: a
    wildcard carries no repeat signal, and an already-masked span must
    never re-trigger the filter and swallow its neighbours — this is
    what makes :func:`mask_low_complexity` idempotent.  Replacing any
    multiset of residues with distinct singletons can only raise a
    window's entropy, so every window this profile flags would also
    have been flagged on the pre-mask residues.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    codes = sequence.codes
    n = len(codes)
    if n < window:
        return np.zeros(0, dtype=np.float64)
    assert sequence.alphabet is not None
    size = sequence.alphabet.size
    wildcard = sequence.alphabet.wildcard_code
    # Sliding counts via cumulative one-hot sums: counts[w, c] is the
    # number of residues of code c in window starting at w.
    one_hot = np.zeros((n + 1, size), dtype=np.int32)
    one_hot[1:][np.arange(n), codes] = 1
    cumulative = np.cumsum(one_hot, axis=0)
    counts = cumulative[window:] - cumulative[:-window]
    wild = counts[:, wildcard].astype(np.float64)
    counts = counts.copy()
    counts[:, wildcard] = 0
    probabilities = counts / window
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(
            probabilities > 0,
            -probabilities * np.log2(probabilities),
            0.0,
        )
    # k wildcards = k distinct symbols at probability 1/window each.
    return terms.sum(axis=1) + wild / window * np.log2(window)


@dataclass(frozen=True)
class _Region:
    start: int
    end: int  # half-open


def low_complexity_regions(
    sequence: Sequence,
    window: int = 12,
    threshold: float = 2.2,
) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` spans whose entropy dips below *threshold*.

    A window with entropy below the threshold marks all of its positions
    as low complexity; overlapping windows merge into maximal spans.
    The default threshold of 2.2 bits flags homopolymer runs and short
    tandem repeats while leaving typical globular protein sequence
    (entropy ~4 bits over a 12-residue window) untouched.
    """
    profile = entropy_profile(sequence, window=window)
    if profile.size == 0:
        return []
    flagged = profile < threshold
    regions: list[tuple[int, int]] = []
    start: int | None = None
    for index, low in enumerate(flagged):
        if low and start is None:
            start = index
        elif not low and start is not None:
            regions.append((start, index + window - 1))
            start = None
    if start is not None:
        regions.append((start, len(flagged) + window - 1))
    # Merge touching spans (they can abut after the +window extension).
    merged: list[tuple[int, int]] = []
    for span in regions:
        if merged and span[0] <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], span[1]))
        else:
            merged.append(span)
    return merged


def mask_low_complexity(
    sequence: Sequence,
    window: int = 12,
    threshold: float = 2.2,
) -> Sequence:
    """Copy of *sequence* with low-complexity spans set to the wildcard."""
    regions = low_complexity_regions(
        sequence, window=window, threshold=threshold
    )
    if not regions:
        return sequence
    assert sequence.alphabet is not None
    wildcard = sequence.alphabet.wildcard
    residues = list(sequence.residues)
    for start, end in regions:
        for index in range(start, end):
            residues[index] = wildcard
    return Sequence(
        id=sequence.id,
        residues="".join(residues),
        description=sequence.description,
        alphabet=sequence.alphabet,
    )
