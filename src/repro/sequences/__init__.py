"""Sequence substrate: alphabets, records, I/O formats and databases."""

from .alphabet import DNA, PROTEIN, RNA, Alphabet, get_alphabet, infer_alphabet
from .database import DatabaseStats, SequenceDatabase
from .fasta import FastaError, format_fasta, iter_fasta, read_fasta, write_fasta
from .indexed import (
    IndexedFileError,
    IndexedReader,
    IndexedWriter,
    index_fasta,
    write_indexed,
)
from .profiles import (
    ENSEMBL_DOG,
    ENSEMBL_RAT,
    PAPER_DATABASES,
    REFSEQ_HUMAN,
    REFSEQ_MOUSE,
    SWISSPROT,
    DatabaseProfile,
    get_profile,
)
from .records import Sequence
from .synthetic import (
    AMINO_ACID_FREQUENCIES,
    implant_homology,
    mutate,
    query_set,
    random_database,
    random_sequence,
)
from .complexity import (
    entropy_profile,
    low_complexity_regions,
    mask_low_complexity,
)
from .translate import (
    GENETIC_CODE,
    reading_frames,
    six_frame_translations,
    translate,
)

__all__ = [
    "Alphabet",
    "DNA",
    "RNA",
    "PROTEIN",
    "get_alphabet",
    "infer_alphabet",
    "Sequence",
    "SequenceDatabase",
    "DatabaseStats",
    "FastaError",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "format_fasta",
    "IndexedFileError",
    "IndexedReader",
    "IndexedWriter",
    "write_indexed",
    "index_fasta",
    "DatabaseProfile",
    "PAPER_DATABASES",
    "ENSEMBL_DOG",
    "ENSEMBL_RAT",
    "REFSEQ_HUMAN",
    "REFSEQ_MOUSE",
    "SWISSPROT",
    "get_profile",
    "AMINO_ACID_FREQUENCIES",
    "random_sequence",
    "random_database",
    "query_set",
    "mutate",
    "implant_homology",
    "GENETIC_CODE",
    "translate",
    "reading_frames",
    "six_frame_translations",
    "entropy_profile",
    "low_complexity_regions",
    "mask_low_complexity",
]
