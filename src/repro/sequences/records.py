"""Sequence record type shared by parsers, databases and kernels.

A :class:`Sequence` couples an identifier/description with the residue
string and caches its encoded form so repeated alignments against the
same record do not pay the encode cost again (the paper's master converts
every input file to a "more suitable" format exactly once, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import Alphabet, infer_alphabet

__all__ = ["Sequence"]


@dataclass
class Sequence:
    """One biological sequence.

    Parameters
    ----------
    id:
        Accession / identifier (the first whitespace-delimited token of a
        FASTA header).
    residues:
        The residue string, canonical upper case.
    description:
        The remainder of the FASTA header, possibly empty.
    alphabet:
        Residue alphabet; inferred from the residues when omitted.
    """

    id: str
    residues: str
    description: str = ""
    alphabet: Alphabet | None = None
    _codes: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.residues = self.residues.upper()
        if self.alphabet is None:
            self.alphabet = infer_alphabet(self.residues)

    def __len__(self) -> int:
        return len(self.residues)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f">{self.id} ({len(self)} aa)"

    @property
    def codes(self) -> np.ndarray:
        """Encoded residues (``int8``), computed lazily and cached."""
        if self._codes is None:
            assert self.alphabet is not None
            self._codes = self.alphabet.encode(self.residues)
        return self._codes

    @property
    def header(self) -> str:
        """FASTA header line content (without the leading ``>``)."""
        return f"{self.id} {self.description}".strip()

    def slice(self, start: int, stop: int) -> "Sequence":
        """Subsequence record covering ``residues[start:stop]``.

        The id is suffixed with the 1-based inclusive coordinate range,
        the convention used by segment-based tools (cf. the paper's
        discussion of query segmentation in Meng & Chaudhary [13]).
        """
        if not (0 <= start <= stop <= len(self.residues)):
            raise IndexError("slice out of bounds")
        return Sequence(
            id=f"{self.id}/{start + 1}-{stop}",
            residues=self.residues[start:stop],
            description=self.description,
            alphabet=self.alphabet,
        )

    def reversed(self) -> "Sequence":
        """Record with the residue order reversed (used by Hirschberg)."""
        return Sequence(
            id=f"{self.id}(rev)",
            residues=self.residues[::-1],
            description=self.description,
            alphabet=self.alphabet,
        )
