"""Geometry profiles of the paper's five genomic databases (Table II).

Each profile captures the published sequence count and min/max query
lengths plus a mean sequence length calibrated from public release
statistics of the era (SwissProt 2012: ~537k sequences, ~197M residues,
mean ~367 aa).  The smaller Ensembl/RefSeq proteomes use the typical
vertebrate proteome mean of ~480 aa.

Profiles serve two purposes:

* :func:`DatabaseProfile.materialize` builds a synthetic database with
  the full published geometry — used by the discrete-event benchmarks,
  which only consume residue counts;
* :func:`DatabaseProfile.materialize_scaled` builds a down-scaled replica
  (same length distribution, fewer sequences) for real-kernel runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .database import SequenceDatabase
from .synthetic import random_database

__all__ = [
    "DatabaseProfile",
    "ENSEMBL_DOG",
    "ENSEMBL_RAT",
    "REFSEQ_HUMAN",
    "REFSEQ_MOUSE",
    "SWISSPROT",
    "PAPER_DATABASES",
    "get_profile",
]


@dataclass(frozen=True)
class DatabaseProfile:
    """Published geometry of one evaluation database."""

    name: str
    num_sequences: int
    mean_length: float
    shortest: int
    longest: int

    @property
    def total_residues(self) -> int:
        """Expected residue count implied by the profile."""
        return int(round(self.num_sequences * self.mean_length))

    def materialize(
        self, rng: np.random.Generator, scale: float = 1.0
    ) -> SequenceDatabase:
        """Generate a synthetic database matching this geometry.

        Parameters
        ----------
        rng:
            Source of randomness (pass a seeded generator for
            reproducible workloads).
        scale:
            Fraction of the published sequence count to generate, in
            ``(0, 1]``.  The length distribution is unchanged, so a
            scaled database is a statistically faithful miniature.
        """
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        count = max(1, int(round(self.num_sequences * scale)))
        return random_database(
            num_sequences=count,
            mean_length=self.mean_length,
            rng=rng,
            name=self.name if scale == 1.0 else f"{self.name}@{scale:g}",
            min_length=max(10, self.shortest),
            max_length=self.longest,
        )

    def materialize_scaled(
        self, rng: np.random.Generator, max_sequences: int = 200
    ) -> SequenceDatabase:
        """Miniature replica capped at *max_sequences* records."""
        scale = min(1.0, max_sequences / self.num_sequences)
        return self.materialize(rng, scale=scale)


# Table II of the paper.  Mean lengths calibrated as documented above;
# the SwissProt mean is additionally cross-checked by the headline
# runtime (7,190 s on one 2.8-GCUPS SSE core for 40 queries totalling
# ~102,000 residues implies ~197M database residues -> mean ~367).
ENSEMBL_DOG = DatabaseProfile("Ensembl Dog Proteins", 25_160, 481.0, 100, 4_996)
ENSEMBL_RAT = DatabaseProfile("Ensembl Rat Proteins", 32_971, 486.0, 100, 4_992)
REFSEQ_HUMAN = DatabaseProfile("RefSeq Human Proteins", 34_705, 483.0, 100, 4_981)
REFSEQ_MOUSE = DatabaseProfile("RefSeq Mouse Proteins", 29_437, 479.0, 100, 5_000)
SWISSPROT = DatabaseProfile("UniProtDB/SwissProt", 537_505, 367.0, 100, 4_998)

#: The five databases in the order the paper's tables list them.
PAPER_DATABASES: tuple[DatabaseProfile, ...] = (
    ENSEMBL_DOG,
    ENSEMBL_RAT,
    REFSEQ_HUMAN,
    REFSEQ_MOUSE,
    SWISSPROT,
)

_BY_NAME = {p.name: p for p in PAPER_DATABASES}
_ALIASES = {
    "dog": ENSEMBL_DOG,
    "rat": ENSEMBL_RAT,
    "human": REFSEQ_HUMAN,
    "mouse": REFSEQ_MOUSE,
    "swissprot": SWISSPROT,
    "uniprot": SWISSPROT,
}


def get_profile(name: str) -> DatabaseProfile:
    """Look a profile up by full Table II name or short alias."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    key = name.lower()
    if key in _ALIASES:
        return _ALIASES[key]
    raise KeyError(
        f"unknown database profile {name!r}; known: "
        f"{sorted(_ALIASES) + sorted(_BY_NAME)}"
    )
