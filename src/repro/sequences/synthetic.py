"""Synthetic sequence and database generators.

The paper evaluates against five public protein databases and 40 real
query sequences.  Those exact files are not redistributable here, so we
generate synthetic equivalents whose *geometry* (sequence counts, length
distributions, total residues) matches Table II.  Smith-Waterman cost
depends only on sequence lengths, so matching the geometry preserves
every load-balancing effect the paper measures; residue content only
matters for score values, for which realistic amino-acid background
frequencies are used.
"""

from __future__ import annotations

from typing import Sequence as TypingSequence

import numpy as np

from .alphabet import Alphabet, PROTEIN
from .database import SequenceDatabase
from .records import Sequence

__all__ = [
    "AMINO_ACID_FREQUENCIES",
    "random_sequence",
    "random_database",
    "query_set",
    "mutate",
    "implant_homology",
]

#: Robinson & Robinson (1991) amino-acid background frequencies, the
#: standard composition model behind BLOSUM statistics.  Order matches
#: the first 20 letters of :data:`repro.sequences.alphabet.PROTEIN`
#: (``ARNDCQEGHILKMFPSTWYV``).
AMINO_ACID_FREQUENCIES = np.array(
    [
        0.07805,  # A
        0.05129,  # R
        0.04487,  # N
        0.05364,  # D
        0.01925,  # C
        0.04264,  # Q
        0.06295,  # E
        0.07377,  # G
        0.02199,  # H
        0.05142,  # I
        0.09019,  # L
        0.05744,  # K
        0.02243,  # M
        0.03856,  # F
        0.05203,  # P
        0.07120,  # S
        0.05841,  # T
        0.01330,  # W
        0.03216,  # Y
        0.06441,  # V
    ]
)
AMINO_ACID_FREQUENCIES = AMINO_ACID_FREQUENCIES / AMINO_ACID_FREQUENCIES.sum()


def _letters(alphabet: Alphabet) -> np.ndarray:
    return np.frombuffer(alphabet.letters.encode("ascii"), dtype=np.uint8)


def random_sequence(
    length: int,
    rng: np.random.Generator,
    alphabet: Alphabet = PROTEIN,
    seq_id: str = "synth",
) -> Sequence:
    """Draw one random sequence.

    Protein sequences use the Robinson background composition; nucleic
    sequences are uniform over the 4 canonical bases.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if alphabet is PROTEIN:
        codes = rng.choice(20, size=length, p=AMINO_ACID_FREQUENCIES)
    else:
        codes = rng.integers(0, 4, size=length)
    residues = _letters(alphabet)[codes].tobytes().decode("ascii")
    return Sequence(id=seq_id, residues=residues, alphabet=alphabet)


def random_database(
    num_sequences: int,
    mean_length: float,
    rng: np.random.Generator,
    name: str = "synthetic-db",
    min_length: int = 30,
    max_length: int | None = None,
    alphabet: Alphabet = PROTEIN,
) -> SequenceDatabase:
    """Generate a database with a realistic length distribution.

    Protein database lengths are well described by a gamma distribution
    (shape ~2-3); we use shape 2.4 scaled to the requested mean, clipped
    to ``[min_length, max_length]``, which reproduces SwissProt's long
    right tail.
    """
    if num_sequences < 0:
        raise ValueError("num_sequences must be non-negative")
    shape = 2.4
    raw = rng.gamma(shape, mean_length / shape, size=num_sequences)
    lengths = np.clip(np.round(raw), min_length, max_length).astype(np.int64)
    # Record ids must survive a FASTA round trip, where the id is the
    # first whitespace-delimited header token.
    id_prefix = name.replace(" ", "_")
    records = [
        random_sequence(
            int(n), rng, alphabet=alphabet, seq_id=f"{id_prefix}|{i:07d}"
        )
        for i, n in enumerate(lengths)
    ]
    return SequenceDatabase(records, name=name, alphabet=alphabet)


def query_set(
    count: int,
    rng: np.random.Generator,
    min_length: int = 100,
    max_length: int = 5000,
    alphabet: Alphabet = PROTEIN,
    prefix: str = "query",
) -> list[Sequence]:
    """Queries with lengths *equally distributed* in a range.

    The paper chose "40 query sequences ... with equally distributed
    sizes, ranging from 100 amino acids to approximately 5,000 amino
    acids" (Section V); this reproduces that design with an evenly
    spaced length grid.
    """
    if count <= 0:
        return []
    if count == 1:
        lengths = np.array([min_length], dtype=np.int64)
    else:
        lengths = np.linspace(min_length, max_length, count).round().astype(
            np.int64
        )
    return [
        random_sequence(int(n), rng, alphabet=alphabet, seq_id=f"{prefix}{i:03d}")
        for i, n in enumerate(lengths)
    ]


def mutate(
    sequence: Sequence,
    rng: np.random.Generator,
    substitution_rate: float = 0.1,
    indel_rate: float = 0.02,
) -> Sequence:
    """Apply point substitutions and single-residue indels.

    Used by tests and examples to fabricate homologous pairs with a known
    evolutionary distance so alignments have biologically-shaped optima.
    """
    if not 0 <= substitution_rate <= 1 or not 0 <= indel_rate <= 1:
        raise ValueError("rates must be within [0, 1]")
    alphabet = sequence.alphabet
    assert alphabet is not None
    letters = alphabet.letters[:20] if alphabet is PROTEIN else alphabet.letters[:4]
    out: list[str] = []
    for ch in sequence.residues:
        roll = rng.random()
        if roll < indel_rate / 2:
            continue  # deletion
        if roll < indel_rate:
            out.append(letters[rng.integers(len(letters))])  # insertion
        if rng.random() < substitution_rate:
            out.append(letters[rng.integers(len(letters))])
        else:
            out.append(ch)
    return Sequence(
        id=f"{sequence.id}(mut)",
        residues="".join(out),
        description=sequence.description,
        alphabet=alphabet,
    )


def implant_homology(
    database: SequenceDatabase,
    query: Sequence,
    positions: TypingSequence[int],
    rng: np.random.Generator,
    substitution_rate: float = 0.15,
) -> SequenceDatabase:
    """Return a copy of *database* with mutated copies of *query* planted.

    Each index in *positions* is replaced by a mutated query copy, giving
    the database known true positives — the search examples use this to
    demonstrate that SW actually ranks homologs on top.
    """
    records = list(database)
    for pos in positions:
        if not 0 <= pos < len(records):
            raise IndexError("implant position out of range")
        planted = mutate(query, rng, substitution_rate=substitution_rate)
        records[pos] = Sequence(
            id=f"homolog_of_{query.id}@{pos}",
            residues=planted.residues,
            alphabet=database.alphabet,
        )
    return SequenceDatabase(
        records, name=f"{database.name}+homologs", alphabet=database.alphabet
    )
