"""FASTA reading and writing.

Biological "databases" such as UniProtKB/SwissProt are, as the paper
notes (Section IV-B), *huge flat files where the sequences are put
together*.  This module parses and emits that flat format; the random
access layer the paper proposes on top of it lives in
:mod:`repro.sequences.indexed`.

The parser is deliberately forgiving (blank lines, ``;`` comment lines
from the ancient FASTA dialect, CRLF endings, lower-case residues) but
strict about structure: residue data before the first header is an
error.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, TextIO

from .alphabet import Alphabet
from .records import Sequence

__all__ = [
    "FastaError",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "format_fasta",
]

#: Residues per line emitted by :func:`write_fasta`.
LINE_WIDTH = 60


class FastaError(ValueError):
    """Raised on malformed FASTA input."""


def _open_text(source: str | os.PathLike | TextIO) -> tuple[TextIO, bool]:
    """Return ``(handle, owns_handle)`` for a path or open handle."""
    if hasattr(source, "read"):
        return source, False  # type: ignore[return-value]
    return open(os.fspath(source), "r", encoding="ascii", errors="replace"), True


def iter_fasta(
    source: str | os.PathLike | TextIO,
    alphabet: Alphabet | None = None,
) -> Iterator[Sequence]:
    """Stream :class:`Sequence` records from a FASTA file or handle.

    Parameters
    ----------
    source:
        Path or open text handle.
    alphabet:
        Force an alphabet for every record instead of inferring one per
        record (recommended for large protein databases: inference scans
        each sequence).
    """
    handle, owns = _open_text(source)
    try:
        header: str | None = None
        chunks: list[str] = []
        lineno = 0
        for line in handle:
            lineno += 1
            line = line.rstrip("\r\n")
            if not line or line.startswith(";"):
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks, alphabet)
                header = line[1:].strip()
                chunks = []
            else:
                if header is None:
                    raise FastaError(
                        f"residue data before first '>' header (line {lineno})"
                    )
                chunks.append(line.strip())
        if header is not None:
            yield _make_record(header, chunks, alphabet)
    finally:
        if owns:
            handle.close()


def _make_record(
    header: str, chunks: list[str], alphabet: Alphabet | None
) -> Sequence:
    seq_id, _, description = header.partition(" ")
    if not seq_id:
        raise FastaError("empty FASTA header")
    return Sequence(
        id=seq_id,
        residues="".join(chunks),
        description=description.strip(),
        alphabet=alphabet,
    )


def read_fasta(
    source: str | os.PathLike | TextIO,
    alphabet: Alphabet | None = None,
) -> list[Sequence]:
    """Eagerly read every record of a FASTA file into a list."""
    return list(iter_fasta(source, alphabet=alphabet))


def format_fasta(records: Iterable[Sequence], width: int = LINE_WIDTH) -> str:
    """Render records as FASTA text (used by tests and examples)."""
    buffer = io.StringIO()
    write_fasta(records, buffer, width=width)
    return buffer.getvalue()


def write_fasta(
    records: Iterable[Sequence],
    destination: str | os.PathLike | TextIO,
    width: int = LINE_WIDTH,
) -> int:
    """Write records to *destination*; returns the record count.

    Lines are wrapped at *width* residues.  ``width <= 0`` writes each
    sequence on a single line (the layout the indexed format prefers,
    since one offset then addresses the entire residue string).
    """
    if hasattr(destination, "write"):
        handle, owns = destination, False  # type: ignore[assignment]
    else:
        handle = open(os.fspath(destination), "w", encoding="ascii")
        owns = True
    count = 0
    try:
        for record in records:
            handle.write(f">{record.header}\n")
            residues = record.residues
            if width <= 0:
                handle.write(residues + "\n")
            else:
                for start in range(0, len(residues), width):
                    handle.write(residues[start : start + width] + "\n")
            count += 1
    finally:
        if owns:
            handle.close()
    return count
