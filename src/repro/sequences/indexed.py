"""The paper's indexed sequence-file format (Section IV-B).

FASTA files force a sequential scan to reach the *k*-th sequence.  The
paper proposes an indexed format that records

* the total number of sequences,
* the size of the biggest sequence, and
* the byte offset of the beginning of each sequence,

so that "using the offsets, we can quickly retrieve the beginning of a
sequence that is in the middle of the file".  The master uses it to hand
a slave the *k*-th query without shipping the whole query file.

Layout (little-endian)::

    magic    8 bytes   b"REPROSQ1"
    count    uint64    number of sequences
    longest  uint64    length (residues) of the longest sequence
    offsets  count x uint64   byte offset of each record's header
    records  count x [ hdr_len:uint32, header bytes,
                        seq_len:uint32,  residue bytes ]

Offsets point at the ``hdr_len`` field of each record, relative to the
start of the file, so a reader can ``seek`` straight to any record.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as TypingSequence

from .alphabet import Alphabet
from .fasta import iter_fasta
from .records import Sequence

__all__ = [
    "IndexedFileError",
    "IndexedWriter",
    "IndexedReader",
    "write_indexed",
    "index_fasta",
]

MAGIC = b"REPROSQ1"
_HEADER_STRUCT = struct.Struct("<8sQQ")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class IndexedFileError(ValueError):
    """Raised on a corrupt or truncated indexed file."""


@dataclass(frozen=True)
class IndexStats:
    """Summary carried in the file header."""

    count: int
    longest: int


class IndexedWriter:
    """Two-pass writer: buffer records, then emit header + offset table.

    The offset table length depends on the record count, so the writer
    buffers serialized records in memory and lays the file out on
    :meth:`close`.  Databases in this project are at most hundreds of MB,
    which is acceptable for an in-memory pass; a disk-backed second pass
    would drop in behind the same interface.
    """

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._records: list[bytes] = []
        self._longest = 0
        self._closed = False

    def add(self, record: Sequence) -> None:
        if self._closed:
            raise IndexedFileError("writer already closed")
        header = record.header.encode("ascii", errors="replace")
        residues = record.residues.encode("ascii")
        blob = (
            _U32.pack(len(header))
            + header
            + _U32.pack(len(residues))
            + residues
        )
        self._records.append(blob)
        self._longest = max(self._longest, len(residues))

    def close(self) -> IndexStats:
        if self._closed:
            raise IndexedFileError("writer already closed")
        self._closed = True
        count = len(self._records)
        preamble = _HEADER_STRUCT.size + count * _U64.size
        offsets = []
        position = preamble
        for blob in self._records:
            offsets.append(position)
            position += len(blob)
        with open(self._path, "wb") as handle:
            handle.write(_HEADER_STRUCT.pack(MAGIC, count, self._longest))
            for offset in offsets:
                handle.write(_U64.pack(offset))
            for blob in self._records:
                handle.write(blob)
        return IndexStats(count=count, longest=self._longest)

    def __enter__(self) -> "IndexedWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._closed:
            self.close()


def write_indexed(
    records: Iterable[Sequence], path: str | os.PathLike
) -> IndexStats:
    """Serialize *records* into an indexed file at *path*."""
    with IndexedWriter(path) as writer:
        for record in records:
            writer.add(record)
    return writer.close() if not writer._closed else IndexStats(
        count=len(writer._records), longest=writer._longest
    )


def index_fasta(
    fasta_path: str | os.PathLike,
    indexed_path: str | os.PathLike,
    alphabet: Alphabet | None = None,
) -> IndexStats:
    """Convert a FASTA flat file to the indexed format.

    This is the master's *convert format* step in Fig. 4 of the paper.
    """
    with IndexedWriter(indexed_path) as writer:
        for record in iter_fasta(fasta_path, alphabet=alphabet):
            writer.add(record)
    # ``close`` already ran via ``__exit__``; recompute stats from header.
    with IndexedReader(indexed_path) as reader:
        return IndexStats(count=len(reader), longest=reader.longest)


class IndexedReader(TypingSequence[Sequence]):
    """Random-access reader over an indexed sequence file.

    Implements the :class:`collections.abc.Sequence` protocol so callers
    can use ``reader[k]``, ``len(reader)`` and iteration transparently.
    Records are decoded on demand; nothing besides the offset table is
    held in memory.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        alphabet: Alphabet | None = None,
    ):
        self._path = os.fspath(path)
        self._alphabet = alphabet
        self._handle = open(self._path, "rb")
        raw = self._handle.read(_HEADER_STRUCT.size)
        if len(raw) != _HEADER_STRUCT.size:
            raise IndexedFileError("file too short for header")
        magic, count, longest = _HEADER_STRUCT.unpack(raw)
        if magic != MAGIC:
            raise IndexedFileError(
                f"bad magic {magic!r}; not an indexed sequence file"
            )
        self._count = count
        self._longest = longest
        table = self._handle.read(count * _U64.size)
        if len(table) != count * _U64.size:
            raise IndexedFileError("truncated offset table")
        self._offsets = [
            _U64.unpack_from(table, i * _U64.size)[0] for i in range(count)
        ]

    # ------------------------------------------------------------------
    @property
    def longest(self) -> int:
        """Length of the longest sequence (from the header)."""
        return self._longest

    @property
    def offsets(self) -> list[int]:
        """Byte offset of each record (copy; the table is immutable)."""
        return list(self._offsets)

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not (0 <= index < self._count):
            raise IndexError("record index out of range")
        return self._read_at(self._offsets[index])

    def __iter__(self) -> Iterator[Sequence]:
        for offset in self._offsets:
            yield self._read_at(offset)

    def _read_at(self, offset: int) -> Sequence:
        self._handle.seek(offset)
        hdr_len = self._read_u32()
        header = self._handle.read(hdr_len).decode("ascii", errors="replace")
        seq_len = self._read_u32()
        residues = self._handle.read(seq_len)
        if len(residues) != seq_len:
            raise IndexedFileError("truncated record body")
        seq_id, _, description = header.partition(" ")
        return Sequence(
            id=seq_id,
            residues=residues.decode("ascii"),
            description=description.strip(),
            alphabet=self._alphabet,
        )

    def _read_u32(self) -> int:
        raw = self._handle.read(_U32.size)
        if len(raw) != _U32.size:
            raise IndexedFileError("truncated record header")
        return _U32.unpack(raw)[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "IndexedReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
