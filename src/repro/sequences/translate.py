"""DNA/RNA translation: codons, reading frames, six-frame search prep.

A sequence-comparison library that handles both nucleotide and protein
data needs the bridge between them: translated search (the BLASTX
family) compares a DNA query against a protein database by translating
all six reading frames.  This module implements the standard genetic
code and the frame machinery; the translated-search example composes it
with the protein search stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from .alphabet import DNA, PROTEIN, RNA
from .records import Sequence

__all__ = [
    "GENETIC_CODE",
    "translate",
    "reading_frames",
    "six_frame_translations",
]

#: The standard genetic code (NCBI translation table 1), DNA codons.
#: ``*`` marks stop codons (a letter of the protein alphabet here, so
#: translations round-trip through the scoring machinery).
GENETIC_CODE: dict[str, str] = {
    "TTT": "F", "TTC": "F", "TTA": "L", "TTG": "L",
    "CTT": "L", "CTC": "L", "CTA": "L", "CTG": "L",
    "ATT": "I", "ATC": "I", "ATA": "I", "ATG": "M",
    "GTT": "V", "GTC": "V", "GTA": "V", "GTG": "V",
    "TCT": "S", "TCC": "S", "TCA": "S", "TCG": "S",
    "CCT": "P", "CCC": "P", "CCA": "P", "CCG": "P",
    "ACT": "T", "ACC": "T", "ACA": "T", "ACG": "T",
    "GCT": "A", "GCC": "A", "GCA": "A", "GCG": "A",
    "TAT": "Y", "TAC": "Y", "TAA": "*", "TAG": "*",
    "CAT": "H", "CAC": "H", "CAA": "Q", "CAG": "Q",
    "AAT": "N", "AAC": "N", "AAA": "K", "AAG": "K",
    "GAT": "D", "GAC": "D", "GAA": "E", "GAG": "E",
    "TGT": "C", "TGC": "C", "TGA": "*", "TGG": "W",
    "CGT": "R", "CGC": "R", "CGA": "R", "CGG": "R",
    "AGT": "S", "AGC": "S", "AGA": "R", "AGG": "R",
    "GGT": "G", "GGC": "G", "GGA": "G", "GGG": "G",
}


@dataclass(frozen=True)
class _Frame:
    """One reading frame of a nucleotide sequence."""

    frame: int  # +1, +2, +3, -1, -2, -3
    protein: Sequence


def translate(sequence: Sequence, frame: int = 1) -> Sequence:
    """Translate one reading frame of a DNA/RNA sequence.

    ``frame`` is +1/+2/+3 for the forward strand (0-, 1-, 2-base
    offset) and -1/-2/-3 for the reverse complement.  Codons containing
    ambiguous bases translate to ``X``; trailing bases that do not fill
    a codon are dropped.
    """
    if frame not in (1, 2, 3, -1, -2, -3):
        raise ValueError("frame must be one of +-1, +-2, +-3")
    alphabet = sequence.alphabet
    if alphabet not in (DNA, RNA):
        raise ValueError("translation requires a nucleotide sequence")
    residues = sequence.residues
    if alphabet is RNA:
        residues = residues.replace("U", "T")
    if frame < 0:
        from ..align.dna import reverse_complement

        source = reverse_complement(
            Sequence(id=sequence.id, residues=residues, alphabet=DNA)
        ).residues
    else:
        source = residues
    offset = abs(frame) - 1
    codons = (
        source[i : i + 3]
        for i in range(offset, len(source) - 2, 3)
    )
    amino = "".join(GENETIC_CODE.get(codon, "X") for codon in codons)
    sign = "+" if frame > 0 else "-"
    return Sequence(
        id=f"{sequence.id}|frame{sign}{abs(frame)}",
        residues=amino,
        description=sequence.description,
        alphabet=PROTEIN,
    )


def reading_frames(sequence: Sequence, strands: str = "both") -> list[int]:
    """The frame numbers to translate for the requested strands."""
    if strands == "forward":
        return [1, 2, 3]
    if strands == "reverse":
        return [-1, -2, -3]
    if strands == "both":
        return [1, 2, 3, -1, -2, -3]
    raise ValueError("strands must be 'forward', 'reverse' or 'both'")


def six_frame_translations(
    sequence: Sequence, strands: str = "both"
) -> list[Sequence]:
    """All translations of *sequence* (the BLASTX query preparation)."""
    return [
        translate(sequence, frame)
        for frame in reading_frames(sequence, strands)
    ]
