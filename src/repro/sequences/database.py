"""Sequence database abstraction.

A *database* in the paper's sense is an ordered collection of subject
sequences that a query is compared against; a **task** is the comparison
of one query to one whole database.  :class:`SequenceDatabase` gives the
scheduler and the kernels a uniform view over in-memory lists, FASTA
files and indexed files, and precomputes the statistics the performance
models and the GCUPS accounting need (total residues, length histogram).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as TypingSequence

import numpy as np

from .alphabet import Alphabet, PROTEIN
from .fasta import read_fasta
from .indexed import IndexedReader
from .records import Sequence

__all__ = ["DatabaseStats", "SequenceDatabase"]


@dataclass(frozen=True)
class DatabaseStats:
    """Aggregate geometry of a database (cf. the paper's Table II)."""

    name: str
    num_sequences: int
    total_residues: int
    shortest: int
    longest: int

    @property
    def mean_length(self) -> float:
        if self.num_sequences == 0:
            return 0.0
        return self.total_residues / self.num_sequences

    def row(self) -> tuple[str, int, int, int]:
        """(name, #seqs, shortest, longest) — the Table II columns."""
        return (self.name, self.num_sequences, self.shortest, self.longest)


class SequenceDatabase(TypingSequence[Sequence]):
    """An ordered, immutable collection of subject sequences.

    Parameters
    ----------
    records:
        The subject sequences.
    name:
        Display name, e.g. ``"UniProtDB/SwissProt"``.
    alphabet:
        Alphabet shared by all records; defaults to protein, the paper's
        evaluation domain.
    """

    def __init__(
        self,
        records: Iterable[Sequence],
        name: str = "database",
        alphabet: Alphabet = PROTEIN,
    ):
        self._records = list(records)
        self._name = name
        self._alphabet = alphabet
        lengths = np.array([len(r) for r in self._records], dtype=np.int64)
        self._lengths = lengths
        self._total = int(lengths.sum()) if lengths.size else 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_fasta(
        cls,
        path: str | os.PathLike,
        name: str | None = None,
        alphabet: Alphabet = PROTEIN,
    ) -> "SequenceDatabase":
        records = read_fasta(path, alphabet=alphabet)
        return cls(records, name=name or os.fspath(path), alphabet=alphabet)

    @classmethod
    def from_indexed(
        cls,
        path: str | os.PathLike,
        name: str | None = None,
        alphabet: Alphabet = PROTEIN,
    ) -> "SequenceDatabase":
        with IndexedReader(path, alphabet=alphabet) as reader:
            records = list(reader)
        return cls(records, name=name or os.fspath(path), alphabet=alphabet)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):  # type: ignore[override]
        return self._records[index]

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def total_residues(self) -> int:
        """Sum of sequence lengths; the denominator of GCUPS accounting."""
        return self._total

    @property
    def lengths(self) -> np.ndarray:
        """Per-record lengths (int64 array, read-only view)."""
        view = self._lengths.view()
        view.flags.writeable = False
        return view

    def stats(self) -> DatabaseStats:
        if not self._records:
            return DatabaseStats(self._name, 0, 0, 0, 0)
        return DatabaseStats(
            name=self._name,
            num_sequences=len(self._records),
            total_residues=self._total,
            shortest=int(self._lengths.min()),
            longest=int(self._lengths.max()),
        )

    # ------------------------------------------------------------------
    # Layout helpers used by the inter-sequence ("GPU") kernel
    # ------------------------------------------------------------------
    def order_by_length(self) -> np.ndarray:
        """Indices that sort records by ascending length.

        CUDASW++-style engines sort the database by length before packing
        sequences into SIMD lanes so that lanes in one batch have similar
        lengths and padding is minimal; this is that *database
        conversion* step.
        """
        return np.argsort(self._lengths, kind="stable")

    def chunks(self, chunk_size: int) -> Iterator["SequenceDatabase"]:
        """Split into contiguous sub-databases of *chunk_size* records.

        Used by the coarse-grained decomposition (Fig. 3b) and by the
        granularity ablation benchmark.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self._records), chunk_size):
            yield SequenceDatabase(
                self._records[start : start + chunk_size],
                name=f"{self._name}[{start}:{start + chunk_size}]",
                alphabet=self._alphabet,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SequenceDatabase(name={self._name!r}, n={len(self)}, "
            f"residues={self._total})"
        )
