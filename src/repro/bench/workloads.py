"""Paper workload definitions.

Section V: "we compared 40 query sequences to five genomic databases
... with equally distributed sizes, ranging from 100 amino acids to
approximately 5,000 amino acids".  The simulator only needs the cell
geometry, so a workload here is a list of :class:`~repro.core.task.Task`
records whose cells come from the query-length grid and the database
profiles of Table II.
"""

from __future__ import annotations

import numpy as np

from ..core.task import Task
from ..sequences.profiles import PAPER_DATABASES, DatabaseProfile

__all__ = [
    "paper_query_lengths",
    "tasks_for_profile",
    "paper_workloads",
    "uniform_tasks",
]


def paper_query_lengths(
    count: int = 40, shortest: int = 100, longest: int = 5000
) -> np.ndarray:
    """The evenly spaced query-length grid of the evaluation."""
    if count <= 0:
        return np.zeros(0, dtype=np.int64)
    if count == 1:
        return np.array([shortest], dtype=np.int64)
    return np.linspace(shortest, longest, count).round().astype(np.int64)


def tasks_for_profile(
    profile: DatabaseProfile,
    num_queries: int = 40,
    shortest: int = 100,
    longest: int = 5000,
    order: str = "shuffled",
    seed: int = 5,
) -> list[Task]:
    """One paper workload: *num_queries* tasks against one database.

    ``order`` controls the task submission order: ``"shuffled"``
    (default, deterministic via *seed*) models a real query file, where
    sequence length is uncorrelated with file position; ``"sorted"``
    submits shortest-first, which systematically pushes the biggest
    tasks to the end of the run and understates the tail problem the
    adjustment mechanism targets.
    """
    lengths = paper_query_lengths(num_queries, shortest, longest)
    if order == "shuffled":
        rng = np.random.default_rng(seed)
        lengths = lengths[rng.permutation(len(lengths))]
    elif order == "longest":
        # Longest-processing-time-first: minimizes the end-of-run tail of
        # the very coarse-grained decomposition (ordering ablation).
        lengths = np.sort(lengths)[::-1]
    elif order != "sorted":
        raise ValueError(f"unknown order {order!r}")
    residues = profile.total_residues
    return [
        Task(
            task_id=i,
            query_id=f"query{i:03d}",
            query_length=int(length),
            cells=int(length) * residues,
            query_index=i,
        )
        for i, length in enumerate(lengths)
    ]


def paper_workloads(num_queries: int = 40) -> dict[str, list[Task]]:
    """All five Table II workloads, keyed by database name."""
    return {
        profile.name: tasks_for_profile(profile, num_queries)
        for profile in PAPER_DATABASES
    }


def uniform_tasks(count: int, cells: int = 6, query_length: int = 1) -> list[Task]:
    """Identical tasks for didactic scenarios (Fig. 5's 20 x 1 s tasks)."""
    return [
        Task(
            task_id=i,
            query_id=f"t{i + 1}",
            query_length=query_length,
            cells=cells,
        )
        for i in range(count)
    ]
