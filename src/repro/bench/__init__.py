"""Benchmark harness: paper workloads, table and figure regeneration."""

from .figures import (
    Fig5Result,
    Fig6Result,
    FigTimelineResult,
    HeadlineResult,
    fig5_schedule,
    fig6_adjustment,
    fig7_dedicated,
    fig8_nondedicated,
    headline,
)
from .report import (
    cell_rows_to_csv,
    fig6_to_csv,
    format_cell_rows,
    format_fig6,
    format_grid,
    format_headline,
    format_policy_rows,
)
from .sensitivity import SensitivityPoint, sensitivity_study
from .tables import (
    CellRow,
    PolicyRow,
    run_configuration,
    table1_policies,
    table2_databases,
    table3_sse,
    table4_gpu,
    table5_hybrid,
)
from .workloads import (
    paper_query_lengths,
    paper_workloads,
    tasks_for_profile,
    uniform_tasks,
)

__all__ = [
    "Fig5Result",
    "Fig6Result",
    "FigTimelineResult",
    "HeadlineResult",
    "fig5_schedule",
    "fig6_adjustment",
    "fig7_dedicated",
    "fig8_nondedicated",
    "headline",
    "format_cell_rows",
    "format_fig6",
    "format_grid",
    "format_headline",
    "format_policy_rows",
    "cell_rows_to_csv",
    "fig6_to_csv",
    "SensitivityPoint",
    "sensitivity_study",
    "CellRow",
    "PolicyRow",
    "run_configuration",
    "table1_policies",
    "table2_databases",
    "table3_sse",
    "table4_gpu",
    "table5_hybrid",
    "paper_query_lengths",
    "paper_workloads",
    "tasks_for_profile",
    "uniform_tasks",
]
