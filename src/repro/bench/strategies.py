"""Fig. 3: the three ways to parallelize SW, made quantitative.

Section II-B of the paper catalogues three decompositions:

* **fine-grained** (Fig. 3a) — one matrix computed by several PEs in a
  column-blocked pipeline; PEs exchange border columns, and "very close
  to the end of the matrix computation, only P3 is calculating";
* **coarse-grained** (Fig. 3b) — each PE gets the query and a database
  subset; no communication, balanced as long as subsets are;
* **very coarse-grained** (Fig. 3c) — each PE compares a different
  query to the whole database; "this approach can easily lead to load
  imbalance" — the imbalance the paper's adjustment mechanism targets.

This module models all three analytically (pipeline fill/drain,
per-border communication, per-subset residue imbalance, per-query makespan)
so the taxonomy's qualitative claims become checkable numbers; the
:mod:`benchmarks.bench_fig3_strategies` harness regenerates the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StrategyOutcome",
    "fine_grained",
    "coarse_grained",
    "very_coarse_grained",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """Predicted execution of one decomposition."""

    strategy: str
    num_pes: int
    seconds: float
    ideal_seconds: float

    @property
    def efficiency(self) -> float:
        """Parallel efficiency vs the ideal (work / P) schedule."""
        return self.ideal_seconds / self.seconds if self.seconds else 0.0


def _total_cells(query_lengths: np.ndarray, database_residues: int) -> int:
    return int(query_lengths.sum()) * database_residues


def fine_grained(
    query_lengths: np.ndarray,
    database_residues: int,
    num_pes: int,
    cell_rate: float,
    block_columns: int = 256,
    border_latency: float = 5e-6,
) -> StrategyOutcome:
    """Fig. 3a: every matrix is column-block pipelined over all PEs.

    The query (matrix rows) is split across PEs; the subject dimension
    advances in blocks of ``block_columns``.  Each matrix of ``m x n``
    cells costs a pipeline of ``n / B + P - 1`` stages of
    ``(m / P) * B`` cells (the fill/drain is the ``P - 1`` term the
    paper's "only P3 is calculating" remark describes) plus one border
    message per stage per PE boundary.
    """
    if num_pes < 1:
        raise ValueError("need at least one PE")
    total = 0.0
    for m in query_lengths:
        n = database_residues
        stages = -(-n // block_columns) + num_pes - 1
        stage_cells = (m / num_pes) * block_columns
        compute = stages * stage_cells / cell_rate
        comm = stages * (num_pes - 1) * border_latency
        total += compute + comm
    ideal = _total_cells(query_lengths, database_residues) / (
        cell_rate * num_pes
    )
    return StrategyOutcome("fine-grained", num_pes, total, ideal)


def coarse_grained(
    query_lengths: np.ndarray,
    database_residues: int,
    num_pes: int,
    cell_rate: float,
    subset_imbalance: float = 0.02,
) -> StrategyOutcome:
    """Fig. 3b: each PE scans a database subset for every query.

    Subsets are residue-balanced up to ``subset_imbalance`` (sequence
    boundaries prevent perfect splits); queries are processed one after
    another with a barrier per query (all PEs finish query ``q`` before
    ``q+1`` starts, as in the paper's description).
    """
    if num_pes < 1:
        raise ValueError("need at least one PE")
    per_pe_residues = database_residues / num_pes * (1 + subset_imbalance)
    total = float(query_lengths.sum()) * per_pe_residues / cell_rate
    ideal = _total_cells(query_lengths, database_residues) / (
        cell_rate * num_pes
    )
    return StrategyOutcome("coarse-grained", num_pes, total, ideal)


def very_coarse_grained(
    query_lengths: np.ndarray,
    database_residues: int,
    num_pes: int,
    cell_rate: float,
) -> StrategyOutcome:
    """Fig. 3c: one whole query x database comparison per PE.

    Tasks are self-scheduled (longest queue drains first); the makespan
    is the classic list-scheduling bound realized greedily, and the
    tail of the last, possibly huge, task is fully exposed — the load
    imbalance the paper calls out and later fixes with replication.
    """
    if num_pes < 1:
        raise ValueError("need at least one PE")
    finish = np.zeros(num_pes)
    for m in query_lengths:  # submission order = file order
        pe = int(finish.argmin())
        finish[pe] += m * database_residues / cell_rate
    ideal = _total_cells(query_lengths, database_residues) / (
        cell_rate * num_pes
    )
    return StrategyOutcome(
        "very coarse-grained", num_pes, float(finish.max()), ideal
    )
