"""Plain-text rendering of benchmark results (the tables the paper prints)."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from .figures import Fig6Result, HeadlineResult
from .tables import CellRow, PolicyRow

__all__ = [
    "format_grid",
    "format_cell_rows",
    "format_policy_rows",
    "format_fig6",
    "format_headline",
    "cell_rows_to_csv",
    "fig6_to_csv",
]


def format_grid(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align columns of a simple text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_cell_rows(rows: list[CellRow], title: str) -> str:
    """Render a Table III/IV/V-style sweep: databases x configurations.

    Each cell shows ``seconds / GCUPS`` exactly as the paper's tables
    stack them.
    """
    by_database: dict[str, dict[str, CellRow]] = defaultdict(dict)
    configurations: list[str] = []
    for row in rows:
        if row.configuration not in configurations:
            configurations.append(row.configuration)
        by_database[row.database][row.configuration] = row
    headers = ["Database"] + [f"{c} (s / GCUPS)" for c in configurations]
    body = []
    for database, cells in by_database.items():
        body.append(
            [database]
            + [
                f"{cells[c].seconds:9.1f} / {cells[c].gcups:7.2f}"
                for c in configurations
            ]
        )
    return f"{title}\n{format_grid(headers, body)}"


def format_policy_rows(rows: list[PolicyRow], title: str) -> str:
    headers = ["Policy", "Reassign", "Makespan (s)", "Replicas"]
    body = [
        [r.policy, "yes" if r.reassignment else "no", f"{r.makespan:.2f}",
         r.replicas]
        for r in rows
    ]
    return f"{title}\n{format_grid(headers, body)}"


def format_fig6(result: Fig6Result) -> str:
    headers = ["Configuration", "GCUPS with", "GCUPS without", "Gain %"]
    body = [
        [conf, f"{w:.2f}", f"{wo:.2f}", f"{gain:+.1f}"]
        for conf, w, wo, gain in result.rows()
    ]
    return (
        f"Fig. 6 - workload adjustment on {result.database}\n"
        + format_grid(headers, body)
    )


def cell_rows_to_csv(rows: list[CellRow]) -> str:
    """Machine-readable form of a Table III/IV/V sweep."""
    lines = ["database,configuration,seconds,gcups"]
    for row in rows:
        database = row.database.replace(",", ";")
        lines.append(
            f"{database},{row.configuration},{row.seconds:.3f},"
            f"{row.gcups:.4f}"
        )
    return "\n".join(lines) + "\n"


def fig6_to_csv(result: Fig6Result) -> str:
    """Machine-readable form of the Fig. 6 comparison."""
    lines = ["configuration,gcups_with,gcups_without,gain_percent"]
    for configuration, with_adj, without, gain in result.rows():
        lines.append(
            f"{configuration},{with_adj:.4f},{without:.4f},{gain:.2f}"
        )
    return "\n".join(lines) + "\n"


def format_headline(result: HeadlineResult) -> str:
    return (
        "Headline (SwissProt, 40 queries)\n"
        f"  1 SSE core:           {result.one_sse_seconds:10.1f} s\n"
        f"  4 GPUs + 4 SSE cores: {result.full_hybrid_seconds:10.1f} s "
        f"({result.full_hybrid_gcups:.1f} GCUPS)\n"
        f"  speedup:              {result.speedup:10.1f} x\n"
        f"  adjustment saving:    {result.adjustment_saving_percent:10.1f} %"
    )
