"""Regeneration of the paper's result tables (III, IV, V; plus I & II).

Every function returns plain data structures (lists of row dataclasses)
so the pytest-benchmark harnesses and the CLI can both print them.  All
runs use the PSS policy with the workload-adjustment mechanism active,
matching the paper's stated defaults ("The PSS policy was used in all
the tests and, unless otherwise stated, the workload adjustment
mechanism was always activated").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policies import (
    AllocationPolicy,
    FixedSplit,
    PackageWeightedSelfScheduling,
    SelfScheduling,
    WeightedFixed,
)
from ..core.task import Task
from ..sequences.profiles import PAPER_DATABASES, DatabaseProfile
from ..simulate.des import HybridSimulator, PESpec, SimReport
from ..simulate.pe_models import UniformModel
from ..simulate.platform import gpus, hybrid_platform, sse_cores
from .workloads import tasks_for_profile, uniform_tasks

__all__ = [
    "CellRow",
    "table2_databases",
    "table3_sse",
    "table4_gpu",
    "table5_hybrid",
    "table1_policies",
    "run_configuration",
]


@dataclass(frozen=True)
class CellRow:
    """One (database, configuration) measurement."""

    database: str
    configuration: str
    seconds: float
    gcups: float


def run_configuration(
    tasks: list[Task],
    num_gpus: int,
    num_sse: int,
    adjustment: bool = True,
    policy: AllocationPolicy | None = None,
) -> SimReport:
    """Simulate one workload on one platform configuration."""
    pes = hybrid_platform(num_gpus, num_sse)
    simulator = HybridSimulator(pes, policy=policy, adjustment=adjustment)
    return simulator.run(tasks)


def table2_databases() -> list[tuple[str, int, int, int]]:
    """Table II: the database geometry rows."""
    return [
        (p.name, p.num_sequences, p.shortest, p.longest)
        for p in PAPER_DATABASES
    ]


def _sweep(
    configurations: list[tuple[str, int, int]],
    databases: tuple[DatabaseProfile, ...],
    num_queries: int,
) -> list[CellRow]:
    rows: list[CellRow] = []
    for profile in databases:
        tasks = tasks_for_profile(profile, num_queries)
        for label, num_gpus, num_sse in configurations:
            report = run_configuration(tasks, num_gpus, num_sse)
            rows.append(
                CellRow(
                    database=profile.name,
                    configuration=label,
                    seconds=report.makespan,
                    gcups=report.gcups,
                )
            )
    return rows


def table3_sse(
    core_counts: tuple[int, ...] = (1, 2, 4, 8),
    databases: tuple[DatabaseProfile, ...] = PAPER_DATABASES,
    num_queries: int = 40,
) -> list[CellRow]:
    """Table III: SSE-only execution, 1/2/4/8 cores x 5 databases."""
    configurations = [(f"{n} SSE", 0, n) for n in core_counts]
    return _sweep(configurations, databases, num_queries)


def table4_gpu(
    gpu_counts: tuple[int, ...] = (1, 2, 4),
    databases: tuple[DatabaseProfile, ...] = PAPER_DATABASES,
    num_queries: int = 40,
) -> list[CellRow]:
    """Table IV: GPU-only execution, 1/2/4 GPUs x 5 databases."""
    configurations = [(f"{n} GPU", n, 0) for n in gpu_counts]
    return _sweep(configurations, databases, num_queries)


def table5_hybrid(
    combos: tuple[tuple[int, int], ...] = ((1, 1), (1, 2), (1, 4), (2, 4), (4, 4)),
    databases: tuple[DatabaseProfile, ...] = PAPER_DATABASES,
    num_queries: int = 40,
) -> list[CellRow]:
    """Table V: hybrid GPU + SSE execution."""
    configurations = [
        (f"{g} GPU+{s} SSE", g, s) for g, s in combos
    ]
    return _sweep(configurations, databases, num_queries)


@dataclass(frozen=True)
class PolicyRow:
    """One row of the related-work policy comparison (Table I spirit)."""

    policy: str
    reassignment: bool
    makespan: float
    replicas: int


def table1_policies(
    num_tasks: int = 20,
    gpu_speedup: float = 6.0,
) -> list[PolicyRow]:
    """Policy comparison on the heterogeneous microbenchmark.

    Table I of the paper surveys allocation policies of related work
    (SS, Fixed, WFixed) against the paper's PSS + reassignment.  We run
    all four on the Fig. 5 platform (1 GPU 6x faster than 3 SSE cores)
    so their load-balance behaviour is directly comparable.
    """
    tasks = uniform_tasks(num_tasks)
    # Fig. 5 platform: one GPU six times faster than three SSE cores.
    pes = [
        PESpec("gpu0", UniformModel(rate=gpu_speedup, pe_class_name="gpu")),
        *[
            PESpec(f"sse{i}", UniformModel(rate=1.0, pe_class_name="sse"))
            for i in range(3)
        ],
    ]
    weights = {"gpu0": gpu_speedup, "sse0": 1.0, "sse1": 1.0, "sse2": 1.0}
    policies: list[tuple[str, AllocationPolicy, bool]] = [
        ("SS", SelfScheduling(), False),
        ("SS+reassign", SelfScheduling(), True),
        ("Fixed", FixedSplit(), False),
        ("WFixed", WeightedFixed(weights), False),
        ("PSS", PackageWeightedSelfScheduling(), False),
        ("PSS+reassign", PackageWeightedSelfScheduling(), True),
    ]
    rows: list[PolicyRow] = []
    for name, policy, adjustment in policies:
        simulator = HybridSimulator(
            pes, policy=policy, adjustment=adjustment, comm_latency=0.0
        )
        report = simulator.run(list(tasks))
        rows.append(
            PolicyRow(
                policy=name,
                reassignment=adjustment,
                makespan=report.makespan,
                replicas=report.replicas_assigned,
            )
        )
    return rows
