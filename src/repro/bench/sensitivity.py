"""Search sensitivity study: exact SW vs heuristics across divergence.

The paper's opening premise is that SW is "the most accurate algorithm"
for sequence comparison — the reason to spend GPUs and SSE cores on the
exact quadratic DP at all.  This study makes the premise measurable:
homologs are planted at increasing evolutionary distance (substitution
rate) and each search pipeline's *recall* (is the true homolog the top
hit?) is recorded.

Exact SW degrades gracefully with divergence; k-mer seeded search falls
off a cliff once conserved k-mers disappear.  The crossover divergence
is the quantitative version of the sensitivity argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.api import database_search
from ..align.gaps import DEFAULT_GAPS, GapModel
from ..align.scoring import BLOSUM62, SubstitutionMatrix
from ..align.seeding import KmerIndex, seeded_search
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from ..sequences.synthetic import mutate, random_database, random_sequence

__all__ = ["SensitivityPoint", "sensitivity_study"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Recall of each pipeline at one divergence level."""

    substitution_rate: float
    trials: int
    exact_recall: float
    seeded_recall: float
    mean_identity: float  # of the planted homolog pairs


def _plant(
    rng: np.random.Generator,
    database_size: int,
    query_length: int,
    rate: float,
) -> tuple[Sequence, SequenceDatabase, float]:
    database = random_database(database_size, 90.0, rng, name="sens")
    query = random_sequence(query_length, rng, seq_id="needle")
    homolog = mutate(query, rng, substitution_rate=rate, indel_rate=0.02)
    records = list(database)
    position = int(rng.integers(len(records)))
    planted = Sequence(id="true_homolog", residues=homolog.residues)
    records[position] = planted
    # Alignment-based identity of the planted pair (positional identity
    # would be destroyed by the indel shifts).
    from ..align.api import sw_align

    alignment = sw_align(query, planted)
    identity = alignment.identity if alignment.length else 0.0
    return query, SequenceDatabase(records, name="sens"), identity


def sensitivity_study(
    rates: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7),
    trials: int = 5,
    database_size: int = 40,
    query_length: int = 80,
    k: int = 4,
    min_seeds: int = 2,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapModel = DEFAULT_GAPS,
    seed: int = 97,
) -> list[SensitivityPoint]:
    """Run the study; one :class:`SensitivityPoint` per divergence level."""
    rng = np.random.default_rng(seed)
    points = []
    for rate in rates:
        exact_hits = 0
        seeded_hits = 0
        identities = []
        for _ in range(trials):
            query, database, identity = _plant(
                rng, database_size, query_length, rate
            )
            identities.append(identity)
            exact = database_search(query, database, matrix, gaps, top=1)
            if exact.hits and exact.best.subject_id == "true_homolog":
                exact_hits += 1
            index = KmerIndex(database, k=k)
            heuristic = seeded_search(
                query, index, matrix, gaps, min_seeds=min_seeds, top=1
            )
            if heuristic.hits and (
                heuristic.hits[0].subject_id == "true_homolog"
            ):
                seeded_hits += 1
        points.append(
            SensitivityPoint(
                substitution_rate=rate,
                trials=trials,
                exact_recall=exact_hits / trials,
                seeded_recall=seeded_hits / trials,
                mean_identity=float(np.mean(identities)),
            )
        )
    return points
