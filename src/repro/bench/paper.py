"""One-shot reproduction: regenerate the whole paper into a report.

``python -m repro.bench.paper [output-dir]`` (or
:func:`reproduce_all`) runs every table and figure, checks the paper's
qualitative claims, and writes:

* ``REPORT.md`` — all regenerated tables/figures plus a claim checklist;
* ``*.csv`` — machine-readable sweeps;
* ``fig5_schedule.svg`` / ``hybrid_schedule.svg`` — schedule charts.

This is the executable form of EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

from ..sequences.profiles import SWISSPROT
from ..simulate.des import HybridSimulator
from ..simulate.platform import hybrid_platform
from ..simulate.svg import write_gantt_svg
from .figures import (
    fig5_schedule,
    fig6_adjustment,
    fig7_dedicated,
    fig8_nondedicated,
    headline,
)
from .report import (
    cell_rows_to_csv,
    fig6_to_csv,
    format_cell_rows,
    format_fig6,
    format_headline,
    format_policy_rows,
)
from .tables import table1_policies, table3_sse, table4_gpu, table5_hybrid
from .workloads import tasks_for_profile

__all__ = ["ClaimCheck", "reproduce_all"]


@dataclass(frozen=True)
class ClaimCheck:
    """One of the paper's claims, verified against regenerated data."""

    claim: str
    holds: bool
    detail: str


def _check_claims(results: dict) -> list[ClaimCheck]:
    checks: list[ClaimCheck] = []
    head = results["headline"]
    checks.append(
        ClaimCheck(
            claim="1 SSE core takes ~7,190 s on SwissProt",
            holds=abs(head.one_sse_seconds - 7190) / 7190 < 0.05,
            detail=f"measured {head.one_sse_seconds:.0f} s",
        )
    )
    checks.append(
        ClaimCheck(
            claim="4 GPUs + 4 SSEs finish SwissProt in ~112 s",
            holds=abs(head.full_hybrid_seconds - 112) / 112 < 0.25,
            detail=f"measured {head.full_hybrid_seconds:.0f} s",
        )
    )
    checks.append(
        ClaimCheck(
            claim="adjustment reduces hybrid time ~57.2%",
            holds=abs(head.adjustment_saving_percent - 57.2) < 12,
            detail=f"measured {head.adjustment_saving_percent:.1f}%",
        )
    )
    fig5 = results["fig5"]
    checks.append(
        ClaimCheck(
            claim="Fig. 5 walk-through: 14 s with / 18 s without",
            holds=fig5.makespans == (14.0, 18.0),
            detail=f"measured {fig5.makespans}",
        )
    )
    fig6 = results["fig6"]
    homogeneous_ok = all(
        abs(fig6.gain_percent(c)) < 8 for c in ("1GPU", "2GPUs", "4GPUs")
    )
    checks.append(
        ClaimCheck(
            claim="adjustment has negligible impact on homogeneous configs",
            holds=homogeneous_ok,
            detail=", ".join(
                f"{c}: {fig6.gain_percent(c):+.1f}%"
                for c in ("1GPU", "2GPUs", "4GPUs")
            ),
        )
    )
    checks.append(
        ClaimCheck(
            claim="without adjustment GCUPS 'drops a lot' on hybrids",
            holds=fig6.gain_percent("4GPUs+4SSEs") > 80,
            detail=f"4G+4S gain {fig6.gain_percent('4GPUs+4SSEs'):+.1f}%",
        )
    )
    t4 = results["table4"]
    swiss = {
        r.configuration: r.gcups
        for r in t4
        if r.database == SWISSPROT.name
    }
    small = {
        r.configuration: r.gcups
        for r in t4
        if r.database == "Ensembl Dog Proteins"
    }
    ratio = swiss["4 GPU"] / small["4 GPU"]
    checks.append(
        ClaimCheck(
            claim="4-GPU GCUPS on SwissProt ~2x the small proteomes",
            holds=1.5 <= ratio <= 3.0,
            detail=f"ratio {ratio:.2f}x",
        )
    )
    fig7 = results["fig7"]
    fig8 = results["fig8"]
    augmentation = 100 * (fig8.wallclock / fig7.wallclock - 1)
    checks.append(
        ClaimCheck(
            claim="local load on core 0: wallclock penalty below the raw "
            "capacity loss (paper: +12.1% vs ~15%)",
            holds=0 < augmentation < 16,
            detail=f"augmentation {augmentation:+.1f}%",
        )
    )
    return checks


def reproduce_all(out_dir: str) -> list[ClaimCheck]:
    """Run every experiment; write the report; return the claim checks."""
    os.makedirs(out_dir, exist_ok=True)
    results = {
        "table1": table1_policies(),
        "table3": table3_sse(),
        "table4": table4_gpu(),
        "table5": table5_hybrid(),
        "fig5": fig5_schedule(),
        "fig6": fig6_adjustment(),
        "fig7": fig7_dedicated(),
        "fig8": fig8_nondedicated(),
        "headline": headline(),
    }
    checks = _check_claims(results)

    # CSV artifacts.
    for name in ("table3", "table4", "table5"):
        with open(os.path.join(out_dir, f"{name}.csv"), "w",
                  encoding="ascii") as handle:
            handle.write(cell_rows_to_csv(results[name]))
    with open(os.path.join(out_dir, "fig6.csv"), "w",
              encoding="ascii") as handle:
        handle.write(fig6_to_csv(results["fig6"]))

    # SVG schedules.
    write_gantt_svg(
        results["fig5"].with_adjustment,
        os.path.join(out_dir, "fig5_schedule.svg"),
        title="Fig. 5 (with adjustment)",
    )
    hybrid_report = HybridSimulator(hybrid_platform(4, 4)).run(
        tasks_for_profile(SWISSPROT)
    )
    write_gantt_svg(
        hybrid_report,
        os.path.join(out_dir, "hybrid_schedule.svg"),
        title="SwissProt on 4 GPUs + 4 SSEs",
    )

    # The report itself.
    lines = [
        "# Reproduction report",
        "",
        "Regenerated from `repro.bench.paper.reproduce_all`.",
        "",
        "## Claim checklist",
        "",
        "| Claim | Holds | Measured |",
        "|---|---|---|",
    ]
    for check in checks:
        mark = "yes" if check.holds else "**NO**"
        lines.append(f"| {check.claim} | {mark} | {check.detail} |")
    lines += [
        "",
        "## Headline",
        "",
        "```",
        format_headline(results["headline"]),
        "```",
        "",
        "## Table I (policy survey, runnable form)",
        "",
        "```",
        format_policy_rows(results["table1"], ""),
        "```",
    ]
    for name, title in (
        ("table3", "Table III - SSE cores"),
        ("table4", "Table IV - GPUs"),
        ("table5", "Table V - hybrid"),
    ):
        lines += [
            "",
            f"## {title}",
            "",
            "```",
            format_cell_rows(results[name], ""),
            "```",
        ]
    lines += [
        "",
        "## Fig. 5",
        "",
        "```",
        results["fig5"].render(),
        "```",
        "",
        "## Fig. 6",
        "",
        "```",
        format_fig6(results["fig6"]),
        "```",
        "",
        "## Figs. 7/8",
        "",
        f"dedicated wallclock {results['fig7'].wallclock:.1f} s; "
        f"non-dedicated {results['fig8'].wallclock:.1f} s.",
        "",
    ]
    with open(os.path.join(out_dir, "REPORT.md"), "w",
              encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    return checks


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    out_dir = args[0] if args else "reproduction"
    checks = reproduce_all(out_dir)
    failed = [c for c in checks if not c.holds]
    for check in checks:
        status = "ok  " if check.holds else "FAIL"
        print(f"[{status}] {check.claim} -- {check.detail}")
    print(f"\nreport written to {os.path.join(out_dir, 'REPORT.md')}")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
