"""Calibration: derive and verify the PE-model constants.

The simulator's throughput models are *calibrated*, not invented: each
constant is pinned by a number the paper publishes.  This module makes
the derivation executable — given the published anchors it solves for
the constants and checks that the stock models in
:mod:`repro.simulate.pe_models` reproduce them — so a reviewer can see
exactly which measurement fixes which parameter, and re-run the fit if
a profile changes.

Anchors used (all from Section V):

1. **7,190 s** for 40 queries x SwissProt on **one SSE core** — with the
   query grid summing to ~102,000 residues this pins
   ``SSE rate x SwissProt residues``; SwissProt 2012's public release
   statistics (537,505 sequences) then split it into rate ~2.8 GCUPS and
   mean length ~367 aa.
2. **~112 s** for the same workload on **4 GPUs + 4 SSE cores** — pins
   the aggregate hybrid rate at ~180 GCUPS, i.e. ~42 effective GCUPS
   per GPU on SwissProt-sized tasks.
3. Table IV's observation that 4-GPU GCUPS on SwissProt is **about
   double** the small proteomes' — pins the ratio of per-task overhead
   to compute time on a ~12 M-residue database.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.task import Task
from ..sequences.profiles import ENSEMBL_DOG, SWISSPROT
from ..simulate.pe_models import GPUModel, SSECoreModel
from .workloads import paper_query_lengths

__all__ = ["CalibrationCheck", "calibration_report", "solve_sse_rate"]

#: The paper's published anchor values.
PAPER_ONE_SSE_SECONDS = 7_190.0
PAPER_HYBRID_SECONDS = 112.0
PAPER_GPU_DB_GCUPS_RATIO = 2.0


@dataclass(frozen=True)
class CalibrationCheck:
    """One anchor: what the paper says vs what the model predicts."""

    anchor: str
    paper_value: float
    model_value: float

    @property
    def relative_error(self) -> float:
        return abs(self.model_value - self.paper_value) / self.paper_value


def solve_sse_rate(
    one_core_seconds: float = PAPER_ONE_SSE_SECONDS,
    database_residues: int | None = None,
) -> float:
    """Solve the SSE rate (cells/s) from the single-core anchor."""
    residues = (
        database_residues
        if database_residues is not None
        else SWISSPROT.total_residues
    )
    query_residues = int(paper_query_lengths().sum())
    return query_residues * residues / one_core_seconds


def _sum_seconds(model, profile, lengths) -> float:
    residues = profile.total_residues
    return sum(
        model.task_seconds(
            Task(task_id=i, query_id=f"q{i}", query_length=int(m),
                 cells=int(m) * residues)
        )
        for i, m in enumerate(lengths)
    )


def calibration_report(
    sse: SSECoreModel | None = None,
    gpu: GPUModel | None = None,
) -> list[CalibrationCheck]:
    """Check every anchor against the (stock or supplied) models."""
    sse = sse or SSECoreModel()
    gpu = gpu or GPUModel()
    lengths = paper_query_lengths()

    checks = [
        CalibrationCheck(
            anchor="1 SSE core x SwissProt wallclock (s)",
            paper_value=PAPER_ONE_SSE_SECONDS,
            model_value=_sum_seconds(sse, SWISSPROT, lengths),
        ),
        CalibrationCheck(
            anchor="solved SSE rate (GCUPS)",
            paper_value=solve_sse_rate() / 1e9,
            model_value=sse.gcups,
        ),
    ]

    # Anchor 2: aggregate hybrid rate.  Lower bound of the makespan =
    # total work / total rate; the DES adds imbalance on top.
    total_cells = int(lengths.sum()) * SWISSPROT.total_residues
    gpu_rate = total_cells / _sum_seconds(gpu, SWISSPROT, lengths)
    aggregate = 4 * gpu_rate + 4 * solve_sse_rate()
    checks.append(
        CalibrationCheck(
            anchor="4 GPU + 4 SSE ideal wallclock (s)",
            paper_value=PAPER_HYBRID_SECONDS,
            model_value=total_cells / aggregate,
        )
    )

    # Anchor 3: SwissProt / small-proteome per-task GCUPS ratio.
    swiss_rate = total_cells / _sum_seconds(gpu, SWISSPROT, lengths)
    dog_cells = int(lengths.sum()) * ENSEMBL_DOG.total_residues
    dog_rate = dog_cells / _sum_seconds(gpu, ENSEMBL_DOG, lengths)
    checks.append(
        CalibrationCheck(
            anchor="GPU GCUPS ratio SwissProt/Dog",
            paper_value=PAPER_GPU_DB_GCUPS_RATIO,
            model_value=swiss_rate / dog_rate,
        )
    )
    return checks
