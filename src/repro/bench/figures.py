"""Regeneration of the paper's figures (5, 6, 7, 8) and the headline.

Each function returns a small dataclass with the numbers the paper
plots, plus the rendered ASCII form where a chart is involved; the
pytest-benchmark harnesses assert the paper's qualitative claims on the
returned data and print the text renderings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.profiles import ENSEMBL_DOG, SWISSPROT, DatabaseProfile
from ..simulate.des import HybridSimulator, PESpec, SimReport
from ..simulate.loadgen import combine_profiles, competing_process, os_jitter
from ..simulate.pe_models import UniformModel
from ..simulate.platform import CONFIGURATIONS, hybrid_platform, sse_cores
from ..simulate.trace import binned_rate_series, gantt
from .tables import run_configuration
from .workloads import tasks_for_profile, uniform_tasks

__all__ = [
    "Fig5Result",
    "fig5_schedule",
    "Fig6Result",
    "fig6_adjustment",
    "FigTimelineResult",
    "fig7_dedicated",
    "fig8_nondedicated",
    "HeadlineResult",
    "headline",
]


# ----------------------------------------------------------------------
# Figure 5: the didactic 20-task schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    with_adjustment: SimReport
    without_adjustment: SimReport

    @property
    def makespans(self) -> tuple[float, float]:
        return (
            self.with_adjustment.makespan,
            self.without_adjustment.makespan,
        )

    def render(self) -> str:
        return (
            "(a) with workload adjustment "
            f"({self.with_adjustment.makespan:.0f}s)\n"
            + gantt(self.with_adjustment)
            + "\n\n(b) without workload adjustment "
            f"({self.without_adjustment.makespan:.0f}s)\n"
            + gantt(self.without_adjustment)
        )


def fig5_schedule(num_tasks: int = 20, gpu_speedup: float = 6.0) -> Fig5Result:
    """Section IV-A-3's example: 1 GPU (6x) + 3 SSEs, 20 x 1 s tasks.

    The paper derives 14 s with the mechanism and 18 s without; the
    simulator reproduces both exactly.
    """
    tasks = uniform_tasks(num_tasks, cells=int(gpu_speedup))
    pes = [
        PESpec("gpu1", UniformModel(rate=gpu_speedup, pe_class_name="gpu")),
        *[
            PESpec(f"sse{i}", UniformModel(rate=1.0, pe_class_name="sse"))
            for i in (1, 2, 3)
        ],
    ]
    reports = []
    for adjustment in (True, False):
        simulator = HybridSimulator(
            pes,
            adjustment=adjustment,
            comm_latency=0.0,  # "communication time ... is negligible"
            notify_interval=0.5,
        )
        reports.append(simulator.run(list(tasks)))
    return Fig5Result(with_adjustment=reports[0], without_adjustment=reports[1])


# ----------------------------------------------------------------------
# Figure 6: GCUPS with/without the mechanism across configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    database: str
    configurations: tuple[str, ...]
    gcups_with: tuple[float, ...]
    gcups_without: tuple[float, ...]

    def gain_percent(self, configuration: str) -> float:
        """Performance gain of the mechanism for one configuration."""
        index = self.configurations.index(configuration)
        without = self.gcups_without[index]
        return 100.0 * (self.gcups_with[index] - without) / without

    def rows(self) -> list[tuple[str, float, float, float]]:
        return [
            (conf, w, wo, self.gain_percent(conf))
            for conf, w, wo in zip(
                self.configurations, self.gcups_with, self.gcups_without
            )
        ]


def fig6_adjustment(
    profile: DatabaseProfile = SWISSPROT, num_queries: int = 40
) -> Fig6Result:
    """Fig. 6: SwissProt GCUPS for the six configurations, both modes."""
    tasks = tasks_for_profile(profile, num_queries)
    gcups_with: list[float] = []
    gcups_without: list[float] = []
    labels: list[str] = []
    for label, num_gpus, num_sse in CONFIGURATIONS:
        labels.append(label)
        for adjustment, sink in ((True, gcups_with), (False, gcups_without)):
            report = run_configuration(
                list(tasks), num_gpus, num_sse, adjustment=adjustment
            )
            sink.append(report.gcups)
    return Fig6Result(
        database=profile.name,
        configurations=tuple(labels),
        gcups_with=tuple(gcups_with),
        gcups_without=tuple(gcups_without),
    )


# ----------------------------------------------------------------------
# Figures 7 & 8: dedicated vs non-dedicated 4-core runs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FigTimelineResult:
    report: SimReport
    series: dict[str, list[tuple[float, float]]]  # pe -> (t, GCUPS) bins

    @property
    def wallclock(self) -> float:
        return self.report.makespan


def _timeline_run(
    profile: DatabaseProfile,
    num_queries: int,
    load_profiles: dict[int, tuple[tuple[float, float], ...]],
    jitter_seed: int | None,
    bin_seconds: float,
) -> FigTimelineResult:
    profiles = dict(load_profiles)
    if jitter_seed is not None:
        rng = np.random.default_rng(jitter_seed)
        horizon = 400.0
        for core in range(4):
            jitter = os_jitter(horizon, rng)
            profiles[core] = combine_profiles(jitter, profiles.get(core, ()))
    pes = sse_cores(4, load_profiles=profiles)
    simulator = HybridSimulator(pes)
    report = simulator.run(tasks_for_profile(profile, num_queries))
    series = {
        spec.pe_id: binned_rate_series(report, spec.pe_id, bin_seconds)
        for spec in pes
    }
    return FigTimelineResult(report=report, series=series)


def fig7_dedicated(
    profile: DatabaseProfile = ENSEMBL_DOG,
    num_queries: int = 40,
    jitter_seed: int | None = 7,
    bin_seconds: float = 5.0,
) -> FigTimelineResult:
    """Fig. 7: per-core GCUPS over a dedicated 4-core run (Ensembl Dog)."""
    return _timeline_run(profile, num_queries, {}, jitter_seed, bin_seconds)


def fig8_nondedicated(
    profile: DatabaseProfile = ENSEMBL_DOG,
    num_queries: int = 40,
    load_start: float = 60.0,
    load_capacity: float = 0.45,
    jitter_seed: int | None = 7,
    bin_seconds: float = 5.0,
) -> FigTimelineResult:
    """Fig. 8: same run with superpi-style load on core 0 after 60 s."""
    load = {0: competing_process(load_start, load_capacity)}
    return _timeline_run(profile, num_queries, load, jitter_seed, bin_seconds)


# ----------------------------------------------------------------------
# Headline numbers (abstract / Section V-A)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HeadlineResult:
    """The abstract's claims, measured."""

    one_sse_seconds: float
    full_hybrid_seconds: float
    full_hybrid_gcups: float
    adjustment_saving_percent: float

    @property
    def speedup(self) -> float:
        return self.one_sse_seconds / self.full_hybrid_seconds


def headline(num_queries: int = 40) -> HeadlineResult:
    """Reproduce: 7,190 s (1 SSE) -> ~112 s (4 GPUs + 4 SSEs) on
    SwissProt, with the adjustment mechanism cutting hybrid time ~57%."""
    tasks = tasks_for_profile(SWISSPROT, num_queries)
    one_sse = run_configuration(list(tasks), 0, 1)
    hybrid = run_configuration(list(tasks), 4, 4)
    hybrid_no_adjust = run_configuration(list(tasks), 4, 4, adjustment=False)
    saving = 100.0 * (
        (hybrid_no_adjust.makespan - hybrid.makespan)
        / hybrid_no_adjust.makespan
    )
    return HeadlineResult(
        one_sse_seconds=one_sse.makespan,
        full_hybrid_seconds=hybrid.makespan,
        full_hybrid_gcups=hybrid.gcups,
        adjustment_saving_percent=saving,
    )
