"""repro — Smith-Waterman sequence comparison on hybrid platforms.

A production-grade reproduction of F. M. Mendonça and A. C. M. A. de
Melo, *Biological Sequence Comparison on Hybrid Platforms with Dynamic
Workload Adjustment* (IEEE IPDPSW 2013).

The package is layered bottom-up:

* :mod:`repro.sequences` — alphabets, FASTA and the paper's indexed
  file format, databases, synthetic workload generation;
* :mod:`repro.align` — Smith-Waterman scoring and alignment kernels
  (textbook reference, numpy column-scan, the paper's adapted-Farrar
  striped kernel, a CUDASW++-style inter-sequence kernel, and
  linear-space Myers-Miller traceback);
* :mod:`repro.core` — the paper's contribution: the task model with
  ready/executing/finished states, the SS/PSS/Fixed/WFixed allocation
  policies, the dynamic workload-adjustment (replication) mechanism,
  and the master/slave runtime;
* :mod:`repro.observability` — dependency-free metrics registry,
  clock-agnostic timers and the unified JSONL event log every
  execution environment reports through;
* :mod:`repro.faults` — seed-deterministic fault injection (crashes,
  stragglers, message faults, partitions) pluggable into every
  environment, paired with the recovery machinery that survives it;
* :mod:`repro.simulate` — a discrete-event simulator of the paper's
  GPU + SSE platform driving the *same* master, used to regenerate the
  published tables and figures at full scale;
* :mod:`repro.bench` — workload definitions and one regeneration
  function per table/figure.

Quickstart::

    import numpy as np
    from repro import Sequence, database_search, random_database

    rng = np.random.default_rng(0)
    db = random_database(100, 120.0, rng, name="demo")
    query = Sequence(id="q", residues=db[17].residues)
    result = database_search(query, db, top=5)
    print(result.best.subject_id, result.best.score)
"""

from .align import (
    BLOSUM50,
    BLOSUM62,
    DEFAULT_GAPS,
    Alignment,
    GapModel,
    SearchHit,
    SearchResult,
    affine_gap,
    database_search,
    gcups,
    linear_gap,
    match_mismatch,
    sw_align,
    sw_score,
)
from .core import (
    FixedSplit,
    HybridRuntime,
    InterSequenceEngine,
    Master,
    PackageWeightedSelfScheduling,
    ScanEngine,
    SelfScheduling,
    StripedSSEEngine,
    Task,
    TaskPool,
    TaskState,
    WeightedFixed,
)
from .faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    MessageFaults,
    PartitionFault,
    StragglerFault,
)
from .observability import EventLog, MetricsRegistry, Timer
from .sequences import (
    DNA,
    PAPER_DATABASES,
    PROTEIN,
    RNA,
    IndexedReader,
    IndexedWriter,
    Sequence,
    SequenceDatabase,
    index_fasta,
    query_set,
    random_database,
    random_sequence,
    read_fasta,
    write_fasta,
)
from .simulate import (
    GPUModel,
    HybridSimulator,
    PESpec,
    SSECoreModel,
    UniformModel,
    hybrid_platform,
    paper_platform,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # align
    "Alignment",
    "GapModel",
    "SearchHit",
    "SearchResult",
    "BLOSUM50",
    "BLOSUM62",
    "DEFAULT_GAPS",
    "affine_gap",
    "linear_gap",
    "match_mismatch",
    "sw_score",
    "sw_align",
    "database_search",
    "gcups",
    # core
    "Task",
    "TaskPool",
    "TaskState",
    "Master",
    "SelfScheduling",
    "PackageWeightedSelfScheduling",
    "FixedSplit",
    "WeightedFixed",
    "HybridRuntime",
    "StripedSSEEngine",
    "InterSequenceEngine",
    "ScanEngine",
    # sequences
    "DNA",
    "RNA",
    "PROTEIN",
    "Sequence",
    "SequenceDatabase",
    "IndexedReader",
    "IndexedWriter",
    "index_fasta",
    "read_fasta",
    "write_fasta",
    "random_sequence",
    "random_database",
    "query_set",
    "PAPER_DATABASES",
    # faults
    "FaultPlan",
    "FaultInjector",
    "CrashFault",
    "StragglerFault",
    "MessageFaults",
    "PartitionFault",
    # observability
    "MetricsRegistry",
    "EventLog",
    "Timer",
    # simulate
    "HybridSimulator",
    "PESpec",
    "GPUModel",
    "SSECoreModel",
    "UniformModel",
    "hybrid_platform",
    "paper_platform",
]
