"""Distributed master/slave runtime over TCP (the paper's deployment)."""

from .launcher import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    ClusterReport,
    run_cluster,
)
from .protocol import (
    ProtocolError,
    decode_hit,
    decode_task,
    encode_hit,
    encode_task,
    recv_message,
    send_message,
)
from .server import MasterServer
from .worker import WorkerConfig, run_worker

__all__ = [
    "ClusterReport",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "run_cluster",
    "MasterServer",
    "WorkerConfig",
    "run_worker",
    "ProtocolError",
    "send_message",
    "recv_message",
    "encode_task",
    "decode_task",
    "encode_hit",
    "decode_hit",
]
