"""Wire protocol of the distributed master/slave runtime.

The paper's environment runs the master and the slaves as separate
processes on two hosts joined by Gigabit Ethernet.  This module defines
the message vocabulary of that interaction — a direct transcription of
Fig. 4's arrows — and a tiny newline-delimited JSON framing so the
protocol is debuggable with ``nc``.

Message types (all carry ``type`` plus the listed fields):

==============  =====================================================
``register``    pe_id [, attempt] [, protocol]  (attempt > 0 marks a
                reconnecting worker's fresh incarnation; the master
                retires the stale registration and re-queues its
                tasks.  ``protocol`` is the worker's wire version —
                absent means version 1, a pre-handshake worker; the
                master rejects versions newer than its own with an
                ``error`` reply instead of mis-parsing later frames)
``request``     pe_id
``assign``      tasks[], replicas[], done, wait,   (master -> slave)
                spans{task_id: {trace, span, parent}} [, batch]
                (``batch`` > 1 invites the slave to coalesce up to that
                many granted tasks into one multi-query sweep; slaves
                that ignore it simply execute singly — results are
                identical either way)
``progress``    pe_id, cells, interval [, trace, span, parent]
                [, stats]  (``stats`` is an optional cumulative
                ``repro.metrics.v1`` snapshot of the worker's own
                registry — the fleet-telemetry piggyback; the master
                keeps the latest per PE and merges them on scrape, so
                resending is idempotent)
``ack``         cancel[]                           (master -> slave;
                piggybacks pending cancellations)
``complete``    pe_id, task_id, elapsed, cells, hits[]
                [, trace, span, parent] [, stats]
``cancelled``   pe_id, task_id [, trace, span, parent]
``error``       message
==============  =====================================================

Client surface of the always-on service (protocol 4, master side of
:mod:`repro.service`) — spoken by search clients, not workers:

==============  =====================================================
``submit``      tenant, query{id, residues} [, deadline] [, protocol]
                (``deadline`` is relative seconds from submission —
                client and master clocks are never compared)
``accepted``    request_id                          (master -> client)
``rejected``    error="overloaded", reason, retry_after
                                                    (master -> client)
``poll``        request_id
``status``      request_id, state, hits[] | null    (master -> client)
``cancel``      request_id
``drain``       (stop admission; reply ``status`` with outstanding)
==============  =====================================================

Service-admitted tasks reference queries no indexed file contains, so
the ``assign`` reply gains an optional ``queries`` map
(``{task_id: {id, residues}}``) carrying their residues inline;
workers use it for any task whose ``query_index`` is negative.  The
map is additive — v1..v3 workers still register and run preloaded
workloads unchanged — but only v4 workers understand inline queries,
so a service deployment needs a v4 fleet.

The optional ``trace``/``span``/``parent`` fields carry the task's span
context (see :mod:`repro.observability.spans`): the master allocates it
when granting work, forwards it in the ``assign`` reply's ``spans``
map, and slaves echo it on every message about that task so worker-side
events join the same causal trace.  All span fields are optional —
older slaves that ignore them still interoperate.

Tasks travel as plain dicts mirroring :class:`repro.core.task.Task`;
hits mirror :class:`repro.align.api.SearchHit`.  Slaves fetch the
actual residues themselves from the shared indexed files (Section
IV-B's design: the offsets make any query one ``seek`` away), so
messages stay tiny.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..align.api import SearchHit
from ..core.task import Task
from ..sequences.records import Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "ProtocolError",
    "check_protocol_version",
    "send_message",
    "recv_message",
    "encode_task",
    "decode_task",
    "encode_hit",
    "decode_hit",
    "encode_query",
    "decode_query",
    "span_fields",
]

#: Upper bound on one frame; a sanity guard against stream corruption.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Current wire version.  Version history:
#: 1 — the original Fig. 4 vocabulary (implicit; ``register`` carries
#:     no ``protocol`` field);
#: 2 — adds the ``protocol`` handshake on ``register``/``ack`` and the
#:     store-backed warm-start deployment shape;
#: 3 — adds the optional ``stats`` piggyback on ``progress`` and
#:     ``complete`` (worker-side metric snapshots for fleet-wide
#:     aggregation).  Purely additive: v1/v2 workers that never send
#:     ``stats`` remain fully supported.
#: 4 — adds the always-on service surface: ``submit``/``poll``/
#:     ``cancel``/``drain`` from clients, ``accepted``/``rejected``/
#:     ``status`` replies, and the inline ``queries`` map on ``assign``
#:     for service-admitted tasks (``query_index < 0``).  Additive for
#:     workers running preloaded workloads; executing service tasks
#:     requires a v4 worker.
PROTOCOL_VERSION = 4

#: Oldest version the master still accepts.  All v1 messages are valid
#: v2 messages, so pre-handshake workers keep interoperating.
MIN_PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """Malformed or unexpected wire traffic."""


def check_protocol_version(message: dict[str, Any]) -> int:
    """Validate the ``protocol`` field of a ``register`` message.

    Returns the peer's version; raises :class:`ProtocolError` when the
    field is malformed or outside the supported range.  An absent field
    is a version-1 worker, which is always accepted.
    """
    raw = message.get("protocol", MIN_PROTOCOL_VERSION)
    try:
        version = int(raw)
    except (TypeError, ValueError):
        raise ProtocolError(f"malformed protocol version {raw!r}") from None
    if version < MIN_PROTOCOL_VERSION or version > PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version}; this master "
            f"speaks {MIN_PROTOCOL_VERSION}..{PROTOCOL_VERSION}"
        )
    return version


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    """Serialize one message as a JSON line."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError("message exceeds frame limit")
    sock.sendall(payload + b"\n")


def recv_message(reader) -> dict[str, Any] | None:
    """Read one JSON line from a file-like reader; ``None`` on EOF."""
    line = reader.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("frame exceeds limit")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not a typed message")
    return message


def encode_task(task: Task) -> dict[str, Any]:
    return {
        "task_id": task.task_id,
        "query_id": task.query_id,
        "query_length": task.query_length,
        "cells": task.cells,
        "query_index": task.query_index,
    }


def decode_task(data: dict[str, Any]) -> Task:
    try:
        return Task(
            task_id=int(data["task_id"]),
            query_id=str(data["query_id"]),
            query_length=int(data["query_length"]),
            cells=int(data["cells"]),
            query_index=int(data["query_index"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad task payload: {exc}") from exc


def span_fields(message: dict[str, Any]) -> dict[str, str]:
    """Extract the optional span-context fields of one wire message.

    Returns ``{}`` when the peer sent none (pre-span slaves), so
    callers can splat the result into an event-log ``emit`` unchanged.
    """
    return {
        key: str(message[key])
        for key in ("trace", "span", "parent")
        if message.get(key)
    }


def encode_query(query: Sequence) -> dict[str, Any]:
    """Inline query payload for service-admitted tasks (protocol 4)."""
    return {"id": query.id, "residues": query.residues}


def decode_query(data: dict[str, Any]) -> Sequence:
    try:
        return Sequence(id=str(data["id"]), residues=str(data["residues"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad query payload: {exc}") from exc


def encode_hit(hit: SearchHit) -> list[Any]:
    return [hit.subject_id, hit.subject_index, hit.score, hit.subject_length]


def decode_hit(data: list[Any]) -> SearchHit:
    try:
        subject_id, subject_index, score, subject_length = data
        return SearchHit(
            subject_id=str(subject_id),
            subject_index=int(subject_index),
            score=int(score),
            subject_length=int(subject_length),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad hit payload: {exc}") from exc
