"""The slave process: connect, register, execute, notify.

A worker is fully described by a :class:`WorkerConfig` (so it can be
spawned in a separate process): where the master listens, which engine
class to instantiate, and the paths of the *indexed* query/database
files — slaves read sequence data directly from those files, exactly
the role the paper's indexed format plays (Section IV-B), so the wire
carries only task ids and scores.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass

from ..align.gaps import affine_gap
from ..align.scoring import get_matrix
from ..core.engines import ChunkProgress, Engine, InterSequenceEngine, ScanEngine, StripedSSEEngine
from ..core.task import Task, TaskBatch, group_into_batches
from ..faults import FaultInjector, FaultPlan, InjectedCrash
from ..observability import (
    EventLog,
    MetricsRegistry,
    cluster_worker_instruments,
)
from ..sequences.database import SequenceDatabase
from ..sequences.indexed import IndexedReader
from ..sequences.records import Sequence
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_task,
    encode_hit,
    recv_message,
    send_message,
)

__all__ = ["WorkerConfig", "ResilientLink", "run_worker"]

def _gpu_dual(*args, **kwargs) -> Engine:
    return InterSequenceEngine(*args, dual_precision=True, **kwargs)


_ENGINE_CLASSES: dict[str, "type[Engine] | object"] = {
    "gpu": InterSequenceEngine,
    "gpu-dual": _gpu_dual,  # CUDASW++-style capped pass + exact re-run
    "sse": StripedSSEEngine,
    "scan": ScanEngine,
}

#: Idle wait between polls when the master says "wait".
_WAIT_SECONDS = 0.02

#: Pause before retransmitting a dropped must-deliver message.
_RETRANSMIT_SECONDS = 0.005


@dataclass(frozen=True)
class WorkerConfig:
    """Everything needed to run one slave (picklable for spawning).

    The timeout/backoff fields shape the resilient transport: slow
    connects and silent masters fail fast (``connect_timeout`` /
    ``io_timeout`` instead of hanging on the OS default), and a broken
    link is re-established up to ``reconnect_attempts`` times with
    exponential backoff between ``backoff_base`` and ``backoff_max``
    seconds (jittered so a restarted master is not hit by a thundering
    herd of identical retry schedules).
    """

    host: str
    port: int
    pe_id: str
    engine: str  # "gpu" | "sse" | "scan"
    query_path: str
    database_path: str
    matrix: str = "blosum62"
    gap_open: int = 10
    gap_extend: int = 2
    top: int = 10
    chunk_size: int = 16
    #: Fallback coalescing width when the master's ``assign`` reply
    #: carries no ``batch`` field; the reply's value wins otherwise.
    batch: int = 1
    #: Enable the process-wide pack/profile caches in this worker's
    #: engine, so repeated tasks skip database conversion.
    cache: bool = False
    #: Warm-start directory: a ``repro.packstore.v1`` store built by
    #: ``repro db build``.  The engine memory-maps pre-packed database
    #: shards and profiles from it instead of re-packing on start
    #: (implies private engine caches; see ``docs/storage.md``).
    store: str | None = None
    #: Two-stage screening on inter-sequence engines: 8-bit saturating
    #: screen over length-binned packs, exact rescore of survivors.
    #: Silently ignored by engine kinds without a screening path
    #: ("sse"/"scan"), so a mixed fleet can share one config template.
    screen: bool = False
    screen_threshold: int | None = None
    connect_timeout: float = 10.0
    io_timeout: float = 60.0
    reconnect_attempts: int = 8
    backoff_base: float = 0.05
    backoff_max: float = 2.0

    def build_engine(self) -> Engine:
        try:
            cls = _ENGINE_CLASSES[self.engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"known: {sorted(_ENGINE_CLASSES)}"
            ) from None
        kwargs = dict(
            top=self.top,
            chunk_size=self.chunk_size,
            cache=self.cache,
            store=self.store,
        )
        if self.engine in ("gpu", "gpu-dual"):
            kwargs["screen"] = self.screen
            kwargs["screen_threshold"] = self.screen_threshold
        return cls(
            get_matrix(self.matrix),
            affine_gap(self.gap_open, self.gap_extend),
            **kwargs,
        )


class _Link:
    """One persistent connection with request/response semantics.

    ``observe`` is an optional ``(message_type, seconds) -> None`` sink
    fed the worker-observed round-trip time of every call.  Passing
    shared ``cancelled``/``spans`` containers lets
    :class:`ResilientLink` carry task bookkeeping across reconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        observe=None,
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
        cancelled: set[int] | None = None,
        spans: dict[int, dict] | None = None,
        inline_queries: "dict[int, Sequence] | None" = None,
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(io_timeout)
        # The protocol is tiny request/response frames; Nagle only adds
        # latency here.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self.cancelled: set[int] = set() if cancelled is None else cancelled
        #: Span context of each granted task, from the assign reply's
        #: ``spans`` map; echoed back on progress/complete/cancelled.
        self.spans: dict[int, dict] = {} if spans is None else spans
        #: Inline query sequences of service-admitted tasks (protocol
        #: 4 ``queries`` map on assign), keyed by task id.
        self.inline_queries: dict[int, Sequence] = (
            {} if inline_queries is None else inline_queries
        )
        self._observe = observe

    def send_raw(self, payload: bytes) -> None:
        """Ship raw bytes, bypassing framing (fault injection only)."""
        self._sock.sendall(payload)

    def call(self, message: dict) -> dict:
        started = time.perf_counter()
        send_message(self._sock, message)
        reply = recv_message(self._reader)
        if self._observe is not None:
            self._observe(
                str(message.get("type")), time.perf_counter() - started
            )
        if reply is None:
            raise ProtocolError("master closed the connection")
        if reply.get("type") == "error":
            raise ProtocolError(f"master error: {reply.get('message')}")
        self.cancelled.update(int(t) for t in reply.get("cancel", []))
        for task_id, fields in (reply.get("spans") or {}).items():
            if isinstance(fields, dict):
                self.spans[int(task_id)] = {
                    key: str(value)
                    for key, value in fields.items()
                    if key in ("trace", "span", "parent") and value
                }
        return reply

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()


class _StatsPublisher:
    """Throttled metric snapshots piggybacked on outgoing messages.

    Process-mode workers cannot share a registry with the master, so
    the fleet's worker-side series (round-trip histograms, connect
    counters — all labelled by PE) would be invisible to ``/metrics``.
    Instead the worker attaches its *cumulative* ``repro.metrics.v1``
    snapshot to ``progress`` messages (rate-limited, default twice a
    second) and to every ``complete`` (so end-of-task totals land
    promptly).  Cumulative + latest-wins on the master means a lost or
    duplicated piggyback changes nothing.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        min_interval: float = 0.5,
        clock=time.monotonic,
    ):
        self._registry = registry
        self._min_interval = min_interval
        self._clock = clock
        self._last: float | None = None

    def attach(self, message: dict) -> dict:
        mtype = message.get("type")
        if mtype not in ("progress", "complete"):
            return message
        now = self._clock()
        if (
            mtype != "complete"
            and self._last is not None
            and now - self._last < self._min_interval
        ):
            return message
        self._last = now
        out = dict(message)
        out["stats"] = self._registry.snapshot()
        return out


class ResilientLink:
    """A self-healing connection to the master.

    Wraps :class:`_Link` with reconnect-and-retry semantics: when a
    call fails with a socket or protocol error the link is dropped and
    re-established with exponential backoff (deterministically jittered
    per PE), the worker re-registers under a fresh ``attempt`` id — the
    master retires the stale registration and re-queues its tasks — and
    the failed message is re-sent.  Cancellation flags and span
    contexts live here, not in the transient :class:`_Link`, so they
    survive reconnects.

    An optional :class:`FaultInjector` perturbs outgoing traffic for
    chaos tests: partitions stall the worker until the window heals,
    dropped ``complete``/``cancelled`` frames are retransmitted
    (at-least-once — the master dedupes), dropped polls simply yield an
    empty grant, and corrupted frames poison the connection so the
    reconnect path is exercised for real.
    """

    def __init__(
        self,
        config: WorkerConfig,
        observe=None,
        injector: FaultInjector | None = None,
        clock=None,
        on_connect=None,
        stats: _StatsPublisher | None = None,
    ):
        self._config = config
        self._observe = observe
        self._injector = injector
        self._clock = clock or time.perf_counter
        self._on_connect = on_connect
        self._stats = stats
        self.cancelled: set[int] = set()
        self.spans: dict[int, dict] = {}
        self.inline_queries: dict[int, Sequence] = {}
        #: Incarnation counter sent with ``register``; bumped on every
        #: successful (re-)connect so the master can tell a reconnect
        #: from a duplicate.
        self.attempt = 0
        self._jitter = random.Random(f"repro.worker:{config.pe_id}")
        self._link: _Link | None = None

    def connect(self) -> None:
        """(Re-)establish the link and register a fresh incarnation."""
        config = self._config
        delay = config.backoff_base
        for tries in range(config.reconnect_attempts + 1):
            link = None
            try:
                link = _Link(
                    config.host,
                    config.port,
                    observe=self._observe,
                    connect_timeout=config.connect_timeout,
                    io_timeout=config.io_timeout,
                    cancelled=self.cancelled,
                    spans=self.spans,
                    inline_queries=self.inline_queries,
                )
                message: dict = {
                    "type": "register",
                    "pe_id": config.pe_id,
                    "protocol": PROTOCOL_VERSION,
                }
                if self.attempt:
                    message["attempt"] = self.attempt
                link.call(message)
            except (OSError, ProtocolError):
                if link is not None:
                    link.close()
                if tries >= config.reconnect_attempts:
                    raise
                time.sleep(delay * (0.5 + self._jitter.random()))
                delay = min(delay * 2, config.backoff_max)
                continue
            self._link = link
            self.attempt += 1
            if self._on_connect is not None:
                self._on_connect()
            return

    def _drop(self) -> None:
        if self._link is not None:
            self._link.close()
            self._link = None

    def _call_once(self, message: dict) -> dict:
        """One delivery attempt, reconnecting on a broken link."""
        config = self._config
        for tries in range(config.reconnect_attempts + 1):
            if self._link is None:
                self.connect()
            assert self._link is not None
            try:
                return self._link.call(message)
            except (OSError, ProtocolError):
                self._drop()
                if tries >= config.reconnect_attempts:
                    raise
        raise ConnectionError(
            f"{config.pe_id}: master unreachable after "
            f"{config.reconnect_attempts} reconnect attempts"
        )

    def call(self, message: dict) -> dict:
        if self._stats is not None:
            message = self._stats.attach(message)
        mtype = str(message.get("type"))
        injector = self._injector
        if injector is not None:
            pe = self._config.pe_id
            wait = injector.partition_remaining(pe, self._clock())
            if wait > 0:
                time.sleep(wait)
            action = injector.message_action(pe, mtype, now=self._clock())
            if action == "drop":
                if mtype in ("complete", "cancelled"):
                    # Must-deliver message: the frame is lost, the
                    # worker notices the missing ack and retransmits.
                    time.sleep(_RETRANSMIT_SECONDS)
                else:
                    # A lost poll just looks like an empty grant.
                    return {"type": "ack", "wait": True, "cancel": []}
            elif action == "delay":
                time.sleep(injector.delay_seconds)
            elif action == "corrupt":
                # Poison the stream: the master answers with an error
                # and hangs up, so the resend below must reconnect.
                link = self._link
                if link is not None:
                    try:
                        link.send_raw(b"!corrupt-frame!\n")
                    except OSError:
                        pass
            elif action == "duplicate":
                self._call_once(message)  # extra copy; master dedupes
        return self._call_once(message)

    def close(self) -> None:
        self._drop()


def run_worker(
    config: WorkerConfig,
    metrics: MetricsRegistry | None = None,
    events: EventLog | None = None,
    clock=None,
    faults: FaultPlan | FaultInjector | None = None,
) -> int:
    """Slave main loop; returns the number of tasks completed.

    Designed to run inside a separate process
    (``multiprocessing.Process(target=run_worker, args=(config,))``) but
    equally callable from a thread in tests.  Passing a shared
    *metrics* registry (thread deployments only — registries do not
    cross process boundaries) collects the worker-observed round-trip
    times and connection counts under the ``cluster_*`` names.

    *events* (thread deployments only) records worker-side
    ``worker_task_start``/``worker_task_end`` events tagged with the
    span context the master forwarded, timestamped by *clock* (pass the
    server's clock so worker events merge onto the master timeline;
    defaults to seconds since this worker started).

    *faults* subjects this worker to a deterministic
    :class:`~repro.faults.FaultPlan` (or an already-built, possibly
    shared, :class:`~repro.faults.FaultInjector`): planned crashes
    raise :class:`~repro.faults.InjectedCrash` — the worker dies
    silently, exactly like a killed process, and the master's
    heartbeat reaper recovers its tasks.
    """
    engine = config.build_engine()
    matrix = get_matrix(config.matrix)
    # Process-mode workers (no shared registry) piggyback their private
    # registry onto the wire instead, so the master's /metrics stays
    # fleet-complete either way.  Thread-mode workers share *metrics*
    # with the launcher, which merges directly — piggybacking there
    # would double-count.
    registry = metrics if metrics is not None else MetricsRegistry()
    inst = cluster_worker_instruments(registry)
    publisher = _StatsPublisher(registry) if metrics is None else None
    if clock is None:
        t0 = time.perf_counter()
        clock = lambda: time.perf_counter() - t0  # noqa: E731
    injector: FaultInjector | None
    if faults is None:
        injector = None
    elif isinstance(faults, FaultInjector):
        injector = faults
    else:
        injector = FaultInjector(faults, events=events, clock=clock)

    def observe_roundtrip(message_type: str, seconds: float) -> None:
        inst.roundtrip_seconds.labels(
            pe=config.pe_id, type=message_type
        ).observe(seconds)

    completed = 0

    def check_crash() -> None:
        if injector is not None and injector.crash_due(
            config.pe_id, clock(), completed
        ):
            injector.mark_crashed(config.pe_id, clock())
            raise InjectedCrash(config.pe_id)

    def straggle(elapsed: float) -> None:
        if injector is not None:
            pause = injector.straggle_sleep(config.pe_id, clock(), elapsed)
            if pause > 0:
                time.sleep(pause)

    with IndexedReader(config.query_path, alphabet=matrix.alphabet) as queries:
        database = SequenceDatabase.from_indexed(
            config.database_path, alphabet=matrix.alphabet
        )
        link = ResilientLink(
            config,
            observe=observe_roundtrip,
            injector=injector,
            clock=clock,
            on_connect=lambda: inst.connects.labels(pe=config.pe_id).inc(),
            stats=publisher,
        )
        try:
            link.connect()
            while True:
                check_crash()
                reply = link.call({"type": "request", "pe_id": config.pe_id})
                if reply.get("done"):
                    return completed
                if reply.get("wait"):
                    time.sleep(_WAIT_SECONDS)
                    continue
                tasks = [decode_task(t) for t in reply.get("tasks", [])]
                replicas = [
                    decode_task(t) for t in reply.get("replicas", [])
                ]
                # Inline residues of service-admitted tasks (protocol
                # 4): decoded with the engine's alphabet so scoring is
                # identical to an indexed-file fetch.
                for task_id, data in (reply.get("queries") or {}).items():
                    link.inline_queries[int(task_id)] = Sequence(
                        id=str(data["id"]),
                        residues=str(data["residues"]),
                        alphabet=matrix.alphabet,
                    )
                for task in (*tasks, *replicas):
                    # A task released after a reap can be re-granted to
                    # this same worker; a stale cancel flag from its
                    # previous incarnation must not kill the rerun.
                    link.cancelled.discard(task.task_id)
                width = int(reply.get("batch", config.batch) or 1)
                if width > 1 and len(tasks) > 1:
                    for group in group_into_batches(tasks, width):
                        if len(group) == 1:
                            completed += _execute(
                                link, engine, config, queries, database,
                                group.tasks[0], events, clock,
                                check_crash=check_crash, straggle=straggle,
                            )
                        else:
                            completed += _execute_batch(
                                link, engine, config, queries, database,
                                group, events, clock,
                                check_crash=check_crash, straggle=straggle,
                            )
                else:
                    for task in tasks:
                        completed += _execute(
                            link, engine, config, queries, database, task,
                            events, clock,
                            check_crash=check_crash, straggle=straggle,
                        )
                # Replicas always run singly: each races another PE's
                # in-flight copy of the same task.
                for task in replicas:
                    completed += _execute(
                        link, engine, config, queries, database, task,
                        events, clock,
                        check_crash=check_crash, straggle=straggle,
                    )
        finally:
            link.close()


def _resolve_query(
    link: "_Link | ResilientLink", queries: IndexedReader, task: Task
) -> Sequence:
    """The task's query: indexed file, or inline for service tasks."""
    if task.query_index >= 0:
        return queries[task.query_index]
    query = link.inline_queries.get(task.task_id)
    if query is None:
        raise ProtocolError(
            f"task {task.task_id} has no query_index and the master "
            "sent no inline query (protocol 4 required)"
        )
    return query


def _execute(
    link: "_Link | ResilientLink",
    engine: Engine,
    config: WorkerConfig,
    queries: IndexedReader,
    database: SequenceDatabase,
    task: Task,
    events: EventLog | None = None,
    clock=time.perf_counter,
    check_crash=None,
    straggle=None,
) -> int:
    query = _resolve_query(link, queries, task)
    span = link.spans.get(task.task_id, {})
    if events is not None:
        events.emit(
            "worker_task_start", clock(),
            pe=config.pe_id, task=task.task_id, **span,
        )
    started = time.perf_counter()
    last = started

    def progress(chunk: ChunkProgress) -> bool:
        nonlocal last
        if check_crash is not None:
            check_crash()
        if straggle is not None:
            # Dilate the observed chunk time so the master's rate
            # estimator sees the straggling for real.
            straggle(time.perf_counter() - last)
        now = time.perf_counter()
        link.call(
            {
                "type": "progress",
                "pe_id": config.pe_id,
                "cells": chunk.cells,
                "interval": max(now - last, 1e-9),
                **span,
            }
        )
        last = now
        return task.task_id not in link.cancelled

    hits = engine.search(query, database, progress=progress)
    link.inline_queries.pop(task.task_id, None)
    if hits is None:  # cancelled mid-task
        link.cancelled.discard(task.task_id)
        link.spans.pop(task.task_id, None)
        link.call(
            {
                "type": "cancelled",
                "pe_id": config.pe_id,
                "task_id": task.task_id,
                **span,
            }
        )
        if events is not None:
            events.emit(
                "worker_task_end", clock(),
                pe=config.pe_id, task=task.task_id,
                outcome="cancelled", **span,
            )
        return 0
    link.spans.pop(task.task_id, None)
    link.call(
        {
            "type": "complete",
            "pe_id": config.pe_id,
            "task_id": task.task_id,
            "elapsed": max(time.perf_counter() - started, 1e-9),
            "cells": task.cells,
            "hits": [encode_hit(h) for h in hits],
            **span,
        }
    )
    if events is not None:
        events.emit(
            "worker_task_end", clock(),
            pe=config.pe_id, task=task.task_id,
            outcome="complete", **span,
        )
    return 1


def _execute_batch(
    link: "_Link | ResilientLink",
    engine: Engine,
    config: WorkerConfig,
    queries: IndexedReader,
    database: SequenceDatabase,
    group: TaskBatch,
    events: EventLog | None = None,
    clock=time.perf_counter,
    check_crash=None,
    straggle=None,
) -> int:
    """One multi-query sweep over *group*, fanned out per task.

    Every member still produces its own ``progress`` stream and its own
    ``complete``/``cancelled`` message (with that task's span context),
    so the master observes the exact singleton protocol; only the
    engine call is shared.  The sweep's wall-clock time is apportioned
    to members by cell share.  Returns the number completed.
    """
    tasks = group.tasks
    query_records = [_resolve_query(link, queries, t) for t in tasks]
    spans = {t.task_id: link.spans.get(t.task_id, {}) for t in tasks}
    if events is not None:
        for task in tasks:
            events.emit(
                "worker_task_start", clock(),
                pe=config.pe_id, task=task.task_id,
                **spans[task.task_id],
            )
    started = time.perf_counter()
    state = {"last": started}

    def progress(position: int, chunk: ChunkProgress) -> bool:
        if check_crash is not None:
            check_crash()
        if straggle is not None:
            straggle(time.perf_counter() - state["last"])
        now = time.perf_counter()
        task = tasks[position]
        link.call(
            {
                "type": "progress",
                "pe_id": config.pe_id,
                "cells": chunk.cells,
                "interval": max(now - state["last"], 1e-9),
                **spans[task.task_id],
            }
        )
        state["last"] = now
        return task.task_id not in link.cancelled

    def cancelled(position: int) -> bool:
        return tasks[position].task_id in link.cancelled

    hit_lists = engine.search_batch(
        query_records, database, progress=progress, cancelled=cancelled
    )
    total_elapsed = max(time.perf_counter() - started, 1e-9)
    total_cells = group.cells
    done = 0
    for task, hits in zip(tasks, hit_lists):
        span = spans[task.task_id]
        link.spans.pop(task.task_id, None)
        link.inline_queries.pop(task.task_id, None)
        if hits is None:  # cancelled mid-sweep
            link.cancelled.discard(task.task_id)
            link.call(
                {
                    "type": "cancelled",
                    "pe_id": config.pe_id,
                    "task_id": task.task_id,
                    **span,
                }
            )
            if events is not None:
                events.emit(
                    "worker_task_end", clock(),
                    pe=config.pe_id, task=task.task_id,
                    outcome="cancelled", **span,
                )
            continue
        share = task.cells / total_cells if total_cells else 1.0
        link.call(
            {
                "type": "complete",
                "pe_id": config.pe_id,
                "task_id": task.task_id,
                "elapsed": max(total_elapsed * share, 1e-9),
                "cells": task.cells,
                "hits": [encode_hit(h) for h in hits],
                **span,
            }
        )
        if events is not None:
            events.emit(
                "worker_task_end", clock(),
                pe=config.pe_id, task=task.task_id,
                outcome="complete", **span,
            )
        done += 1
    return done
