"""The slave process: connect, register, execute, notify.

A worker is fully described by a :class:`WorkerConfig` (so it can be
spawned in a separate process): where the master listens, which engine
class to instantiate, and the paths of the *indexed* query/database
files — slaves read sequence data directly from those files, exactly
the role the paper's indexed format plays (Section IV-B), so the wire
carries only task ids and scores.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass

from ..align.gaps import affine_gap
from ..align.scoring import get_matrix
from ..core.engines import ChunkProgress, Engine, InterSequenceEngine, ScanEngine, StripedSSEEngine
from ..core.task import Task
from ..observability import (
    EventLog,
    MetricsRegistry,
    cluster_worker_instruments,
)
from ..sequences.database import SequenceDatabase
from ..sequences.indexed import IndexedReader
from .protocol import (
    ProtocolError,
    decode_task,
    encode_hit,
    recv_message,
    send_message,
)

__all__ = ["WorkerConfig", "run_worker"]

def _gpu_dual(*args, **kwargs) -> Engine:
    return InterSequenceEngine(*args, dual_precision=True, **kwargs)


_ENGINE_CLASSES: dict[str, "type[Engine] | object"] = {
    "gpu": InterSequenceEngine,
    "gpu-dual": _gpu_dual,  # CUDASW++-style capped pass + exact re-run
    "sse": StripedSSEEngine,
    "scan": ScanEngine,
}

#: Idle wait between polls when the master says "wait".
_WAIT_SECONDS = 0.02


@dataclass(frozen=True)
class WorkerConfig:
    """Everything needed to run one slave (picklable for spawning)."""

    host: str
    port: int
    pe_id: str
    engine: str  # "gpu" | "sse" | "scan"
    query_path: str
    database_path: str
    matrix: str = "blosum62"
    gap_open: int = 10
    gap_extend: int = 2
    top: int = 10
    chunk_size: int = 16

    def build_engine(self) -> Engine:
        try:
            cls = _ENGINE_CLASSES[self.engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"known: {sorted(_ENGINE_CLASSES)}"
            ) from None
        return cls(
            get_matrix(self.matrix),
            affine_gap(self.gap_open, self.gap_extend),
            top=self.top,
            chunk_size=self.chunk_size,
        )


class _Link:
    """One persistent connection with request/response semantics.

    ``observe`` is an optional ``(message_type, seconds) -> None`` sink
    fed the worker-observed round-trip time of every call.
    """

    def __init__(self, host: str, port: int, observe=None):
        self._sock = socket.create_connection((host, port), timeout=60)
        self._reader = self._sock.makefile("rb")
        self.cancelled: set[int] = set()
        #: Span context of each granted task, from the assign reply's
        #: ``spans`` map; echoed back on progress/complete/cancelled.
        self.spans: dict[int, dict] = {}
        self._observe = observe

    def call(self, message: dict) -> dict:
        started = time.perf_counter()
        send_message(self._sock, message)
        reply = recv_message(self._reader)
        if self._observe is not None:
            self._observe(
                str(message.get("type")), time.perf_counter() - started
            )
        if reply is None:
            raise ProtocolError("master closed the connection")
        if reply.get("type") == "error":
            raise ProtocolError(f"master error: {reply.get('message')}")
        self.cancelled.update(int(t) for t in reply.get("cancel", []))
        for task_id, fields in (reply.get("spans") or {}).items():
            if isinstance(fields, dict):
                self.spans[int(task_id)] = {
                    key: str(value)
                    for key, value in fields.items()
                    if key in ("trace", "span", "parent") and value
                }
        return reply

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()


def run_worker(
    config: WorkerConfig,
    metrics: MetricsRegistry | None = None,
    events: EventLog | None = None,
    clock=None,
) -> int:
    """Slave main loop; returns the number of tasks completed.

    Designed to run inside a separate process
    (``multiprocessing.Process(target=run_worker, args=(config,))``) but
    equally callable from a thread in tests.  Passing a shared
    *metrics* registry (thread deployments only — registries do not
    cross process boundaries) collects the worker-observed round-trip
    times and connection counts under the ``cluster_*`` names.

    *events* (thread deployments only) records worker-side
    ``worker_task_start``/``worker_task_end`` events tagged with the
    span context the master forwarded, timestamped by *clock* (pass the
    server's clock so worker events merge onto the master timeline;
    defaults to ``time.perf_counter``).
    """
    engine = config.build_engine()
    matrix = get_matrix(config.matrix)
    inst = cluster_worker_instruments(
        metrics if metrics is not None else MetricsRegistry()
    )
    if clock is None:
        clock = time.perf_counter

    def observe_roundtrip(message_type: str, seconds: float) -> None:
        inst.roundtrip_seconds.labels(
            pe=config.pe_id, type=message_type
        ).observe(seconds)

    with IndexedReader(config.query_path, alphabet=matrix.alphabet) as queries:
        database = SequenceDatabase.from_indexed(
            config.database_path, alphabet=matrix.alphabet
        )
        link = _Link(config.host, config.port, observe=observe_roundtrip)
        inst.connects.labels(pe=config.pe_id).inc()
        completed = 0
        try:
            link.call({"type": "register", "pe_id": config.pe_id})
            while True:
                reply = link.call({"type": "request", "pe_id": config.pe_id})
                if reply.get("done"):
                    return completed
                if reply.get("wait"):
                    time.sleep(_WAIT_SECONDS)
                    continue
                tasks = [decode_task(t) for t in reply.get("tasks", [])]
                tasks += [decode_task(t) for t in reply.get("replicas", [])]
                for task in tasks:
                    completed += _execute(
                        link, engine, config, queries, database, task,
                        events, clock,
                    )
        finally:
            link.close()


def _execute(
    link: _Link,
    engine: Engine,
    config: WorkerConfig,
    queries: IndexedReader,
    database: SequenceDatabase,
    task: Task,
    events: EventLog | None = None,
    clock=time.perf_counter,
) -> int:
    query = queries[task.query_index]
    span = link.spans.get(task.task_id, {})
    if events is not None:
        events.emit(
            "worker_task_start", clock(),
            pe=config.pe_id, task=task.task_id, **span,
        )
    started = time.perf_counter()
    last = started

    def progress(chunk: ChunkProgress) -> bool:
        nonlocal last
        now = time.perf_counter()
        link.call(
            {
                "type": "progress",
                "pe_id": config.pe_id,
                "cells": chunk.cells,
                "interval": max(now - last, 1e-9),
                **span,
            }
        )
        last = now
        return task.task_id not in link.cancelled

    hits = engine.search(query, database, progress=progress)
    if hits is None:  # cancelled mid-task
        link.cancelled.discard(task.task_id)
        link.spans.pop(task.task_id, None)
        link.call(
            {
                "type": "cancelled",
                "pe_id": config.pe_id,
                "task_id": task.task_id,
                **span,
            }
        )
        if events is not None:
            events.emit(
                "worker_task_end", clock(),
                pe=config.pe_id, task=task.task_id,
                outcome="cancelled", **span,
            )
        return 0
    link.spans.pop(task.task_id, None)
    link.call(
        {
            "type": "complete",
            "pe_id": config.pe_id,
            "task_id": task.task_id,
            "elapsed": max(time.perf_counter() - started, 1e-9),
            "cells": task.cells,
            "hits": [encode_hit(h) for h in hits],
            **span,
        }
    )
    if events is not None:
        events.emit(
            "worker_task_end", clock(),
            pe=config.pe_id, task=task.task_id,
            outcome="complete", **span,
        )
    return 1
