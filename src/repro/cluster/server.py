"""The master as a TCP server.

Wraps :class:`repro.core.master.Master` behind a threaded socket server:
each slave keeps one persistent connection whose handler translates
wire messages into master calls.  Replica cancellations are delivered
by piggybacking on the acknowledgement of the loser's next ``progress``
or ``request`` message — the slave polls the master often (every engine
chunk), so cancellation latency is one chunk, the same granularity the
threaded runtime achieves.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from ..align.api import SearchHit
from ..core.master import Master, TraceEvent
from ..core.policies import AllocationPolicy, PackageWeightedSelfScheduling
from ..core.results import merge_hits
from ..core.task import Task, TaskResult
from ..durability import CheckpointStore, restore_into, workload_fingerprint
from ..observability import (
    EventLog,
    MetricsHTTPServer,
    MetricsRegistry,
    cluster_server_instruments,
    merge_into,
    status_from_snapshot,
)
from ..service.core import ServiceConfig, ServiceCore, TickActions
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    check_protocol_version,
    decode_hit,
    encode_hit,
    encode_task,
    recv_message,
    send_message,
)

__all__ = ["MasterServer"]

#: How often the service maintenance loop finalizes completions,
#: expires deadlines and refills the dispatch window.
_SERVICE_TICK_SECONDS = 0.05


class _Handler(socketserver.StreamRequestHandler):
    """One slave connection."""

    server: "MasterServer"

    def handle(self) -> None:  # noqa: C901 - protocol dispatch
        server = self.server
        server.inst.connections.inc()
        while True:
            try:
                message = recv_message(self.rfile)
            except ProtocolError as exc:
                server.inst.protocol_errors.inc()
                send_message(self.connection, {"type": "error",
                                               "message": str(exc)})
                return
            if message is None:
                return  # slave hung up
            kind = message.get("type")
            started = time.perf_counter()
            try:
                if not self._dispatch(server, message, kind):
                    return
            finally:
                # Master-side service time per message: recv done ->
                # reply written (the in-host half of the round trip).
                label = str(kind)
                server.inst.messages.labels(type=label).inc()
                server.inst.rpc_seconds.labels(type=label).observe(
                    time.perf_counter() - started
                )

    @staticmethod
    def _ensure_registered(server: "MasterServer", pe_id: str) -> None:
        # Caller holds ``server.lock``.  A reaped worker that was only
        # slow (or partitioned), not dead, keeps talking; re-admit it
        # transparently instead of erroring its connection away.
        if not server.master.is_registered(pe_id):
            server.master.register(pe_id, server.clock())
            server.cancel_flags.setdefault(pe_id, set())

    def _dispatch(self, server: "MasterServer", message: dict,
                  kind: object) -> bool:
        """Handle one message; False ends the connection."""
        if kind == "register":
            pe_id = str(message["pe_id"])
            attempt = int(message.get("attempt", 0))
            try:
                check_protocol_version(message)
            except ProtocolError as exc:
                # A worker from the future: refuse it at the handshake
                # instead of mis-parsing its frames mid-run.
                server.inst.protocol_errors.inc()
                send_message(
                    self.connection,
                    {"type": "error", "message": str(exc)},
                )
                return False
            with server.lock:
                if server.master.is_registered(pe_id):
                    # A reconnecting worker's fresh incarnation: retire
                    # the stale registration so its queued tasks go
                    # back to READY before the new one starts pulling.
                    server.master.deregister(
                        pe_id, server.clock(), reason="reconnect"
                    )
                server.master.register(
                    pe_id, server.clock(), attempt=attempt
                )
                server.cancel_flags[pe_id] = set()
            send_message(
                self.connection,
                {
                    "type": "ack",
                    "cancel": [],
                    # Echo the master's own version so a newer worker
                    # can tell what it is talking to.
                    "protocol": PROTOCOL_VERSION,
                },
            )
        elif kind == "request":
            pe_id = str(message["pe_id"])
            with server.lock:
                self._ensure_registered(server, pe_id)
                # Refill the dispatch window first so an idle worker's
                # poll can pick up freshly admitted work immediately.
                server._service_tick_locked()
                assignment = server.master.on_request(
                    pe_id, server.clock()
                )
                cancel = sorted(server.cancel_flags.get(pe_id, ()))
                server.cancel_flags.get(pe_id, set()).clear()
                # Span contexts of the granted executions, forwarded so
                # worker-side events join the same causal trace.
                spans = {}
                inline = {}
                for t in (*assignment.tasks, *assignment.replicas):
                    context = server.master.execution_span(
                        pe_id, t.task_id
                    )
                    if context is not None:
                        spans[str(t.task_id)] = context.as_fields()
                    if t.query_index < 0:
                        # Service-admitted task: no indexed file holds
                        # its query, so the residues travel inline
                        # (protocol 4).
                        payload = server.inline_queries.get(t.task_id)
                        if payload is not None:
                            inline[str(t.task_id)] = payload
            reply = {
                "type": "assign",
                "tasks": [encode_task(t) for t in assignment.tasks],
                "replicas": [
                    encode_task(t) for t in assignment.replicas
                ],
                "done": assignment.done,
                "wait": assignment.empty,
                "cancel": cancel,
                "spans": spans,
                # Master-selected coalescing width: workers group
                # granted tasks into multi-query sweeps up to this
                # size (1 = execute singly).
                "batch": server.master.batch,
            }
            if inline:
                reply["queries"] = inline
            send_message(self.connection, reply)
        elif kind == "progress":
            pe_id = str(message["pe_id"])
            server.ingest_worker_stats(pe_id, message.get("stats"))
            with server.lock:
                self._ensure_registered(server, pe_id)
                server.master.on_progress(
                    pe_id,
                    server.clock(),
                    float(message["cells"]),
                    float(message["interval"]),
                )
                cancel = sorted(server.cancel_flags.get(pe_id, ()))
                server.cancel_flags.get(pe_id, set()).clear()
            send_message(
                self.connection, {"type": "ack", "cancel": cancel}
            )
        elif kind == "complete":
            pe_id = str(message["pe_id"])
            server.ingest_worker_stats(pe_id, message.get("stats"))
            result = TaskResult(
                task_id=int(message["task_id"]),
                pe_id=pe_id,
                elapsed=float(message["elapsed"]),
                cells=int(message["cells"]),
                payload=tuple(
                    decode_hit(h) for h in message.get("hits", [])
                ),
            )
            with server.lock:
                self._ensure_registered(server, pe_id)
                losers = server.master.on_complete(
                    pe_id, result, server.clock()
                )
                for loser in losers:
                    server.cancel_flags.setdefault(loser, set()).add(
                        result.task_id
                    )
                # Finalize the service request this completion may have
                # answered (and refill the window) without waiting for
                # the next maintenance tick.
                server._service_tick_locked()
                cancel = sorted(server.cancel_flags.get(pe_id, ()))
                server.cancel_flags.get(pe_id, set()).clear()
            send_message(
                self.connection, {"type": "ack", "cancel": cancel}
            )
        elif kind == "cancelled":
            pe_id = str(message["pe_id"])
            with server.lock:
                self._ensure_registered(server, pe_id)
                server.master.on_cancelled(
                    pe_id, int(message["task_id"]), server.clock()
                )
            send_message(self.connection, {"type": "ack", "cancel": []})
        elif kind in ("submit", "poll", "cancel", "drain"):
            if server.service is None:
                send_message(
                    self.connection,
                    {
                        "type": "error",
                        "message": "this master does not run a service "
                        "(start it with service=)",
                    },
                )
                return True
            return self._dispatch_service(server, message, kind)
        else:
            server.inst.protocol_errors.inc()
            send_message(
                self.connection,
                {"type": "error", "message": f"unknown type {kind!r}"},
            )
            return False
        return True

    def _dispatch_service(self, server: "MasterServer", message: dict,
                          kind: str) -> bool:
        """Client surface of the always-on service (protocol 4)."""
        service = server.service
        assert service is not None
        if kind == "submit":
            query = message.get("query")
            if (
                not isinstance(query, dict)
                or not query.get("id")
                or not query.get("residues")
            ):
                server.inst.protocol_errors.inc()
                send_message(
                    self.connection,
                    {"type": "error",
                     "message": "submit needs query{id, residues}"},
                )
                return True
            residues = str(query["residues"])
            deadline = message.get("deadline")
            request_id = message.get("request_id")
            payload = {"id": str(query["id"]), "residues": residues}
            with server.lock:
                now = server.clock()
                outcome = service.submit(
                    tenant=str(message.get("tenant", "default")),
                    query_id=str(query["id"]),
                    query_length=len(residues),
                    cells=len(residues) * server.database_residues,
                    now=now,
                    deadline=(
                        None if deadline is None else now + float(deadline)
                    ),
                    request_id=(
                        None if request_id is None else str(request_id)
                    ),
                    query=payload,
                )
                if outcome.accepted:
                    request = service.requests[outcome.request_id]
                    if request.state in ("queued", "running"):
                        server.inline_queries[request.task.task_id] = (
                            payload
                        )
            reply = outcome.to_dict()
            reply["type"] = "accepted" if outcome.accepted else "rejected"
            send_message(self.connection, reply)
        elif kind == "poll":
            request_id = str(message.get("request_id", ""))
            with server.lock:
                request = service.requests.get(request_id)
                if request is None:
                    send_message(
                        self.connection,
                        {"type": "error",
                         "message": f"unknown request {request_id!r}"},
                    )
                    return True
                reply = request.to_dict()
                if request.state == "done":
                    hits = merge_hits([request.hits], top=server.top)
                    reply["hits"] = [encode_hit(h) for h in hits]
                else:
                    reply["hits"] = None
            reply["type"] = "status"
            send_message(self.connection, reply)
        elif kind == "cancel":
            request_id = str(message.get("request_id", ""))
            with server.lock:
                if request_id not in service.requests:
                    send_message(
                        self.connection,
                        {"type": "error",
                         "message": f"unknown request {request_id!r}"},
                    )
                    return True
                actions = service.cancel(request_id, server.clock())
                server._apply_service_actions(actions)
                reply = service.requests[request_id].to_dict()
            reply["type"] = "status"
            reply["hits"] = None
            send_message(self.connection, reply)
        else:  # drain
            with server.lock:
                outstanding = service.drain(server.clock())
            send_message(
                self.connection,
                {
                    "type": "status",
                    "state": "draining",
                    "outstanding": outstanding,
                },
            )
        return True


class MasterServer(socketserver.ThreadingTCPServer):
    """Threaded TCP master bound to ``(host, port)``.

    ``port=0`` picks a free port (see :attr:`address`).  Run with
    :meth:`start` (background thread) and stop with :meth:`shutdown`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        tasks: list[Task],
        policy: AllocationPolicy | None = None,
        adjustment: bool = True,
        omega: int = 8,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float | None = None,
        master: Master | None = None,
        checkpoint: "str | CheckpointStore | None" = None,
        batch: int = 1,
        store: "str | None" = None,
        http_port: int | None = None,
        http_host: str = "127.0.0.1",
        service: "ServiceConfig | ServiceCore | bool | None" = None,
        database_residues: int | None = None,
        top: int = 10,
    ):
        #: Warm-start pack store the fleet's workers mmap from.  The
        #: master never reads packs itself; verifying the store (before
        #: even binding the port) fails the deployment up front instead
        #: of letting a worker trip over a corrupt shard mid-run.
        self.pack_store = None
        if store is not None:
            from ..store import PackStore

            self.pack_store = (
                store if isinstance(store, PackStore) else PackStore(store)
            )
            self.pack_store.verify()
        super().__init__((host, port), _Handler)
        if master is not None and checkpoint is not None:
            raise ValueError(
                "pass either master= (adopt live state) or checkpoint= "
                "(recover from disk), not both"
            )
        self._store: CheckpointStore | None = None
        if checkpoint is not None:
            # Master-restart-from-disk: open (or resume) the journal and
            # restore every durable winning result before any worker
            # connects.  A server killed mid-run and restarted with the
            # same checkpoint directory keeps only the remaining tasks.
            store = (
                checkpoint
                if isinstance(checkpoint, CheckpointStore)
                else CheckpointStore(checkpoint)
            )
            recovered = store.open(workload_fingerprint(list(tasks)))
            self._store = store
            self._recovered = recovered
            self.metrics = MetricsRegistry()
            self.events = EventLog()
            self.master = Master(
                list(tasks),
                policy=policy or PackageWeightedSelfScheduling(),
                adjustment=adjustment,
                omega=omega,
                metrics=self.metrics,
                events=self.events,
                journal=store,
                batch=batch,
            )
            if not recovered.empty:
                restore_into(self.master, recovered, now=0.0)
        elif master is not None:
            # Adopt an existing master (and its metrics/event history):
            # the master-restart story — a new server process picks up
            # the workload where the crashed one left off, and
            # reconnecting workers resume against the same task pool.
            self.master = master
            self.metrics = master.metrics
            self.events = master.events
        else:
            self.metrics = MetricsRegistry()
            self.events = EventLog()
            self.master = Master(
                list(tasks),
                policy=policy or PackageWeightedSelfScheduling(),
                adjustment=adjustment,
                omega=omega,
                metrics=self.metrics,
                events=self.events,
                batch=batch,
            )
        self.inst = cluster_server_instruments(self.metrics)
        self.lock = threading.Lock()
        self.cancel_flags: dict[str, set[int]] = {}
        #: Always-on service front door (protocol 4).  ``service=True``
        #: uses default :class:`ServiceConfig`; a config instance
        #: customizes admission policy.  Composes with ``checkpoint=``:
        #: the admission lifecycle journals into the sibling service
        #: journal, and a server restarted on the same directory
        #: cold-recovers every admitted request from disk.
        self.service: ServiceCore | None = None
        #: Residues of every service-admitted query, keyed by task id,
        #: forwarded inline on ``assign`` (workers cannot seek them in
        #: any indexed file).  Entries are dropped as requests retire.
        self.inline_queries: dict[int, dict] = {}
        #: Ranked-hit cutoff for service ``poll`` replies — matches the
        #: one-shot search's ``top`` so results stay byte-identical.
        self.top = top
        #: Database residue count used to cost admitted requests
        #: (query_length x this).  Inferred from the preloaded tasks
        #: when possible.
        if database_residues is None and tasks:
            first = tasks[0]
            if first.query_length > 0:
                database_residues = first.cells // first.query_length
        self.database_residues = int(database_residues or 0)
        if service:
            if self.database_residues <= 0:
                raise ValueError(
                    "service mode needs database_residues= (no preloaded "
                    "tasks to infer the database size from)"
                )
            if isinstance(service, ServiceCore):
                # Master-restart story, service flavour: adopt the
                # crashed server's core (with every queued/in-flight
                # request) alongside its master.  Copy the old server's
                # ``inline_queries`` too, or reassigned service tasks
                # will be undeliverable.
                if service.master is not self.master:
                    raise ValueError(
                        "adopted ServiceCore must wrap the adopted master"
                    )
                self.service = service
            else:
                config = (
                    service if isinstance(service, ServiceConfig) else None
                )
                if self._store is not None:
                    # Cold restart from the journal pair: re-admit every
                    # unfinished request and re-register its inline
                    # query payload so reconnecting workers can execute
                    # it.  Finished requests readopt their journaled
                    # hits byte-for-byte.
                    def _recover_query(rec: dict) -> int:
                        payload = rec.get("query")
                        if payload is not None:
                            self.inline_queries[int(rec["task"])] = {
                                "id": str(payload["id"]),
                                "residues": str(payload["residues"]),
                            }
                        return -1

                    self.service = ServiceCore.recover(
                        self.master,
                        self._store,
                        config,
                        now=0.0,
                        results={
                            r.task_id: r
                            for r in self._recovered.results()
                        },
                        query_index_of=_recover_query,
                        wall_now=time.time(),
                    )
                else:
                    self.service = ServiceCore(self.master, config)
        #: Silent-slave failure detection: workers quiet for longer than
        #: this many seconds are deregistered and their tasks re-queued.
        #: ``None`` disables reaping.
        self.heartbeat_timeout = heartbeat_timeout
        self._started = time.perf_counter()
        self._thread: threading.Thread | None = None
        self._reaper: threading.Thread | None = None
        self._service_ticker: threading.Thread | None = None
        self._stopping = threading.Event()
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        #: Latest cumulative metric snapshot piggybacked by each worker
        #: (protocol v3 ``stats`` field).  Keyed by PE; merged into
        #: :meth:`metrics_snapshot` on read, so re-sends are idempotent
        #: and a dead worker's last contribution survives it.
        self.worker_stats: dict[str, dict] = {}
        #: Optional live endpoints (``/metrics``, ``/healthz``,
        #: ``/statusz``); started alongside :meth:`start` when
        #: ``http_port`` is not ``None`` (0 = ephemeral port).
        self.httpd: MetricsHTTPServer | None = None
        if http_port is not None:
            self.httpd = MetricsHTTPServer(
                self.metrics_snapshot,
                status_fn=self.status,
                health_fn=lambda: not self._stopping.is_set(),
                host=http_host,
                port=http_port,
            )

    # ------------------------------------------------------------------
    def clock(self) -> float:
        return time.perf_counter() - self._started

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Serve in a daemon thread until :meth:`shutdown`."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="master-server", daemon=True
        )
        self._thread.start()
        if self.httpd is not None:
            self.httpd.start()
        if self.heartbeat_timeout is not None:
            self._reaper = threading.Thread(
                target=self._reap_loop, name="master-reaper", daemon=True
            )
            self._reaper.start()
        if self.service is not None:
            self._service_ticker = threading.Thread(
                target=self._service_loop, name="service-ticker",
                daemon=True,
            )
            self._service_ticker.start()

    def _reap_loop(self) -> None:
        assert self.heartbeat_timeout is not None
        poll = max(self.heartbeat_timeout / 4, 0.01)
        while not self._stopping.wait(poll):
            with self.lock:
                if self.master.finished:
                    return
                if self.master.num_pes:
                    self.master.reap_silent(
                        self.clock(), self.heartbeat_timeout
                    )

    def _service_loop(self) -> None:
        """Maintenance ticks: expiry, refill, drain detection.

        The per-message ticks in the handler keep latency low; this
        loop guarantees progress when no traffic arrives (e.g. every
        worker busy while a queued request's deadline passes).
        """
        while not self._stopping.wait(_SERVICE_TICK_SECONDS):
            with self.lock:
                self._service_tick_locked()
                if self.service is not None and self.service.drained:
                    return

    def _service_tick_locked(self) -> None:
        """Caller holds ``self.lock``."""
        if self.service is None:
            return
        actions = self.service.tick(self.clock())
        self._apply_service_actions(actions)

    def _apply_service_actions(self, actions: TickActions) -> None:
        """Caller holds ``self.lock``."""
        for pe_id, task_id in actions.cancels:
            self.cancel_flags.setdefault(pe_id, set()).add(task_id)
        for task_id in actions.retired:
            self.inline_queries.pop(task_id, None)

    # Track live slave connections so ``stop`` can sever them: daemon
    # handler threads otherwise keep serving a "stopped" master, which
    # would let a simulated master crash go unnoticed by its workers.
    def process_request(self, request, client_address) -> None:
        with self._conn_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._conn_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def stop(self) -> None:
        self._stopping.set()
        if self.httpd is not None:
            self.httpd.stop()
        self.shutdown()
        self.server_close()
        with self._conn_lock:
            lingering = list(self._connections)
            self._connections.clear()
        for conn in lingering:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._reaper is not None:
            self._reaper.join(timeout=5)
        if self._service_ticker is not None:
            self._service_ticker.join(timeout=5)
        if self._store is not None:
            self._store.close()
            self._store = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        with self.lock:
            return self.master.finished

    def wait_finished(self, timeout: float = 120.0, poll: float = 0.01) -> None:
        """Block until every task is finished (or raise on timeout).

        The :class:`TimeoutError` carries a diagnostic snapshot —
        outstanding task ids, each registered PE's queue depth and the
        age of its last contact — so a hung run says *which* worker
        stalled instead of just "did not finish".
        """
        deadline = time.perf_counter() + timeout
        while not self.finished:
            if time.perf_counter() > deadline:
                raise TimeoutError(self._timeout_diagnostics(timeout))
            time.sleep(poll)

    def _timeout_diagnostics(self, timeout: float) -> str:
        with self.lock:
            now = self.clock()
            outstanding = self.master.pool.unfinished_ids()
            pes = [
                f"{pe_id}: queue={len(self.master.pending_of(pe_id))} "
                f"last_contact={now - self.master.last_contact(pe_id):.1f}s ago"
                for pe_id in self.master.registered_pes()
            ]
        shown = ", ".join(str(t) for t in outstanding[:20])
        if len(outstanding) > 20:
            shown += ", ..."
        detail = "; ".join(pes) if pes else "no PEs registered"
        return (
            f"workload did not finish within {timeout:.1f}s: "
            f"{len(outstanding)} outstanding task(s) [{shown}]; {detail}"
        )

    # ------------------------------------------------------------------
    # Service lifecycle (drain RPC / SIGTERM both land here)
    # ------------------------------------------------------------------
    def drain(self) -> int:
        """Stop admission; returns the outstanding request count."""
        if self.service is None:
            raise RuntimeError("this master does not run a service")
        with self.lock:
            outstanding = self.service.drain(self.clock())
            self._service_tick_locked()
        return outstanding

    def wait_drained(self, timeout: float = 120.0, poll: float = 0.01) -> None:
        """Block until a drain completed and the workload finished."""
        if self.service is None:
            raise RuntimeError("this master does not run a service")
        deadline = time.perf_counter() + timeout
        while True:
            with self.lock:
                if self.service.drained and self.master.finished:
                    return
            if time.perf_counter() > deadline:
                raise TimeoutError(self._timeout_diagnostics(timeout))
            time.sleep(poll)

    def final_record(self) -> dict:
        """The service's exit summary (emit before process exit)."""
        if self.service is None:
            raise RuntimeError("this master does not run a service")
        with self.lock:
            return self.service.final_record(self.clock())

    def results(self) -> dict[str, tuple[SearchHit, ...]]:
        """Merged per-query hits (requires :attr:`finished`)."""
        with self.lock:
            merged = self.master.merged_results()
            out: dict[str, tuple[SearchHit, ...]] = {}
            for result in merged:
                task = self.master.pool.task(result.task_id)
                out[task.query_id] = result.payload  # type: ignore[assignment]
            return out

    def trace(self) -> list[TraceEvent]:
        with self.lock:
            return list(self.master.trace)

    # ------------------------------------------------------------------
    # Fleet telemetry
    # ------------------------------------------------------------------
    def ingest_worker_stats(self, pe_id: str, stats) -> None:
        """Store a worker's piggybacked metric snapshot (latest wins).

        Snapshots are *cumulative*, so keeping only the newest per PE —
        rather than adding each arrival — makes re-delivery (retries,
        duplicated frames) harmless.  Anything that does not look like
        a ``repro.metrics.v1`` dict is dropped: stats must never be
        able to take down the control protocol.
        """
        if not isinstance(stats, dict):
            return
        if stats.get("schema") != "repro.metrics.v1":
            return
        with self.lock:
            self.worker_stats[str(pe_id)] = stats

    def metrics_snapshot(self) -> dict:
        """Fleet-wide metrics as a ``repro.metrics.v1`` dict.

        Master + transport metrics, plus the latest snapshot each
        worker piggybacked on its heartbeats (per-PE labelled series
        survive the merge unchanged).  A malformed worker snapshot is
        skipped, never fatal — ``/metrics`` must answer even when one
        worker misbehaves.
        """
        with self.lock:
            base = self.metrics.snapshot()
            fleet = list(self.worker_stats.values())
        if not fleet:
            return base
        merged = MetricsRegistry.from_snapshot(base)
        for stats in fleet:
            try:
                merge_into(merged, stats)
            except (KeyError, TypeError, ValueError):
                continue
        return merged.snapshot()

    def status(self) -> dict:
        """Operator summary for ``/statusz`` (``repro.status.v1``)."""
        status = status_from_snapshot(self.metrics_snapshot())
        with self.lock:
            now = self.clock()
            status["uptime_seconds"] = now
            status["finished"] = self.master.finished
            status["outstanding_tasks"] = len(
                self.master.pool.unfinished_ids()
            )
            status["workers"] = {
                pe_id: {
                    "queue": len(self.master.pending_of(pe_id)),
                    "last_contact_seconds_ago": (
                        now - self.master.last_contact(pe_id)
                    ),
                }
                for pe_id in self.master.registered_pes()
            }
        return status
