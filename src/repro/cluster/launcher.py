"""Launch a whole local cluster: master server + worker processes.

The highest-level entry point of the distributed runtime: given
query/database files and a worker roster, it converts the inputs to the
indexed format (the master's *acquire sequences / convert format* step
of Fig. 4), starts the TCP master, spawns one OS process per slave,
waits for the merge and returns the results.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field

from ..align.api import SearchHit
from ..core.policies import AllocationPolicy
from ..core.runtime import build_tasks
from ..core.master import TraceEvent
from ..faults import FaultPlan, InjectedCrash
from ..observability import (
    EventLog,
    MetricsRegistry,
    TelemetrySampler,
    TelemetryWriter,
    merge_snapshots,
)
from ..sequences.database import SequenceDatabase
from ..sequences.fasta import read_fasta
from ..sequences.indexed import write_indexed
from ..sequences.records import Sequence
from .server import MasterServer
from .worker import WorkerConfig, run_worker

__all__ = ["ClusterReport", "DEFAULT_HEARTBEAT_TIMEOUT", "run_cluster"]

#: Default silence (seconds) before the master reaps a worker — about
#: 10x a worker's progress-notification cadence, so transient stalls
#: survive but a dead process is recovered within seconds.  Pass
#: ``heartbeat_timeout=0`` to opt out of reaping entirely.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0


def _worker_main(
    config: WorkerConfig,
    metrics: MetricsRegistry | None = None,
    events: EventLog | None = None,
    clock=None,
    faults: FaultPlan | None = None,
) -> int:
    """Process/thread entry point: a planned crash is a silent exit."""
    try:
        return run_worker(
            config, metrics=metrics, events=events, clock=clock,
            faults=faults,
        )
    except InjectedCrash:
        return 0


@dataclass
class ClusterReport:
    """Outcome of one distributed run."""

    makespan: float
    total_cells: int
    results: dict[str, tuple[SearchHit, ...]]
    trace: list[TraceEvent] = field(default_factory=list)
    #: Merged metrics snapshot: master + transport (+ worker-side
    #: round-trips when workers ran as threads).
    metrics: dict = field(default_factory=dict)
    #: The master's unified structured event log.
    events: EventLog = field(default_factory=EventLog)

    @property
    def gcups(self) -> float:
        return self.total_cells / self.makespan / 1e9 if self.makespan else 0.0


def _materialize_indexed(
    records: list[Sequence], directory: str, name: str
) -> str:
    path = os.path.join(directory, name)
    write_indexed(records, path)
    return path


def run_cluster(
    queries: list[Sequence] | str,
    database: SequenceDatabase | str,
    workers: dict[str, str],
    policy: AllocationPolicy | None = None,
    adjustment: bool = True,
    top: int = 10,
    chunk_size: int = 16,
    matrix: str = "blosum62",
    gap_open: int = 10,
    gap_extend: int = 2,
    timeout: float = 300.0,
    use_processes: bool = True,
    heartbeat_timeout: float | None = None,
    faults: FaultPlan | None = None,
    checkpoint_dir: str | None = None,
    batch: int = 1,
    cache: bool = False,
    store_dir: str | None = None,
    screen: bool = False,
    screen_threshold: int | None = None,
    http_port: int | None = None,
    telemetry_path: str | None = None,
    telemetry_interval: float = 1.0,
) -> ClusterReport:
    """Run a workload on a freshly spawned local cluster.

    Parameters
    ----------
    queries, database:
        In-memory records/database, or paths to FASTA files.
    workers:
        Maps PE ids to engine kinds, e.g. ``{"gpu0": "gpu",
        "sse0": "sse"}``.
    use_processes:
        Spawn real OS processes (the paper's deployment shape).  Set to
        ``False`` to run workers in threads — handy on machines where
        process spawning is restricted.
    heartbeat_timeout:
        Silent-worker reaping on the master: seconds of silence before
        a worker is deregistered and its tasks re-queued.  Defaults to
        :data:`DEFAULT_HEARTBEAT_TIMEOUT`; pass ``0`` to disable
        reaping (a crashed worker then hangs the run until *timeout*).
    faults:
        Optional deterministic :class:`~repro.faults.FaultPlan` every
        worker injects against (crashes, stragglers, message chaos).
    checkpoint_dir:
        Journal the master's state under this directory.  A directory
        left behind by a killed run is recovered before workers spawn,
        so the restarted cluster executes only the remaining tasks.
    batch:
        Coalesce up to this many compatible queries per assignment into
        one multi-query engine sweep (1 = the paper's per-task shape).
        Results are bit-identical either way.
    cache:
        Enable each worker's process-wide pack/profile caches so
        repeated tasks skip database conversion.
    screen, screen_threshold:
        Two-stage screening on the fleet's inter-sequence workers: an
        8-bit saturating screen over length-binned packs followed by
        exact rescoring of saturated/above-threshold lanes.  Final
        hits stay bit-identical to a full exact sweep; engine kinds
        without a screening path ("sse"/"scan") ignore the flags.
    store_dir:
        Persistent ``repro.packstore.v1`` directory: the launcher
        populates it with the workload's lane packs and query profiles
        (idempotent — a directory left by an earlier run is reused
        as-is), the master verifies it before accepting workers, and
        every worker memory-maps its shards instead of re-packing on
        start.  This is the warm-start path for restarted clusters.
    http_port:
        Serve live ``/metrics`` (OpenMetrics), ``/healthz`` and
        ``/statusz`` endpoints from the master for the duration of the
        run (0 = pick a free port; ``None`` = no endpoint).
    telemetry_path:
        Append a ``repro.telemetry.v1`` JSONL stream of fleet-wide
        interval deltas, sampled every *telemetry_interval* seconds.
    """
    if isinstance(queries, str):
        queries = read_fasta(queries)
    if isinstance(database, str):
        database = SequenceDatabase.from_fasta(database)
    if not workers:
        raise ValueError("at least one worker is required")
    if heartbeat_timeout is None:
        heartbeat_timeout = DEFAULT_HEARTBEAT_TIMEOUT
    # 0 (or negative) = reaping disabled = server's ``None``.
    server_heartbeat = heartbeat_timeout if heartbeat_timeout > 0 else None

    if store_dir is not None:
        # Populate the warm-start store up front (content addressing
        # makes this a no-op when a previous run already built it) so
        # the workers below find their shards on first request.
        from ..align.scoring import get_matrix
        from ..align.screening import DEFAULT_SCREEN_LANES
        from ..store import build_store

        build_store(
            store_dir, database, get_matrix(matrix), queries=list(queries),
            binned_lanes=(DEFAULT_SCREEN_LANES,) if screen else (),
        )

    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        query_path = _materialize_indexed(list(queries), tmp, "queries.seqx")
        db_path = _materialize_indexed(list(database), tmp, "database.seqx")
        tasks = build_tasks(list(queries), database)
        server = MasterServer(
            tasks,
            policy=policy,
            adjustment=adjustment,
            heartbeat_timeout=server_heartbeat,
            checkpoint=checkpoint_dir,
            batch=batch,
            store=store_dir,
            http_port=http_port,
        )
        server.start()
        sampler: TelemetrySampler | None = None
        if telemetry_path is not None:
            sampler = TelemetrySampler(
                TelemetryWriter(
                    telemetry_path,
                    server.metrics_snapshot,
                    server.clock,
                    interval=telemetry_interval,
                    environment="cluster",
                )
            ).start()
        host, port = server.address
        started = time.perf_counter()
        procs: list = []
        # Worker-side metrics/events live in the worker's process; only
        # the thread deployment can share them with the launcher.  The
        # worker event log runs on the *server's* clock so it merges
        # cleanly onto the master timeline.
        worker_metrics = None if use_processes else MetricsRegistry()
        worker_events = None if use_processes else EventLog()
        try:
            for pe_id, engine in workers.items():
                config = WorkerConfig(
                    host=host,
                    port=port,
                    pe_id=pe_id,
                    engine=engine,
                    query_path=query_path,
                    database_path=db_path,
                    matrix=matrix,
                    gap_open=gap_open,
                    gap_extend=gap_extend,
                    top=top,
                    chunk_size=chunk_size,
                    batch=batch,
                    cache=cache,
                    store=store_dir,
                    screen=screen,
                    screen_threshold=screen_threshold,
                )
                if use_processes:
                    proc = multiprocessing.Process(
                        target=_worker_main,
                        args=(config, None, None, None, faults),
                        daemon=True,
                    )
                else:
                    import threading

                    proc = threading.Thread(
                        target=_worker_main,
                        args=(config, worker_metrics, worker_events,
                              server.clock, faults),
                        daemon=True,
                    )
                proc.start()
                procs.append(proc)
            server.wait_finished(timeout=timeout)
            makespan = time.perf_counter() - started
            for proc in procs:
                proc.join(timeout=30)
            results = server.results()
            trace = server.trace()
            snapshots = [server.metrics_snapshot()]
            if worker_metrics is not None:
                snapshots.append(worker_metrics.snapshot())
            metrics = merge_snapshots(*snapshots)
            events = server.events
            if worker_events is not None and len(worker_events):
                events = EventLog.merge(server.events, worker_events)
        finally:
            if sampler is not None:
                # Final record = the fleet snapshot at close (the
                # cluster has no finalize step to wait for).
                sampler.close()
            for proc in procs:
                if use_processes and proc.is_alive():
                    proc.terminate()
            server.stop()
    return ClusterReport(
        makespan=makespan,
        total_cells=sum(t.cells for t in tasks),
        results=results,
        trace=trace,
        metrics=metrics,
        events=events,
    )
