"""Gap penalty models.

The SW recurrence of the paper (Eq. 1) charges a flat penalty ``g`` per
gap column (*linear* model).  Section II-A-3 recalls Gotoh's *affine*
model — a higher penalty for opening a gap run and a lower one for
extending it — which every production engine (Farrar, CUDASW++, SWIPE)
uses.  Both models are expressed here as a single dataclass so kernels
can branch once on :attr:`GapModel.is_linear`.

Penalties are stored as **non-negative costs**; kernels subtract them.
This avoids the classic sign bug where an API accepts ``-2`` in one
place and ``2`` in another.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GapModel", "linear_gap", "affine_gap", "DEFAULT_GAPS"]


@dataclass(frozen=True)
class GapModel:
    """Affine gap penalties (linear is the special case extend == open).

    A gap run of length ``k >= 1`` costs ``open + (k - 1) * extend``.
    Note the convention: ``open`` is the cost of the *first* gap residue,
    not an extra surcharge on top of it (the SSEARCH/Farrar convention,
    where ``-10/-2`` means the first gap costs 10 and each further gap 2).
    """

    open: int
    extend: int

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties are non-negative costs")
        if self.extend > self.open:
            raise ValueError("gap extend cost cannot exceed gap open cost")

    @property
    def is_linear(self) -> bool:
        """True when every gap residue costs the same."""
        return self.open == self.extend

    def cost(self, length: int) -> int:
        """Total cost of a gap run of *length* residues."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0
        return self.open + (length - 1) * self.extend

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_linear:
            return f"linear(g={self.open})"
        return f"affine(open={self.open}, extend={self.extend})"


def linear_gap(g: int) -> GapModel:
    """The paper's Eq. 1 model: every gap column costs *g*."""
    return GapModel(open=g, extend=g)


def affine_gap(open_cost: int, extend_cost: int) -> GapModel:
    """Gotoh's model; see :class:`GapModel` for the cost convention."""
    return GapModel(open=open_cost, extend=extend_cost)


#: The protein-search default used throughout the benchmarks
#: (BLOSUM62 with 10/2, the CUDASW++ 2.0 default parameters).
DEFAULT_GAPS = affine_gap(10, 2)
