"""Cell-count and GCUPS accounting.

Every result table in the paper is reported in seconds *and* GCUPS —
Billions of (DP-matrix) Cell Updates Per Second.  The cell count of a
comparison is exact and platform-independent (``len(query) x total
database residues``), which is what makes GCUPS the standard figure of
merit for SW engines; these helpers keep that arithmetic in one place.
"""

from __future__ import annotations

from typing import Iterable

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence

__all__ = ["pair_cells", "task_cells", "workload_cells", "gcups"]


def pair_cells(query: Sequence | int, subject: Sequence | int) -> int:
    """DP cells updated by one pairwise comparison (``m x n``)."""
    m = query if isinstance(query, int) else len(query)
    n = subject if isinstance(subject, int) else len(subject)
    if m < 0 or n < 0:
        raise ValueError("sequence lengths must be non-negative")
    return m * n


def task_cells(query: Sequence | int, database: SequenceDatabase | int) -> int:
    """Cells of one *task*: the query against the whole database."""
    m = query if isinstance(query, int) else len(query)
    residues = (
        database
        if isinstance(database, int)
        else database.total_residues
    )
    if m < 0 or residues < 0:
        raise ValueError("lengths must be non-negative")
    return m * residues


def workload_cells(
    queries: Iterable[Sequence | int], database: SequenceDatabase | int
) -> int:
    """Cells of a whole workload (all queries x one database)."""
    return sum(task_cells(q, database) for q in queries)


def gcups(cells: int, seconds: float) -> float:
    """Billions of cell updates per second."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    return cells / seconds / 1e9
