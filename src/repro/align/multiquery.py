"""Multi-query inter-sequence SW kernel — SWAPHI-style query batching.

The single-query inter-sequence kernel (:mod:`repro.align.intersequence`)
amortizes the DP sweep across database *subjects* by packing them into
lanes.  SWAPHI (Liu & Schmidt) and CUDASW++ 3.0 go one step further:
several **queries** share one sweep over the packed database, so the
database conversion, the lane bookkeeping, and the Python-level loop
overhead are all paid once per batch instead of once per query.

This module stacks query profiles into a 3-D ``(m, lanes, queries)``
sweep:

* each query's padded profile becomes one slab of a
  ``(alphabet + 1, m_max, Q)`` tensor (:class:`MultiQueryProfile`);
  queries shorter than ``m_max`` are padded with the same strongly
  negative sentinel rows used for subject-lane padding;
* the DP recurrence is the exact recurrence of
  :func:`repro.align.intersequence.sw_score_batch` with one extra
  query axis — every numpy op broadcasts over all ``m x lanes x Q``
  cells (held in ``(lanes, m, Q)`` layout so the per-row profile
  gather lands contiguously), and the lazy-F fixpoint runs jointly
  over all lanes *and* queries: one prefix scan when
  ``open >= extend``, where a path routed through an F-raised cell
  always pays an extra ``open - extend`` and the scan is provably the
  exact column fixpoint.

Padding is provably inert: a padded query row can only be reached
through a gap that subtracts a positive open penalty from an H value
already counted in ``best``, so per-query scores are bit-exact with the
single-query kernel (and hence with the reference kernel) — the
conformance suite asserts this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as SequenceType

import numpy as np

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .gaps import GapModel
from .intersequence import DEFAULT_LANES, LanePack, _NEG, pack_database
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = [
    "MultiQueryProfile",
    "build_multi_profile",
    "sw_score_batch_multi",
    "sw_score_database_multi",
]


@dataclass(frozen=True)
class MultiQueryProfile:
    """Stacked query profiles for one multi-query sweep.

    ``profile[c, i, q]`` is the substitution score of residue code ``c``
    against position ``i`` of query ``q``; positions past query ``q``'s
    length (and the pad-residue row ``profile[-1]``) are strongly
    negative so padded cells can never raise a score.
    """

    profile: np.ndarray  # (alphabet + 1, m_max, Q) int64
    lengths: np.ndarray  # (Q,) int64

    @property
    def queries(self) -> int:
        """Number of stacked queries."""
        return self.profile.shape[2]

    @property
    def max_length(self) -> int:
        """Padded query length shared by the sweep."""
        return self.profile.shape[1]


def build_multi_profile(
    queries_codes: SequenceType[np.ndarray],
    matrix: SubstitutionMatrix,
) -> MultiQueryProfile:
    """Stack per-query padded profiles into one ``(A+1, m_max, Q)`` tensor."""
    if not queries_codes:
        raise ValueError("at least one query is required")
    lengths = np.array([len(c) for c in queries_codes], dtype=np.int64)
    m_max = int(lengths.max())
    alpha = matrix.alphabet.size
    profile = np.full(
        (alpha + 1, max(m_max, 1), len(queries_codes)), _NEG, dtype=np.int64
    )
    for q, codes in enumerate(queries_codes):
        if len(codes):
            profile[:-1, : len(codes), q] = matrix.profile_for(codes)
    profile.setflags(write=False)
    return MultiQueryProfile(profile=profile, lengths=lengths)


def sw_score_batch_multi(
    mq: MultiQueryProfile,
    pack: LanePack,
    gaps: GapModel,
) -> np.ndarray:
    """Score every stacked query against every lane of *pack* at once.

    Returns a ``(Q, lanes)`` int64 array of best local-alignment scores
    in lane order (scatter through ``pack.order`` for database order).
    The recurrence mirrors :func:`~repro.align.intersequence.sw_score_batch`
    with a trailing query axis.
    """
    m = mq.max_length
    lanes = pack.lanes
    nq = mq.queries
    if lanes == 0 or int(mq.lengths.max(initial=0)) == 0:
        return np.zeros((nq, lanes), dtype=np.int64)

    profile = mq.profile
    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    # When opening costs at least as much as extending, any F path
    # routed through an F-raised cell is dominated by the direct path
    # (it pays an extra ``open - extend``), so one prefix scan computes
    # the exact column fixpoint and the verification pass is skipped.
    single_pass = gaps.open >= gaps.extend
    # DP state in (lanes, m, Q) layout: the profile gather below lands
    # contiguously, with no per-row transpose copy.
    H_prev = np.zeros((lanes, m + 1, nq), dtype=np.int64)
    E = np.full((lanes, m, nq), _NEG, dtype=np.int64)
    Ebuf = np.empty_like(E)
    H = np.empty_like(E)
    F = np.empty_like(E)
    ramp_up = (np.arange(1, m + 1, dtype=np.int64) * ge)[None, :, None]
    ramp_dn = (go + np.arange(m, dtype=np.int64) * ge)[None, :, None]
    G = np.empty((lanes, m + 1, nq), dtype=np.int64)
    best = np.zeros((lanes, nq), dtype=np.int64)

    for j in range(pack.residues.shape[0]):
        prof = profile[pack.residues[j]]  # (lanes, m, Q), contiguous
        np.subtract(H_prev[:, 1:], go, out=Ebuf)
        np.subtract(E, ge, out=E)
        np.maximum(Ebuf, E, out=E)
        np.add(H_prev[:, :-1], prof, out=H)
        np.maximum(H, E, out=H)
        np.maximum(H, 0, out=H)
        # Joint lazy-F fixpoint: one prefix scan per (lane, query) pair.
        while True:
            G[:, 0] = 0
            np.add(H, ramp_up, out=G[:, 1:])
            np.maximum.accumulate(G, axis=1, out=G)
            np.subtract(G[:, :-1], ramp_dn, out=F)
            if single_pass:
                np.maximum(H, F, out=H)
                break
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        np.maximum(best, H.max(axis=1), out=best)
        H_prev[:, 1:] = H
    return best.T  # (Q, lanes)


def sw_score_database_multi(
    queries: SequenceType[Sequence],
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    lanes: int = DEFAULT_LANES,
    packs: SequenceType[LanePack] | None = None,
    profile: MultiQueryProfile | None = None,
) -> np.ndarray:
    """Score several queries against the whole database in shared sweeps.

    Returns a ``(Q, len(database))`` int64 array aligned with database
    order.  Pre-built *packs* (e.g. from the pack cache) and a stacked
    *profile* may be supplied to skip conversion entirely.
    """
    if profile is None:
        profile = build_multi_profile(
            [_codes(q, matrix) for q in queries], matrix
        )
    scores = np.zeros((profile.queries, len(database)), dtype=np.int64)
    if packs is None:
        packs = pack_database(database, matrix, lanes=lanes)
    for pack in packs:
        batch = sw_score_batch_multi(profile, pack, gaps)
        scores[:, pack.order] = batch
    return scores
