"""Smith-Waterman alignment substrate: scoring, kernels, traceback."""

from .api import (
    SearchHit,
    SearchResult,
    database_search,
    search_and_align,
    sw_align,
    sw_score,
)
from .banded import BandedResult, sw_score_banded
from .columnwise import ScanResult, sw_score_scan
from .dna import StrandHit, reverse_complement, sw_score_both_strands
from .gaps import DEFAULT_GAPS, GapModel, affine_gap, linear_gap
from .hirschberg import align_linear_space, global_align_linear_space
from .io_formats import (
    alignment_to_tabular,
    hits_to_tabular,
    pairwise_report,
    write_tabular,
)
from .modes import nw_align, nw_score, semiglobal_align, semiglobal_score
from .multiquery import (
    MultiQueryProfile,
    build_multi_profile,
    sw_score_batch_multi,
    sw_score_database_multi,
)
from .intersequence import (
    DualPrecisionResult,
    LanePack,
    pack_database,
    sw_score_batch,
    sw_score_database,
    sw_score_database_dual,
)
from .reference import DPMatrices, sw_matrix, sw_score_reference
from .screening import (
    DEFAULT_BIN_WIDTH,
    DEFAULT_SCREEN_LANES,
    SCREEN_CAP,
    LengthBinnedPack,
    ScreenStats,
    ScreenedResult,
    pack_database_binned,
    sw_score_database_screened,
    sw_score_database_screened_multi,
    sw_screen_batch,
    sw_screen_batch_multi,
)
from .scoring import (
    BLOSUM50,
    BLOSUM62,
    DNA_SIMPLE,
    SubstitutionMatrix,
    default_matrix_for,
    get_matrix,
    load_matrix_file,
    match_mismatch,
)
from .seeding import KmerIndex, SeedHit, seed_candidates, seeded_search
from .statistics import KarlinAltschul, calibrate, fit_gumbel, stock_parameters
from .stats import gcups, pair_cells, task_cells, workload_cells
from .striped import (
    SCORE_CAP_8BIT,
    SCORE_CAP_16BIT,
    SaturationOverflow,
    StripedProfile,
    StripedResult,
    sw_score_striped,
)
from .traceback import Alignment, sw_align_reference, traceback
from .wavefront import WavefrontResult, sw_score_wavefront

__all__ = [
    "SearchHit",
    "SearchResult",
    "database_search",
    "search_and_align",
    "sw_align",
    "sw_score",
    "ScanResult",
    "sw_score_scan",
    "GapModel",
    "DEFAULT_GAPS",
    "affine_gap",
    "linear_gap",
    "align_linear_space",
    "global_align_linear_space",
    "nw_score",
    "nw_align",
    "semiglobal_score",
    "semiglobal_align",
    "BandedResult",
    "sw_score_banded",
    "StrandHit",
    "reverse_complement",
    "sw_score_both_strands",
    "KarlinAltschul",
    "calibrate",
    "fit_gumbel",
    "stock_parameters",
    "alignment_to_tabular",
    "hits_to_tabular",
    "write_tabular",
    "pairwise_report",
    "LanePack",
    "MultiQueryProfile",
    "build_multi_profile",
    "sw_score_batch_multi",
    "sw_score_database_multi",
    "pack_database",
    "sw_score_batch",
    "sw_score_database",
    "sw_score_database_dual",
    "DualPrecisionResult",
    "DPMatrices",
    "sw_matrix",
    "sw_score_reference",
    "DEFAULT_BIN_WIDTH",
    "DEFAULT_SCREEN_LANES",
    "SCREEN_CAP",
    "LengthBinnedPack",
    "ScreenStats",
    "ScreenedResult",
    "pack_database_binned",
    "sw_score_database_screened",
    "sw_score_database_screened_multi",
    "sw_screen_batch",
    "sw_screen_batch_multi",
    "SubstitutionMatrix",
    "BLOSUM62",
    "BLOSUM50",
    "DNA_SIMPLE",
    "match_mismatch",
    "get_matrix",
    "default_matrix_for",
    "load_matrix_file",
    "KmerIndex",
    "SeedHit",
    "seed_candidates",
    "seeded_search",
    "gcups",
    "pair_cells",
    "task_cells",
    "workload_cells",
    "SaturationOverflow",
    "StripedProfile",
    "StripedResult",
    "sw_score_striped",
    "SCORE_CAP_8BIT",
    "SCORE_CAP_16BIT",
    "Alignment",
    "sw_align_reference",
    "traceback",
    "WavefrontResult",
    "sw_score_wavefront",
]
