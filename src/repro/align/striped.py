"""Adapted Farrar striped Smith-Waterman — the paper's SSE engine.

Section IV-C: *"In order to execute SW on SSE cores, we implemented the
Farrar algorithm, generating an adapted Farrar version.  Basically, our
version uses signed integers instead of unsigned ones to store the
values of the SW DP matrices, augmenting the maximum score to 255
(8 bits) and 32767 (16 bits)."*

This module is a faithful port of that engine with numpy arrays standing
in for the 128-bit SSE registers:

* the query is laid out in Farrar's **striped** pattern — ``lanes``
  segments of length ``seglen = ceil(m / lanes)``, vector ``i`` holding
  query positions ``{i, i + seglen, i + 2*seglen, ...}`` — so the
  inner loop has no horizontal data hazards;
* a **striped query profile** is precomputed per subject residue;
* the ``F`` dependency is deferred to Farrar's **lazy-F** loop, which
  re-walks the column only while a shifted ``F`` can still raise ``H``;
* arithmetic *saturates* at a per-precision score cap (the paper's
  signed adaptation: 255 in the 8-bit pass, 32767 in the 16-bit pass);
  a saturated result triggers a re-run at the next precision, mirroring
  Farrar's 8-bit-first, 16-bit-fallback pipeline.

Scores are bit-exact with the reference kernel whenever the result fits
the precision cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = [
    "StripedProfile",
    "StripedResult",
    "SaturationOverflow",
    "sw_score_striped_once",
    "sw_score_striped",
    "SCORE_CAP_8BIT",
    "SCORE_CAP_16BIT",
]

#: The paper's adapted score caps (Section IV-C).
SCORE_CAP_8BIT = 255
SCORE_CAP_16BIT = 32767

#: Default lane count: 16 byte lanes in one 128-bit SSE register.
DEFAULT_LANES = 16

_NEG = -(1 << 40)


class SaturationOverflow(RuntimeError):
    """The best score hit the precision cap; re-run at higher precision."""


@dataclass(frozen=True)
class StripedProfile:
    """Precomputed striped query profile (Farrar's first optimization).

    ``scores[c]`` is a ``(seglen, lanes)`` array whose element
    ``(i, l)`` holds the substitution score of subject residue ``c``
    against query position ``l * seglen + i``; padding positions score a
    large negative so they can never seed an alignment.
    """

    scores: np.ndarray  # (alphabet, seglen, lanes)
    query_length: int
    lanes: int

    @property
    def seglen(self) -> int:
        """Farrar segment length: ceil(query_length / lanes)."""
        return self.scores.shape[1]

    @classmethod
    def build(
        cls,
        query_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        lanes: int = DEFAULT_LANES,
    ) -> "StripedProfile":
        m = len(query_codes)
        if m == 0:
            raise ValueError("cannot build a striped profile for an empty query")
        if lanes <= 0:
            raise ValueError("lanes must be positive")
        seglen = -(-m // lanes)  # ceil division
        padded = seglen * lanes
        flat = np.full((matrix.alphabet.size, padded), _NEG, dtype=np.int64)
        flat[:, :m] = matrix.scores[:, query_codes]
        # Striped layout: position l*seglen + i lands at vector i, lane l.
        striped = flat.reshape(matrix.alphabet.size, lanes, seglen)
        striped = np.ascontiguousarray(striped.transpose(0, 2, 1))
        return cls(scores=striped, query_length=m, lanes=lanes)


@dataclass(frozen=True)
class StripedResult:
    """Outcome of one striped comparison."""

    score: int
    cells: int
    precision: int  # bits of the pass that produced the score
    lazy_f_passes: int  # total lazy-F corrective steps (ablation metric)


def _shift_lanes(v: np.ndarray, fill: int = 0) -> np.ndarray:
    """Farrar's register shift: lane ``l`` receives lane ``l - 1``.

    In the striped layout this moves each value from query position
    ``l * seglen + i`` to ``(l + 1) * seglen + i`` — exactly the
    neighbour needed when wrapping from the last vector of one column
    step to the first vector of the next.
    """
    out = np.empty_like(v)
    out[0] = fill
    out[1:] = v[:-1]
    return out


def sw_score_striped_once(
    profile: StripedProfile,
    subject_codes: np.ndarray,
    gaps: GapModel,
    cap: int,
) -> tuple[int, int]:
    """One precision pass of the striped kernel.

    Returns ``(score, lazy_f_passes)``; raises
    :class:`SaturationOverflow` when the running maximum saturates at
    *cap*, signalling the caller to retry at higher precision.
    """
    seglen, lanes = profile.seglen, profile.lanes
    go, ge = gaps.open, gaps.extend

    vH_store = np.zeros((seglen, lanes), dtype=np.int64)
    vH_load = np.zeros((seglen, lanes), dtype=np.int64)
    vE = np.zeros((seglen, lanes), dtype=np.int64)
    v_max = 0
    lazy_passes = 0

    for c in subject_codes:
        prof = profile.scores[c]
        vH_store, vH_load = vH_load, vH_store
        # H entering vector 0 is the last vector of the previous column,
        # shifted across lanes; lane 0 receives the H[0][j] = 0 boundary.
        vH = _shift_lanes(vH_load[seglen - 1])
        vF = np.zeros(lanes, dtype=np.int64)
        for i in range(seglen):
            # Saturating add against the profile (zero floor = SW clamp,
            # cap ceiling = the paper's signed 8/16-bit score limit).
            vH = vH + prof[i]
            np.maximum(vH, vE[i], out=vH)
            np.maximum(vH, vF, out=vH)
            np.clip(vH, 0, cap, out=vH)
            local = vH.max()
            if local > v_max:
                v_max = int(local)
            vH_store[i] = vH
            open_from_h = vH - go
            vE[i] = np.maximum(vE[i] - ge, open_from_h)
            np.maximum(vE[i], 0, out=vE[i])
            vF = np.maximum(vF - ge, open_from_h)
            np.maximum(vF, 0, out=vF)
            vH = vH_load[i]
        # Lazy-F: fold the deferred vertical dependency back in.  The F
        # computed above ignored contributions that wrap across vectors;
        # keep pushing the shifted F down the column while it can still
        # raise any H.
        vF = _shift_lanes(vF)
        i = 0
        # The comparison and the decay both saturate at zero, exactly
        # like the unsigned SSE ops Farrar relies on for termination: a
        # fully-decayed F compares equal (not greater) and the loop ends.
        while (vF > np.maximum(vH_store[i] - go, 0)).any():
            lazy_passes += 1
            np.maximum(vH_store[i], vF, out=vH_store[i])
            np.clip(vH_store[i], 0, cap, out=vH_store[i])
            # A raised H can widen E for the next column (SWPS3's fix to
            # the original Farrar code).
            np.maximum(vE[i], vH_store[i] - go, out=vE[i])
            vF = np.maximum(vF - ge, 0)
            i += 1
            if i >= seglen:
                vF = _shift_lanes(vF)
                i = 0
        if v_max >= cap:
            raise SaturationOverflow(f"score saturated at cap {cap}")
    return v_max, lazy_passes


def sw_score_striped(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    lanes: int = DEFAULT_LANES,
) -> StripedResult:
    """Full adapted-Farrar pipeline: 8-bit pass, then 16-bit, then exact.

    The 8-bit pass runs with 16 lanes and cap 255; on saturation the
    comparison is re-run with 8 lanes (16-bit words in the same
    register) and cap 32767; a second saturation falls through to an
    uncapped pass.  This is the paper's two-precision scheme extended
    with a safety net for synthetic extreme scores.
    """
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    if len(s_codes) == 0 or len(t_codes) == 0:
        return StripedResult(score=0, cells=0, precision=8, lazy_f_passes=0)
    cells = len(s_codes) * len(t_codes)

    plans = (
        (8, SCORE_CAP_8BIT, lanes),
        (16, SCORE_CAP_16BIT, max(1, lanes // 2)),
        (64, np.iinfo(np.int64).max // 2, max(1, lanes // 2)),
    )
    total_lazy = 0
    for bits, cap, pass_lanes in plans:
        profile = StripedProfile.build(s_codes, matrix, lanes=pass_lanes)
        try:
            score, lazy = sw_score_striped_once(profile, t_codes, gaps, cap)
        except SaturationOverflow:
            continue
        total_lazy += lazy
        return StripedResult(
            score=score,
            cells=cells,
            precision=bits,
            lazy_f_passes=total_lazy,
        )
    raise AssertionError("unreachable: uncapped pass cannot saturate")
