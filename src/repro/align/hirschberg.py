"""Linear-space local alignment retrieval (Hirschberg / Myers-Miller).

The paper's Phase 2 discussion notes that quadratic-space traceback
restricts alignment retrieval to short sequences (its ref. [12] could
"only compare short sequences"; ref. [4] is the linear-space line of
work).  This module implements the production answer — the three-pass
scheme used by SSEARCH:

1. a forward score-only pass (:mod:`repro.align.columnwise`) finds the
   optimal score and its **end** cell;
2. an *anchored* reverse pass — the same column-scan DP run on the
   reversed prefixes with global-style boundaries and no zero floor —
   finds the **start** cell;
3. the bounded substrings are aligned **globally** with Myers & Miller's
   divide-and-conquer (affine gaps, linear space), which is guaranteed
   to reproduce the local optimum because an optimal local alignment is
   a global alignment of exactly the substring pair it spans.

Memory is ``O(m + n)`` throughout; time is ``O(mn)`` with the same
vectorized column updates as the scan kernel.
"""

from __future__ import annotations

import numpy as np

from ..sequences.records import Sequence
from .columnwise import sw_score_scan
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix
from .traceback import GAP_CHAR, Alignment

__all__ = ["align_linear_space", "global_align_linear_space"]

_NEG = np.int64(-(1 << 40))


# ----------------------------------------------------------------------
# Step 2: anchored reverse pass
# ----------------------------------------------------------------------
def _anchored_best(
    s_codes: np.ndarray,
    t_codes: np.ndarray,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> tuple[int, tuple[int, int]]:
    """Best-scoring cell of the corner-anchored affine DP.

    ``A[i][j]`` is the best score of an alignment that starts exactly at
    the (0, 0) corner and ends at ``(i, j)``; boundaries charge gap
    runs, and there is no zero floor.  Applied to reversed prefixes this
    finds where the optimal local alignment *started*.
    """
    m, n = len(s_codes), len(t_codes)
    go, ge = np.int64(gaps.open), np.int64(gaps.extend)
    profile = matrix.profile_for(s_codes).astype(np.int64)

    # Column 0 boundary: a pure vertical gap run of length i.
    H_prev = np.empty(m + 1, dtype=np.int64)
    H_prev[0] = 0
    if m:
        H_prev[1:] = -(go + np.arange(m, dtype=np.int64) * ge)
    E_prev = np.full(m, _NEG, dtype=np.int64)
    ramp_up = np.arange(m + 1, dtype=np.int64) * ge
    ramp_dn = go + np.arange(m, dtype=np.int64) * ge
    G = np.empty(m + 1, dtype=np.int64)

    best = np.int64(-(1 << 41))
    best_pos = (0, 0)
    for j in range(n):
        top = -(go + np.int64(j) * ge)  # H[0][j + 1] boundary
        prof = profile[t_codes[j]]
        E = np.maximum(H_prev[1:] - go, E_prev - ge)
        H = np.maximum(H_prev[:-1] + prof, E)
        while True:
            G[0] = top
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G)[:-1]
            F = prefix - ramp_dn
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        column_best = H.max()
        if column_best > best:
            best = column_best
            best_pos = (int(H.argmax()) + 1, j + 1)
        H_prev[0] = top
        H_prev[1:] = H
        E_prev = E
    return int(best), best_pos


# ----------------------------------------------------------------------
# Step 3: Myers-Miller global alignment in linear space
# ----------------------------------------------------------------------
# The classic formulation prices a gap run of length k as g + h*k with a
# one-off "open surcharge" g and per-residue cost h.  Our GapModel prices
# it open + (k-1)*extend, which maps exactly onto g = open - extend and
# h = extend; the surcharge form is what lets a run crossing the
# midline be split between the two halves and corrected by +g once.


def _forward_strip(
    a: np.ndarray,
    b: np.ndarray,
    sub: np.ndarray,
    g: int,
    h: int,
    tb: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Last-row score vectors of the global DP over strip *a* x *b*.

    Returns ``(CC, DD)``: ``CC[j]`` is the best alignment score of all
    of *a* against ``b[:j]``; ``DD[j]`` additionally requires the
    alignment to end inside a vertical gap (deletion), priced so the gap
    can be continued below.  ``tb`` is the open surcharge applicable to
    a vertical gap starting at this strip's top boundary (0 when the
    caller knows such a gap is already open).
    """
    m, n = len(a), len(b)
    CC = np.empty(n + 1, dtype=np.int64)
    CC[0] = 0
    if n:
        CC[1:] = -(g + h * np.arange(1, n + 1, dtype=np.int64))
    DD = np.full(n + 1, _NEG, dtype=np.int64)
    ramp_up = np.arange(n + 1, dtype=np.int64) * h
    ramp_dn = (g + h) + np.arange(n, dtype=np.int64) * h
    G = np.empty(n + 1, dtype=np.int64)

    for i in range(1, m + 1):
        open_v = tb if i == 1 else g  # vertical-gap surcharge for this row
        # DD = F state of row i, vectorized over columns.
        DD = np.maximum(DD - h, CC - (open_v + h))
        left = -(tb + h * i)  # H[i][0]: vertical run down the left edge
        diag = CC[:-1] + sub[a[i - 1], b] if n else CC[:0]
        H = np.maximum(diag, DD[1:])
        # E (horizontal gap) via prefix scan with fixpoint, boundary at
        # H[i][0] = left; E[i][0] impossible.
        while True:
            G[0] = left
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G)[:-1]
            E = prefix - ramp_dn
            raised = E > H
            if not raised.any():
                break
            np.maximum(H, E, out=H)
        CC[0] = left
        CC[1:] = H
    return CC, DD


def _emit_subject(parts_q: list[str], parts_t: list[str], residues: str) -> None:
    parts_q.append(GAP_CHAR * len(residues))
    parts_t.append(residues)


def _emit_query(parts_q: list[str], parts_t: list[str], residues: str) -> None:
    parts_q.append(residues)
    parts_t.append(GAP_CHAR * len(residues))


def _mm_recurse(
    a_res: str,
    b_res: str,
    a: np.ndarray,
    b: np.ndarray,
    sub: np.ndarray,
    g: int,
    h: int,
    tb: int,
    te: int,
    parts_q: list[str],
    parts_t: list[str],
) -> None:
    """Myers-Miller divide and conquer; appends alignment columns."""
    m, n = len(a), len(b)
    if n == 0:
        if m > 0:
            _emit_query(parts_q, parts_t, a_res)
        return
    if m == 0:
        _emit_subject(parts_q, parts_t, b_res)
        return
    if m == 1:
        # Direct solution: either a[0] pairs with some b[j], with the
        # flanks inserted, or a[0] is deleted alongside a full insertion.
        gap_cost = lambda k: 0 if k == 0 else g + h * k
        best = -(min(tb, te) + h) - gap_cost(n)
        best_j = -1  # -1 encodes the all-gaps option
        for j in range(n):
            cand = (
                -gap_cost(j)
                + int(sub[a[0], b[j]])
                - gap_cost(n - 1 - j)
            )
            if cand > best:
                best = cand
                best_j = j
        if best_j < 0:
            _emit_query(parts_q, parts_t, a_res)
            _emit_subject(parts_q, parts_t, b_res)
        else:
            if best_j > 0:
                _emit_subject(parts_q, parts_t, b_res[:best_j])
            parts_q.append(a_res)
            parts_t.append(b_res[best_j])
            if best_j < n - 1:
                _emit_subject(parts_q, parts_t, b_res[best_j + 1 :])
        return

    mid = m // 2
    CC_f, DD_f = _forward_strip(a[:mid], b, sub, g, h, tb)
    CC_r, DD_r = _forward_strip(a[mid:][::-1], b[::-1], sub, g, h, te)
    join_cc = CC_f + CC_r[::-1]
    join_dd = DD_f + DD_r[::-1] + g  # +g: the crossing run's surcharge
    # was paid by both halves, charge it once.
    best_cc = int(join_cc.max())
    best_dd = int(join_dd.max())
    if best_cc >= best_dd:
        midj = int(join_cc.argmax())
        _mm_recurse(
            a_res[:mid], b_res[:midj], a[:mid], b[:midj],
            sub, g, h, tb, g, parts_q, parts_t,
        )
        _mm_recurse(
            a_res[mid:], b_res[midj:], a[mid:], b[midj:],
            sub, g, h, g, te, parts_q, parts_t,
        )
    else:
        # The optimum crosses the midline inside a vertical gap that
        # covers a[mid - 1] and a[mid]: emit those two deletions here and
        # tell each half the gap is already open at its boundary.
        midj = int(join_dd.argmax())
        _mm_recurse(
            a_res[: mid - 1], b_res[:midj], a[: mid - 1], b[:midj],
            sub, g, h, tb, 0, parts_q, parts_t,
        )
        _emit_query(parts_q, parts_t, a_res[mid - 1 : mid + 1])
        _mm_recurse(
            a_res[mid + 1 :], b_res[midj:], a[mid + 1 :], b[midj:],
            sub, g, h, 0, te, parts_q, parts_t,
        )


def global_align_linear_space(
    s: Sequence,
    t: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> tuple[str, str]:
    """Optimal *global* affine-gap alignment in linear space.

    Returns the aligned residue strings.  Exposed separately because the
    examples use it to align bounded regions directly.
    """
    a = _codes(s, matrix)
    b = _codes(t, matrix)
    sub = matrix.scores.astype(np.int64)
    g = gaps.open - gaps.extend
    h = gaps.extend
    parts_q: list[str] = []
    parts_t: list[str] = []
    _mm_recurse(
        s.residues, t.residues, a, b, sub, g, h, g, g, parts_q, parts_t
    )
    return "".join(parts_q), "".join(parts_t)


# ----------------------------------------------------------------------
# The public three-pass local aligner
# ----------------------------------------------------------------------
def align_linear_space(
    s: Sequence,
    t: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> Alignment:
    """Optimal local alignment of *s* x *t* in ``O(m + n)`` memory."""
    forward = sw_score_scan(s, t, matrix, gaps)
    if forward.score == 0:
        return Alignment(
            query_id=s.id, subject_id=t.id, score=0,
            aligned_query="", aligned_subject="",
            query_start=0, query_end=0, subject_start=0, subject_end=0,
        )
    ie, je = forward.end
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    rev_score, (ri, rj) = _anchored_best(
        s_codes[:ie][::-1], t_codes[:je][::-1], matrix, gaps
    )
    if rev_score != forward.score:  # pragma: no cover - kernel invariant
        raise AssertionError(
            f"anchored reverse pass score {rev_score} != forward "
            f"{forward.score}"
        )
    i_start, j_start = ie - ri, je - rj
    sub_q = s.slice(i_start, ie)
    sub_t = t.slice(j_start, je)
    aligned_q, aligned_t = global_align_linear_space(sub_q, sub_t, matrix, gaps)
    return Alignment(
        query_id=s.id,
        subject_id=t.id,
        score=forward.score,
        aligned_query=aligned_q,
        aligned_subject=aligned_t,
        query_start=i_start,
        query_end=ie,
        subject_start=j_start,
        subject_end=je,
    )
