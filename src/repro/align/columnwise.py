"""Column-scan Smith-Waterman kernel (vectorized over the query).

This is the project's fast *intra-task* scoring kernel: it walks the
database sequence one residue at a time but computes each whole DP
column with numpy vector operations.  The vertical (``F``) dependency —
the same dependency Farrar's *lazy-F* loop breaks — is resolved here
with a max-plus prefix scan:

.. math::

   F[i][j] = \\max_{k<i} \\big( H[k][j] - g_o - (i-1-k)\\,g_e \\big)
           = \\Big( \\max_{k<i} (H[k][j] + k\\,g_e) \\Big) - g_o - (i-1)\\,g_e

so one ``np.maximum.accumulate`` yields the whole ``F`` column.  Because
raising ``H`` cells to their ``F`` values can in turn raise ``F`` further
down the column, the scan is iterated to a fixpoint; like Farrar's lazy-F
loop it almost always converges in one or two rounds.

Scores are bit-exact with :mod:`repro.align.reference`; complexity is
``O(n)`` numpy operations of width ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = ["ScanResult", "sw_score_scan"]

_NEG = np.int64(-(1 << 40))


@dataclass(frozen=True)
class ScanResult:
    """Score-only result of one pairwise comparison."""

    score: int
    end: tuple[int, int]
    cells: int
    fixpoint_rounds: int


def sw_score_scan(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> ScanResult:
    """Score the local alignment of *s* (query) x *t* (subject).

    Returns the similarity, the end cell of the first optimal alignment
    encountered (1-based DP coordinates, matching
    :class:`~repro.align.reference.DPMatrices`), the number of DP cells
    updated and the total lazy-F fixpoint rounds (for the ablation
    benchmarks).
    """
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return ScanResult(score=0, end=(0, 0), cells=0, fixpoint_rounds=0)

    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    profile = matrix.profile_for(s_codes).astype(np.int64)  # (alphabet, m)

    H_prev = np.zeros(m + 1, dtype=np.int64)
    E_prev = np.full(m, _NEG, dtype=np.int64)
    # Precomputed ramps for the max-plus scan (see module docstring).
    ramp_up = np.arange(m + 1, dtype=np.int64) * ge  # index k = 0..m
    ramp_dn = go + np.arange(m, dtype=np.int64) * ge  # index i-1 = 0..m-1
    G = np.empty(m + 1, dtype=np.int64)

    best = np.int64(0)
    best_end = (0, 0)
    rounds = 0
    for j in range(n):
        prof = profile[t_codes[j]]
        E = np.maximum(H_prev[1:] - go, E_prev - ge)
        H = np.maximum(H_prev[:-1] + prof, E)
        np.maximum(H, 0, out=H)
        # Lazy-F fixpoint: F from a prefix scan over the current column.
        while True:
            rounds += 1
            G[0] = 0  # H[0, j] boundary
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G)[:-1]
            F = prefix - ramp_dn
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        column_best = H.max()
        if column_best > best:
            best = column_best
            best_end = (int(H.argmax()) + 1, j + 1)
        H_prev[1:] = H
        E_prev = E
    return ScanResult(
        score=int(best), end=best_end, cells=m * n, fixpoint_rounds=rounds
    )
