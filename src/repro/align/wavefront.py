"""Anti-diagonal (wavefront) Smith-Waterman kernel.

Section II-B / Fig. 3a of the paper: in the fine-grained approach "the
calculations that can be done in parallel evolve as waves on diagonals"
— every cell of anti-diagonal ``d = i + j`` depends only on diagonals
``d-1`` (the gap moves) and ``d-2`` (the substitution move), so an
entire diagonal updates in one vector operation, affine gaps included
(``E``/``F`` read the *previous* diagonal, never the current one, so no
lazy-F correction is needed).

This is the dependency structure systolic arrays and fine-grained GPU
kernels exploit; here it is the numpy expression of it, bit-exact with
the reference kernel and used by the Fig. 3 strategy study as the
intra-task parallel engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = ["WavefrontResult", "sw_score_wavefront"]

_NEG = np.int64(-(1 << 40))


@dataclass(frozen=True)
class WavefrontResult:
    """Score-only result of one wavefront sweep."""

    score: int
    cells: int
    diagonals: int


def sw_score_wavefront(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> WavefrontResult:
    """SW similarity via anti-diagonal sweeps.

    Diagonal ``d`` holds cells ``(i, d - i)`` for
    ``max(1, d - n) <= i <= min(m, d - 1)`` (1-based DP coordinates).
    Each diagonal is stored as a dense vector indexed by ``i``; the
    neighbours of cell ``(i, j)`` live at index ``i`` (left, diagonal
    ``d-1``), ``i - 1`` (up, diagonal ``d-1``) and ``i - 1``
    (substitution, diagonal ``d-2``).
    """
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return WavefrontResult(score=0, cells=0, diagonals=0)

    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    sub = matrix.scores.astype(np.int64)

    # Dense per-diagonal buffers indexed by i in [0, m]; index 0 is the
    # H[0][j] = 0 boundary row.
    H_prev2 = np.zeros(m + 1, dtype=np.int64)  # diagonal d - 2
    H_prev1 = np.zeros(m + 1, dtype=np.int64)  # diagonal d - 1
    E_prev1 = np.full(m + 1, _NEG, dtype=np.int64)
    F_prev1 = np.full(m + 1, _NEG, dtype=np.int64)

    best = np.int64(0)
    cells = 0
    diagonals = m + n - 1
    for d in range(2, m + n + 1):
        lo = max(1, d - n)
        hi = min(m, d - 1)
        if lo > hi:
            continue
        i = np.arange(lo, hi + 1)
        j = d - i
        cells += len(i)
        # E[i][j] = max(H[i][j-1] - go, E[i][j-1] - ge): cell (i, j-1)
        # sits on diagonal d-1 at index i.
        E = np.maximum(H_prev1[i] - go, E_prev1[i] - ge)
        # F[i][j] = max(H[i-1][j] - go, F[i-1][j] - ge): index i-1 on
        # diagonal d-1.
        F = np.maximum(H_prev1[i - 1] - go, F_prev1[i - 1] - ge)
        # Diagonal move: cell (i-1, j-1) on diagonal d-2 at index i-1.
        diag = H_prev2[i - 1] + sub[s_codes[i - 1], t_codes[j - 1]]
        H = np.maximum(np.maximum(diag, E), F)
        np.maximum(H, 0, out=H)
        local = H.max()
        if local > best:
            best = local

        # Rotate buffers; fresh diagonals start from the boundaries.
        H_new = np.zeros(m + 1, dtype=np.int64)
        E_new = np.full(m + 1, _NEG, dtype=np.int64)
        F_new = np.full(m + 1, _NEG, dtype=np.int64)
        H_new[i] = H
        E_new[i] = E
        F_new[i] = F
        H_prev2 = H_prev1
        H_prev1, E_prev1, F_prev1 = H_new, E_new, F_new
    return WavefrontResult(score=int(best), cells=cells, diagonals=diagonals)
