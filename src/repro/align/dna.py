"""Nucleotide-specific helpers: complements and two-strand search.

DNA homology can sit on either strand; nucleotide search tools score
the query and its reverse complement and report the better strand.
These helpers add that convention on top of the strand-agnostic
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sequences.alphabet import DNA, RNA
from ..sequences.records import Sequence
from .columnwise import sw_score_scan
from .gaps import GapModel
from .scoring import SubstitutionMatrix

__all__ = ["reverse_complement", "StrandHit", "sw_score_both_strands"]

_DNA_COMPLEMENT = str.maketrans("ACGTN", "TGCAN")
_RNA_COMPLEMENT = str.maketrans("ACGUN", "UGCAN")


def reverse_complement(sequence: Sequence) -> Sequence:
    """Reverse complement of a DNA/RNA sequence."""
    alphabet = sequence.alphabet
    if alphabet is DNA:
        table = _DNA_COMPLEMENT
    elif alphabet is RNA:
        table = _RNA_COMPLEMENT
    else:
        raise ValueError(
            f"reverse complement undefined for alphabet "
            f"{alphabet.name if alphabet else None!r}"
        )
    return Sequence(
        id=f"{sequence.id}(rc)",
        residues=sequence.residues.translate(table)[::-1],
        description=sequence.description,
        alphabet=alphabet,
    )


@dataclass(frozen=True)
class StrandHit:
    """Best score over both strands of the query."""

    score: int
    strand: str  # "+" or "-"

    @property
    def is_forward(self) -> bool:
        """True when the forward strand scored best."""
        return self.strand == "+"


def sw_score_both_strands(
    query: Sequence,
    subject: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> StrandHit:
    """SW similarity of the better strand of *query* vs *subject*.

    Ties prefer the forward strand (the convention of BLASTN reports).
    """
    forward = sw_score_scan(query, subject, matrix, gaps).score
    reverse = sw_score_scan(
        reverse_complement(query), subject, matrix, gaps
    ).score
    if reverse > forward:
        return StrandHit(score=reverse, strand="-")
    return StrandHit(score=forward, strand="+")
