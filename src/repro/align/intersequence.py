"""Inter-sequence SW kernel — the CUDASW++ 2.0 analogue ("GPU engine").

CUDASW++ 2.0 (Liu, Schmidt & Maskell, the engine the paper runs on its
GPUs) gets its throughput from *inter-task* parallelism: each CUDA
thread aligns the query against a different database sequence, with the
database pre-sorted by length so the threads of a warp finish together.
This module reproduces that execution model with numpy lanes in place of
CUDA threads:

* the database is **converted** once — sorted by ascending length and
  packed into lane batches (:class:`LanePack`), padding with a sentinel
  residue whose profile row is strongly negative;
* one DP sweep advances **all lanes of a batch simultaneously**: the
  outer loop runs over subject positions, and each column update is a
  ``(m, lanes)`` vectorized step, with the vertical ``F`` dependency
  solved by the same max-plus prefix scan as
  :mod:`repro.align.columnwise` (``np.maximum.accumulate`` down the
  query axis for every lane at once).

Scores are bit-exact with the reference kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = [
    "LanePack",
    "pack_database",
    "sw_score_batch",
    "sw_score_database",
    "sw_score_database_dual",
    "DualPrecisionResult",
]

#: Default lane count, mirroring a CUDA warp of 32 threads.
DEFAULT_LANES = 32

#: Score ceiling of the capped first pass (CUDASW++ 2.0 runs its
#: virtualized-SIMD kernel in limited precision and recomputes the rare
#: overflowing subjects exactly).
DUAL_PASS_CAP = 32767

_NEG = np.int64(-(1 << 40))


@dataclass(frozen=True)
class LanePack:
    """A batch of subject sequences packed residue-major for lane access.

    ``residues[j, l]`` is the ``j``-th residue code of lane ``l``'s
    subject, or the pad code once that subject is exhausted.  ``order``
    maps lanes back to the original database indices.
    """

    residues: np.ndarray  # (max_len, lanes) int16
    lengths: np.ndarray  # (lanes,) int64
    order: np.ndarray  # (lanes,) int64 original indices
    pad_code: int

    @property
    def lanes(self) -> int:
        """Number of subject lanes in this pack."""
        return self.residues.shape[1]

    @property
    def cells_per_query_residue(self) -> int:
        """Useful (unpadded) DP cells per query residue."""
        return int(self.lengths.sum())


def pack_database(
    database: SequenceDatabase | Iterable[Sequence],
    matrix: SubstitutionMatrix,
    lanes: int = DEFAULT_LANES,
) -> Iterator[LanePack]:
    """Convert a database into length-sorted lane batches.

    This is CUDASW++'s database-conversion step: sorting by length keeps
    the lanes of one batch balanced, so the padded DP sweep wastes few
    cells (the ablation benchmark quantifies exactly how few).
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    if isinstance(database, SequenceDatabase):
        records = list(database)
    else:
        records = list(database)
    order = np.argsort([len(r) for r in records], kind="stable")
    pad_code = matrix.alphabet.size  # one past the last real residue
    for start in range(0, len(records), lanes):
        chunk = order[start : start + lanes]
        batch = [records[i] for i in chunk]
        lengths = np.array([len(r) for r in batch], dtype=np.int64)
        max_len = int(lengths.max()) if len(batch) else 0
        residues = np.full((max_len, len(batch)), pad_code, dtype=np.int16)
        for lane, record in enumerate(batch):
            residues[: len(record), lane] = _codes(record, matrix)
        yield LanePack(
            residues=residues,
            lengths=lengths,
            order=np.asarray(chunk, dtype=np.int64),
            pad_code=pad_code,
        )


def _padded_profile(
    query_codes: np.ndarray, matrix: SubstitutionMatrix
) -> np.ndarray:
    """Query profile with one extra, strongly negative pad-residue row."""
    m = len(query_codes)
    profile = np.empty((matrix.alphabet.size + 1, m), dtype=np.int64)
    profile[:-1] = matrix.profile_for(query_codes)
    profile[-1] = _NEG
    return profile


def sw_score_batch(
    query_codes: np.ndarray,
    pack: LanePack,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    profile: np.ndarray | None = None,
) -> np.ndarray:
    """Score the query against every lane of *pack* simultaneously.

    Returns the per-lane best scores in **lane order** (use
    ``pack.order`` to scatter them back to database indices).  *profile*
    may be passed in when the same query is scored against many packs.
    """
    m = len(query_codes)
    lanes = pack.lanes
    if m == 0 or lanes == 0:
        return np.zeros(lanes, dtype=np.int64)
    if profile is None:
        profile = _padded_profile(query_codes, matrix)

    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    H_prev = np.zeros((m + 1, lanes), dtype=np.int64)
    E_prev = np.full((m, lanes), _NEG, dtype=np.int64)
    ramp_up = (np.arange(m + 1, dtype=np.int64) * ge)[:, None]
    ramp_dn = (go + np.arange(m, dtype=np.int64) * ge)[:, None]
    G = np.empty((m + 1, lanes), dtype=np.int64)
    best = np.zeros(lanes, dtype=np.int64)

    for j in range(pack.residues.shape[0]):
        prof = profile[pack.residues[j]].T  # (m, lanes)
        E = np.maximum(H_prev[1:] - go, E_prev - ge)
        H = np.maximum(H_prev[:-1] + prof, E)
        np.maximum(H, 0, out=H)
        # Lazy-F fixpoint via a per-lane prefix scan down the query axis.
        while True:
            G[0] = 0
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G, axis=0)[:-1]
            F = prefix - ramp_dn
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        np.maximum(best, H.max(axis=0), out=best)
        H_prev[1:] = H
        E_prev = E
    return best


@dataclass(frozen=True)
class DualPrecisionResult:
    """Outcome of the dual-precision database sweep."""

    scores: np.ndarray  # database order
    overflowed: np.ndarray  # bool per record: needed the exact re-run

    @property
    def overflow_fraction(self) -> float:
        """Fraction of records that needed the exact re-run."""
        if self.overflowed.size == 0:
            return 0.0
        return float(self.overflowed.mean())


def sw_score_batch_capped(
    query_codes: np.ndarray,
    pack: LanePack,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    cap: int = DUAL_PASS_CAP,
    profile: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Capped-precision lane sweep: ``(scores, saturated)`` per lane.

    Scores saturate (clip) at *cap*; a saturated lane's score is a lower
    bound and must be recomputed exactly.  This is the cheap first pass
    of CUDASW++'s two-precision pipeline.
    """
    m = len(query_codes)
    lanes = pack.lanes
    if m == 0 or lanes == 0:
        return (
            np.zeros(lanes, dtype=np.int64),
            np.zeros(lanes, dtype=bool),
        )
    if profile is None:
        profile = _padded_profile(query_codes, matrix)
    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    H_prev = np.zeros((m + 1, lanes), dtype=np.int64)
    E_prev = np.full((m, lanes), _NEG, dtype=np.int64)
    ramp_up = (np.arange(m + 1, dtype=np.int64) * ge)[:, None]
    ramp_dn = (go + np.arange(m, dtype=np.int64) * ge)[:, None]
    G = np.empty((m + 1, lanes), dtype=np.int64)
    best = np.zeros(lanes, dtype=np.int64)
    for j in range(pack.residues.shape[0]):
        prof = profile[pack.residues[j]].T
        E = np.maximum(H_prev[1:] - go, E_prev - ge)
        H = np.maximum(H_prev[:-1] + prof, E)
        np.clip(H, 0, cap, out=H)  # the saturating register arithmetic
        while True:
            G[0] = 0
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G, axis=0)[:-1]
            F = prefix - ramp_dn
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
            np.clip(H, 0, cap, out=H)
        np.maximum(best, H.max(axis=0), out=best)
        H_prev[1:] = H
        E_prev = E
    return best, best >= cap


def sw_score_database_dual(
    query: Sequence,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    lanes: int = DEFAULT_LANES,
    cap: int = DUAL_PASS_CAP,
) -> DualPrecisionResult:
    """CUDASW++-style two-precision sweep over the database.

    All lanes run the capped pass first; only subjects that saturated
    the cap are re-scored exactly.  The result is bit-exact with
    :func:`sw_score_database` (asserted by the test suite) while the
    expensive exact path runs on the overflow set only.
    """
    query_codes = _codes(query, matrix)
    profile = _padded_profile(query_codes, matrix)
    scores = np.zeros(len(database), dtype=np.int64)
    overflowed = np.zeros(len(database), dtype=bool)
    for pack in pack_database(database, matrix, lanes=lanes):
        capped, saturated = sw_score_batch_capped(
            query_codes, pack, matrix, gaps, cap=cap, profile=profile
        )
        scores[pack.order] = capped
        overflowed[pack.order] = saturated
    for index in np.flatnonzero(overflowed):
        exact = sw_score_batch(
            query_codes,
            next(
                pack_database(
                    SequenceDatabase([database[int(index)]], name="re"),
                    matrix,
                    lanes=1,
                )
            ),
            matrix,
            gaps,
            profile=profile,
        )
        scores[index] = exact[0]
    return DualPrecisionResult(scores=scores, overflowed=overflowed)


def sw_score_database(
    query: Sequence,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    lanes: int = DEFAULT_LANES,
) -> np.ndarray:
    """Score *query* against every database record (inter-sequence mode).

    Returns an int64 array of similarities aligned with database order —
    the per-task computation of the paper's GPU slaves.
    """
    query_codes = _codes(query, matrix)
    profile = _padded_profile(query_codes, matrix)
    scores = np.zeros(len(database), dtype=np.int64)
    for pack in pack_database(database, matrix, lanes=lanes):
        batch_scores = sw_score_batch(
            query_codes, pack, matrix, gaps, profile=profile
        )
        scores[pack.order] = batch_scores
    return scores
