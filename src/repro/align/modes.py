"""Global and semiglobal alignment modes.

Smith-Waterman (local) is the paper's algorithm, but a production
sequence-comparison library also needs its siblings, built on the same
scoring machinery:

* **global** (Needleman-Wunsch with Gotoh gaps) — both sequences
  aligned end to end; the mode Phase 2's bounded re-alignment uses;
* **semiglobal** ("glocal") — the *query* aligned end to end against a
  *substring* of the subject (leading/trailing subject gaps are free);
  the mode used to locate a gene/read inside a longer sequence.

Scores are computed with the vectorized strip kernel from
:mod:`repro.align.hirschberg`; alignments via full-matrix traceback
(these are small-input utilities — use the linear-space local aligner
for big pairs).
"""

from __future__ import annotations

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .hirschberg import _forward_strip, global_align_linear_space
from .reference import _codes
from .scoring import SubstitutionMatrix
from .traceback import GAP_CHAR, Alignment

__all__ = [
    "nw_score",
    "nw_align",
    "semiglobal_score",
    "semiglobal_align",
]

_NEG = np.int64(-(1 << 40))


def nw_score(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> int:
    """Optimal global (end-to-end) alignment score."""
    a = _codes(s, matrix)
    b = _codes(t, matrix)
    g = gaps.open - gaps.extend
    h = gaps.extend
    if len(a) == 0:
        return -gaps.cost(len(b))
    if len(b) == 0:
        return -gaps.cost(len(a))
    CC, _ = _forward_strip(a, b, matrix.scores.astype(np.int64), g, h, g)
    return int(CC[-1])


def nw_align(
    s: Sequence,
    t: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> Alignment:
    """Optimal global alignment (linear space, Myers-Miller)."""
    aligned_q, aligned_t = global_align_linear_space(s, t, matrix, gaps)
    alignment = Alignment(
        query_id=s.id,
        subject_id=t.id,
        score=0,  # placeholder, replaced below
        aligned_query=aligned_q,
        aligned_subject=aligned_t,
        query_start=0,
        query_end=len(s),
        subject_start=0,
        subject_end=len(t),
    )
    score = alignment.rescore(matrix, gaps)
    expected = nw_score(s, t, matrix, gaps)
    if score != expected:  # pragma: no cover - kernel invariant
        raise AssertionError(
            f"global alignment prices {score}, DP says {expected}"
        )
    return Alignment(
        query_id=s.id,
        subject_id=t.id,
        score=score,
        aligned_query=aligned_q,
        aligned_subject=aligned_t,
        query_start=0,
        query_end=len(s),
        subject_start=0,
        subject_end=len(t),
    )


def _semiglobal_matrix(
    a: np.ndarray,
    b: np.ndarray,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full H/E/F for query-global, subject-local alignment."""
    m, n = len(a), len(b)
    go, ge = gaps.open, gaps.extend
    sub = matrix.scores
    H = np.zeros((m + 1, n + 1), dtype=np.int64)
    E = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    F = np.full((m + 1, n + 1), _NEG, dtype=np.int64)
    for i in range(1, m + 1):
        # Query must be fully consumed: the left edge charges gaps.
        # F mirrors H there so traceback walks the edge vertically.
        H[i, 0] = -(go + (i - 1) * ge)
        F[i, 0] = H[i, 0]
    # Top row stays 0: the subject prefix may be skipped for free.
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(H[i, j - 1] - go, E[i, j - 1] - ge)
            F[i, j] = max(H[i - 1, j] - go, F[i - 1, j] - ge)
            H[i, j] = max(
                H[i - 1, j - 1] + sub[a[i - 1], b[j - 1]],
                E[i, j],
                F[i, j],
            )
    return H, E, F


def semiglobal_score(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> int:
    """Best score of all of *s* against any substring of *t*.

    Vectorized over the query dimension (same strip machinery as the
    linear-space aligner) — safe for long subjects.
    """
    a = _codes(s, matrix)
    b = _codes(t, matrix)
    m, n = len(a), len(b)
    if m == 0:
        return 0  # empty query matches the empty substring for free
    if n == 0:
        return -gaps.cost(m)
    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    profile = matrix.profile_for(a).astype(np.int64)
    H_prev = np.empty(m + 1, dtype=np.int64)
    H_prev[0] = 0
    H_prev[1:] = -(go + np.arange(m, dtype=np.int64) * ge)
    E_prev = np.full(m, _NEG, dtype=np.int64)
    ramp_up = np.arange(m + 1, dtype=np.int64) * ge
    ramp_dn = go + np.arange(m, dtype=np.int64) * ge
    G = np.empty(m + 1, dtype=np.int64)
    best = H_prev[m]  # all-gap alignment at subject position 0
    for j in range(n):
        prof = profile[b[j]]
        E = np.maximum(H_prev[1:] - go, E_prev - ge)
        H = np.maximum(H_prev[:-1] + prof, E)
        while True:
            G[0] = 0  # free subject prefix: H[0][j] = 0
            np.add(H, ramp_up[1:], out=G[1:])
            prefix = np.maximum.accumulate(G)[:-1]
            F = prefix - ramp_dn
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        if H[m - 1] > best:
            best = H[m - 1]
        H_prev[0] = 0
        H_prev[1:] = H
        E_prev = E
    return int(best)


def semiglobal_align(
    s: Sequence,
    t: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> Alignment:
    """Align all of *s* against the best-matching substring of *t*.

    Full-matrix traceback (quadratic space); intended for queries and
    subjects up to a few thousand residues.
    """
    a = _codes(s, matrix)
    b = _codes(t, matrix)
    m, n = len(a), len(b)
    if m == 0 or n == 0:
        return Alignment(
            query_id=s.id, subject_id=t.id,
            score=semiglobal_score(s, t, matrix, gaps),
            aligned_query=s.residues,
            aligned_subject=GAP_CHAR * m,
            query_start=0, query_end=m, subject_start=0, subject_end=0,
        )
    H, E, F = _semiglobal_matrix(a, b, matrix, gaps)
    go, ge = gaps.open, gaps.extend
    sub = matrix.scores
    j = int(H[m].argmax())
    score = int(H[m, j])
    i = m
    q_parts: list[str] = []
    t_parts: list[str] = []
    state = "H"
    while i > 0:
        if state == "H":
            value = H[i, j]
            if j > 0 and value == E[i, j]:
                state = "E"
            elif value == F[i, j]:
                state = "F"
            else:
                q_parts.append(s.residues[i - 1])
                t_parts.append(t.residues[j - 1])
                i -= 1
                j -= 1
        elif state == "E":
            value = E[i, j]
            q_parts.append(GAP_CHAR)
            t_parts.append(t.residues[j - 1])
            state = "H" if value == H[i, j - 1] - go else "E"
            j -= 1
        else:
            value = F[i, j]
            q_parts.append(s.residues[i - 1])
            t_parts.append(GAP_CHAR)
            state = "H" if value == H[i - 1, j] - go else "F"
            i -= 1
    end_j = int(H[m].argmax())
    return Alignment(
        query_id=s.id,
        subject_id=t.id,
        score=score,
        aligned_query="".join(reversed(q_parts)),
        aligned_subject="".join(reversed(t_parts)),
        query_start=0,
        query_end=m,
        subject_start=j,
        subject_end=end_j,
    )
