"""Two-stage search: 8-bit saturating screen + exact rescore.

SWAPHI and SaLoBa (PAPERS.md) both get their largest GCUPS wins from a
locality-aware multi-pass search: a cheap low-precision sweep screens
the whole database, and the exact kernel runs only on the survivors.
This module is that pipeline for the numpy engines:

* :func:`pack_database_binned` re-bins the database into **tight length
  buckets** (:class:`LengthBinnedPack`, the SaLoBa workload-balance
  idea): every subject in a pack falls inside one ``bin_width``-wide
  length bucket, so lanes can be made very wide
  (:data:`DEFAULT_SCREEN_LANES`) without the padding waste that wide
  lanes cause under plain length-sorted packing — and wide lanes are
  what amortizes the per-column numpy dispatch overhead that dominates
  the 32-lane exact sweep;
* :func:`sw_screen_batch` (and the multi-query
  :func:`sw_screen_batch_multi`) run the DP recurrence of
  :func:`~repro.align.intersequence.sw_score_batch` in **int32 with
  scores clipped to ``[0, cap]``** — the numpy analogue of 8-bit
  saturating SIMD registers.  Any clipping event forces some H cell to
  equal the cap, so ``best >= cap`` exactly characterizes the lanes
  whose screened score is a lower bound; every other lane's screened
  score is *bit-exact* (no clip ever fired on its column);
* :func:`sw_score_database_screened` is the two-stage driver: screen
  everything, then rescore with the exact kernel only the sequences
  that saturated **or** clear an adaptive threshold derived from the
  running k-th best exact score (or an explicit ``threshold``).

Because non-saturated screened scores are exact and saturated lanes are
always rescored, the final score vector is bit-exact with
:func:`~repro.align.intersequence.sw_score_database` for *any*
threshold — a pathologically high threshold merely skips redundant
confirmation rescoring, and threshold 0 degenerates to
rescore-everything.  The conformance suite asserts byte-identical final
hits in every execution environment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as SequenceType

import numpy as np

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .gaps import GapModel
from .intersequence import (
    DEFAULT_LANES,
    _padded_profile,
    pack_database,
    sw_score_batch,
)
from .multiquery import MultiQueryProfile, sw_score_database_multi
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = [
    "DEFAULT_BIN_WIDTH",
    "DEFAULT_SCREEN_LANES",
    "SCREEN_CAP",
    "LengthBinnedPack",
    "ScreenStats",
    "ScreenedResult",
    "build_screen_multi_profile",
    "build_screen_profile",
    "pack_database_binned",
    "rescore_screened",
    "rescore_screened_multi",
    "sw_screen_batch",
    "sw_screen_batch_multi",
    "sw_score_database_screened",
    "sw_score_database_screened_multi",
]

#: Saturation ceiling of the screening pass — the 8-bit register limit
#: of the SIMD kernels this sweep models.
SCREEN_CAP = 255

#: Default lane width of the screening sweep.  Far wider than the exact
#: kernel's 32: tight length bins keep the padding waste of wide lanes
#: bounded, and each 8x-wider column amortizes the fixed numpy dispatch
#: cost over 8x the cells.
DEFAULT_SCREEN_LANES = 256

#: Default width of a length bucket: subjects in one pack differ in
#: length by less than this, so at most ``bin_width - 1`` padding rows
#: per lane regardless of how wide the lanes are.
DEFAULT_BIN_WIDTH = 16

#: Strongly negative int32 pad score.  Far below any real substitution
#: score, yet far from the int32 edge so ``pad + ramp`` cannot wrap.
_NEG32 = np.int32(-(1 << 20))


@dataclass(frozen=True)
class LengthBinnedPack:
    """A lane pack whose subjects all fall in one tight length range.

    Same lane-major layout as
    :class:`~repro.align.intersequence.LanePack` — ``residues[j, l]`` is
    the ``j``-th residue code of lane ``l``'s subject, pad code past the
    subject's end — plus the bucket-range bounds, so a pack certifies
    ``bin_lo <= len < bin_hi`` for every lane.  A well-filled pack spans
    a single ``bin_width``-wide bucket; only underfull packs (sparse
    length regions) span several adjacent buckets.
    """

    residues: np.ndarray  # (max_len, lanes) int16
    lengths: np.ndarray  # (lanes,) int64
    order: np.ndarray  # (lanes,) int64 original database indices
    pad_code: int
    bin_lo: int  # inclusive lower length bound of the bucket
    bin_hi: int  # exclusive upper length bound of the bucket

    @property
    def lanes(self) -> int:
        """Number of subject lanes in this pack."""
        return self.residues.shape[1]

    @property
    def cells_per_query_residue(self) -> int:
        """Useful (unpadded) DP cells per query residue."""
        return int(self.lengths.sum())

    @property
    def padding_fraction(self) -> float:
        """Fraction of the pack's DP cells that are padding."""
        total = self.residues.size
        if total == 0:
            return 0.0
        return 1.0 - self.cells_per_query_residue / total


def pack_database_binned(
    database: SequenceDatabase | Iterable[Sequence],
    matrix: SubstitutionMatrix,
    lanes: int = DEFAULT_SCREEN_LANES,
    bin_width: int = DEFAULT_BIN_WIDTH,
    min_fill: int | None = None,
) -> Iterator[LengthBinnedPack]:
    """Convert a database into tightly length-binned lane packs.

    Subjects are bucketed by ``len // bin_width`` (a length exactly on
    a bucket boundary opens the *next* bucket) and packed length-sorted
    into at most *lanes* lanes per pack; empty buckets yield nothing.
    A pack normally closes at its bucket's edge — that is what keeps
    padding tight at any lane width — but a pack still holding fewer
    than *min_fill* lanes (default ``lanes // 8``) absorbs the next
    bucket instead: sparse length regions (the long tail of a skewed
    database) would otherwise fragment into many near-empty packs whose
    per-column dispatch overhead erases the screening win.  A pack of
    ``min_fill`` lanes spanning many buckets costs no more per column
    than the exact kernel's fixed-width packing, so tight bins are a
    pure win where the length histogram is dense and a no-op where it
    is not — the SaLoBa workload-balance tradeoff.
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if min_fill is None:
        min_fill = max(1, lanes // 8)
    if not 0 < min_fill <= lanes:
        raise ValueError("min_fill must be in [1, lanes]")
    records = list(database)
    lengths = [len(r) for r in records]
    # Stable length sort: buckets come out contiguous and the
    # within-bucket order matches plain length-sorted packing.
    order = sorted(range(len(records)), key=lambda i: lengths[i])
    pad_code = matrix.alphabet.size  # one past the last real residue
    start = 0
    while start < len(order):
        first_bucket = lengths[order[start]] // bin_width
        last_bucket = first_bucket
        stop = start
        while stop < len(order) and stop - start < lanes:
            bucket = lengths[order[stop]] // bin_width
            if bucket != last_bucket and stop - start >= min_fill:
                break
            last_bucket = max(last_bucket, bucket)
            stop += 1
        chunk = order[start:stop]
        start = stop
        batch = [records[i] for i in chunk]
        chunk_lengths = np.array([len(r) for r in batch], dtype=np.int64)
        max_len = int(chunk_lengths.max()) if batch else 0
        residues = np.full((max_len, len(batch)), pad_code, dtype=np.int16)
        for lane, record in enumerate(batch):
            residues[: len(record), lane] = _codes(record, matrix)
        yield LengthBinnedPack(
            residues=residues,
            lengths=chunk_lengths,
            order=np.asarray(chunk, dtype=np.int64),
            pad_code=pad_code,
            bin_lo=int(first_bucket * bin_width),
            bin_hi=int((last_bucket + 1) * bin_width),
        )


def build_screen_profile(
    query_codes: np.ndarray, matrix: SubstitutionMatrix
) -> np.ndarray:
    """int32 padded query profile for the screening sweep.

    int32, not int16: the lazy-F ramp adds up to ``m * extend`` to a
    cell, which can overflow int16 for long queries; int32 still halves
    the memory traffic of the exact kernel's int64 state.
    """
    m = len(query_codes)
    profile = np.empty((matrix.alphabet.size + 1, m), dtype=np.int32)
    profile[:-1] = matrix.profile_for(query_codes)
    profile[-1] = _NEG32
    return profile


def sw_screen_batch(
    query_codes: np.ndarray,
    pack: LengthBinnedPack,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    cap: int = SCREEN_CAP,
    profile: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Saturating screen of one pack: ``(scores, saturated)`` per lane.

    Scores clip to ``[0, cap]`` at every step (the 8-bit saturating
    register model).  A lane that never clips computes exactly the
    recurrence of :func:`~repro.align.intersequence.sw_score_batch`, so
    its screened score is exact; any clip forces some H cell to *cap*,
    so ``best >= cap`` — the returned ``saturated`` mask — covers every
    lane whose score might be a lower bound.
    """
    if cap <= 0:
        raise ValueError("cap must be positive")
    m = len(query_codes)
    lanes = pack.lanes
    if m == 0 or lanes == 0:
        return np.zeros(lanes, dtype=np.int64), np.zeros(lanes, dtype=bool)
    if profile is None:
        profile = build_screen_profile(query_codes, matrix)

    go = np.int32(gaps.open)
    ge = np.int32(gaps.extend)
    # One prefix scan is the exact column fixpoint when open >= extend
    # (see multiquery.py); clipping preserves the argument because a
    # clipped lane is saturated and gets rescored regardless.
    single_pass = gaps.open >= gaps.extend
    # DP state in (lanes, m) layout: the per-row profile gather
    # ``profile[pack.residues[j]]`` lands contiguously.
    H_prev = np.zeros((lanes, m + 1), dtype=np.int32)
    E = np.full((lanes, m), _NEG32, dtype=np.int32)
    Ebuf = np.empty_like(E)
    H = np.empty_like(E)
    F = np.empty_like(E)
    ramp_up = (np.arange(1, m + 1, dtype=np.int32) * ge)[None, :]
    ramp_dn = (go + np.arange(m, dtype=np.int32) * ge)[None, :]
    G = np.empty((lanes, m + 1), dtype=np.int32)
    best = np.zeros(lanes, dtype=np.int32)

    for j in range(pack.residues.shape[0]):
        prof = profile[pack.residues[j]]  # (lanes, m), contiguous
        np.subtract(H_prev[:, 1:], go, out=Ebuf)
        np.subtract(E, ge, out=E)
        np.maximum(Ebuf, E, out=E)
        np.add(H_prev[:, :-1], prof, out=H)
        np.maximum(H, E, out=H)
        np.clip(H, 0, cap, out=H)  # the saturating register arithmetic
        while True:
            G[:, 0] = 0
            np.add(H, ramp_up, out=G[:, 1:])
            np.maximum.accumulate(G, axis=1, out=G)
            np.subtract(G[:, :-1], ramp_dn, out=F)
            if single_pass:
                # F <= max(H) <= cap here, so no re-clip is needed.
                np.maximum(H, F, out=H)
                break
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
            np.clip(H, 0, cap, out=H)
        np.maximum(best, H.max(axis=1), out=best)
        H_prev[:, 1:] = H
    scores = best.astype(np.int64)
    return scores, scores >= cap


def build_screen_multi_profile(
    queries_codes: SequenceType[np.ndarray],
    matrix: SubstitutionMatrix,
) -> MultiQueryProfile:
    """Stacked int32 query profiles for the multi-query screen."""
    if not queries_codes:
        raise ValueError("at least one query is required")
    lengths = np.array([len(c) for c in queries_codes], dtype=np.int64)
    m_max = int(lengths.max())
    alpha = matrix.alphabet.size
    profile = np.full(
        (alpha + 1, max(m_max, 1), len(queries_codes)), _NEG32, dtype=np.int32
    )
    for q, codes in enumerate(queries_codes):
        if len(codes):
            profile[:-1, : len(codes), q] = matrix.profile_for(codes)
    profile.setflags(write=False)
    return MultiQueryProfile(profile=profile, lengths=lengths)


def sw_screen_batch_multi(
    mq: MultiQueryProfile,
    pack: LengthBinnedPack,
    gaps: GapModel,
    cap: int = SCREEN_CAP,
) -> tuple[np.ndarray, np.ndarray]:
    """Screen every stacked query against every lane of *pack* at once.

    Returns ``(scores, saturated)`` as ``(Q, lanes)`` arrays in lane
    order — the recurrence of
    :func:`~repro.align.multiquery.sw_score_batch_multi` with the same
    ``[0, cap]`` clipping as :func:`sw_screen_batch`.
    """
    if cap <= 0:
        raise ValueError("cap must be positive")
    m = mq.max_length
    lanes = pack.lanes
    nq = mq.queries
    if lanes == 0 or int(mq.lengths.max(initial=0)) == 0:
        return (
            np.zeros((nq, lanes), dtype=np.int64),
            np.zeros((nq, lanes), dtype=bool),
        )

    profile = mq.profile
    go = np.int32(gaps.open)
    ge = np.int32(gaps.extend)
    single_pass = gaps.open >= gaps.extend
    H_prev = np.zeros((lanes, m + 1, nq), dtype=np.int32)
    E = np.full((lanes, m, nq), _NEG32, dtype=np.int32)
    Ebuf = np.empty_like(E)
    H = np.empty_like(E)
    F = np.empty_like(E)
    ramp_up = (np.arange(1, m + 1, dtype=np.int32) * ge)[None, :, None]
    ramp_dn = (go + np.arange(m, dtype=np.int32) * ge)[None, :, None]
    G = np.empty((lanes, m + 1, nq), dtype=np.int32)
    best = np.zeros((lanes, nq), dtype=np.int32)

    for j in range(pack.residues.shape[0]):
        prof = profile[pack.residues[j]]  # (lanes, m, Q), contiguous
        np.subtract(H_prev[:, 1:], go, out=Ebuf)
        np.subtract(E, ge, out=E)
        np.maximum(Ebuf, E, out=E)
        np.add(H_prev[:, :-1], prof, out=H)
        np.maximum(H, E, out=H)
        np.clip(H, 0, cap, out=H)
        while True:
            G[:, 0] = 0
            np.add(H, ramp_up, out=G[:, 1:])
            np.maximum.accumulate(G, axis=1, out=G)
            np.subtract(G[:, :-1], ramp_dn, out=F)
            if single_pass:
                np.maximum(H, F, out=H)
                break
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
            np.clip(H, 0, cap, out=H)
        np.maximum(best, H.max(axis=1), out=best)
        H_prev[:, 1:] = H
    scores = best.T.astype(np.int64)  # (Q, lanes)
    return scores, scores >= cap


class ScreenStats:
    """Thread-safe screen-stage counters, mirrorable into a registry.

    Counts are always kept locally (tests assert without a registry);
    :meth:`bind` additionally mirrors every increment into the
    ``screen_*`` metric families declared by
    :func:`repro.observability.conventions.screen_instruments`.
    """

    def __init__(self) -> None:
        self.screened = 0
        self.passed = 0
        self.rescored = 0
        self.saturated = 0
        self._lock = threading.Lock()
        self._instruments = None

    def bind(self, registry) -> None:
        """Mirror future counts into *registry*'s ``screen_*`` families."""
        from ..observability.conventions import screen_instruments

        with self._lock:
            self._instruments = screen_instruments(registry)

    def unbind(self) -> None:
        with self._lock:
            self._instruments = None

    def add(self, screened: int, rescored: int, saturated: int) -> None:
        """Account one driver call: *rescored* of *screened* sequences."""
        passed = screened - rescored
        with self._lock:
            self.screened += screened
            self.passed += passed
            self.rescored += rescored
            self.saturated += saturated
            if self._instruments is not None:
                self._instruments.passed.inc(passed)
                self._instruments.rescored.inc(rescored)
                self._instruments.saturated.inc(saturated)


@dataclass(frozen=True)
class ScreenedResult:
    """Outcome of a two-stage screened sweep, in database order.

    ``scores`` are exact (bit-identical to the reference kernel);
    ``screened`` are the raw capped first-pass scores; ``saturated``
    marks lanes that hit the cap (always rescored); ``rescored`` marks
    every sequence the exact kernel re-ran.  Arrays are 1-D ``(N,)``
    for the single-query driver and 2-D ``(Q, N)`` for the multi-query
    driver.
    """

    scores: np.ndarray  # int64, exact
    screened: np.ndarray  # int64, capped first-pass scores
    saturated: np.ndarray  # bool
    rescored: np.ndarray  # bool

    @property
    def rescore_fraction(self) -> float:
        """Fraction of (query, sequence) pairs the exact kernel re-ran."""
        if self.rescored.size == 0:
            return 0.0
        return float(self.rescored.mean())


def _rescore_exact(
    query_codes: np.ndarray,
    database: SequenceDatabase,
    indices: np.ndarray,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    profile: np.ndarray | None = None,
) -> np.ndarray:
    """Exact scores of ``database[indices]``, aligned with *indices*."""
    if profile is None:
        profile = _padded_profile(query_codes, matrix)
    sub = SequenceDatabase(
        [database[int(i)] for i in indices], name="rescore"
    )
    scores = np.zeros(len(sub), dtype=np.int64)
    for pack in pack_database(sub, matrix, lanes=DEFAULT_LANES):
        scores[pack.order] = sw_score_batch(
            query_codes, pack, matrix, gaps, profile=profile
        )
    return scores


def _select_rescore(
    screened: np.ndarray,
    saturated: np.ndarray,
    top: int,
    threshold: int | None,
    kth_exact: int | None,
) -> np.ndarray:
    """Bool mask of non-saturated sequences the exact kernel must re-run.

    Explicit *threshold*: everything whose screened score clears it.
    Adaptive (``threshold is None``): everything whose screened score
    ties or beats *kth_exact*, the running k-th best exact score after
    the saturated rescore — nothing below it can enter the top-k, since
    a non-saturated screened score already equals the exact score.
    """
    candidates = ~saturated
    if threshold is not None:
        return candidates & (screened >= int(threshold))
    if kth_exact is None:
        return candidates  # fewer than top sequences: everything ranks
    return candidates & (screened >= kth_exact)


def sw_score_database_screened(
    query: Sequence,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    top: int = 10,
    threshold: int | None = None,
    lanes: int = DEFAULT_SCREEN_LANES,
    bin_width: int = DEFAULT_BIN_WIDTH,
    cap: int = SCREEN_CAP,
    packs: SequenceType[LengthBinnedPack] | None = None,
    profile: np.ndarray | None = None,
    stats: ScreenStats | None = None,
) -> ScreenedResult:
    """Two-stage sweep: screen everything, rescore only what matters.

    Stage 1 screens the whole database with the capped int32 sweep over
    length-binned packs.  Stage 2 rescores saturated sequences exactly,
    derives the k-th best exact score seen so far, and confirms with
    the exact kernel every sequence whose screened score ties or beats
    it (or clears an explicit *threshold*).  The returned ``scores``
    are bit-exact with :func:`~repro.align.intersequence.sw_score_database`
    for any threshold; *threshold* only moves work between the stages.
    Pre-built *packs* (e.g. from the pack cache or store) and a
    *profile* from :func:`build_screen_profile` skip conversion.
    """
    query_codes = _codes(query, matrix)
    n = len(database)
    screened = np.zeros(n, dtype=np.int64)
    saturated = np.zeros(n, dtype=bool)
    if profile is None:
        profile = build_screen_profile(query_codes, matrix)
    if packs is None:
        packs = pack_database_binned(
            database, matrix, lanes=lanes, bin_width=bin_width
        )
    for pack in packs:
        batch, flags = sw_screen_batch(
            query_codes, pack, matrix, gaps, cap=cap, profile=profile
        )
        screened[pack.order] = batch
        saturated[pack.order] = flags
    return rescore_screened(
        query_codes,
        database,
        matrix,
        gaps,
        screened,
        saturated,
        top=top,
        threshold=threshold,
        stats=stats,
    )


def rescore_screened(
    query_codes: np.ndarray,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    screened: np.ndarray,
    saturated: np.ndarray,
    top: int = 10,
    threshold: int | None = None,
    stats: ScreenStats | None = None,
) -> ScreenedResult:
    """Stage 2 alone: exact rescore of a finished screening pass.

    Split out so engines can drive the screening loop themselves (for
    per-pack progress/cancellation) and still share the selection and
    rescore logic with :func:`sw_score_database_screened`.
    """
    n = len(database)
    scores = screened.copy()
    rescored = np.zeros(n, dtype=bool)
    exact_profile = None
    sat_idx = np.flatnonzero(saturated)
    if sat_idx.size:
        exact_profile = _padded_profile(query_codes, matrix)
        scores[sat_idx] = _rescore_exact(
            query_codes, database, sat_idx, matrix, gaps, exact_profile
        )
        rescored[sat_idx] = True
    kth_exact = None
    if threshold is None and n > top > 0:
        # k-th best of the partially-exact vector (saturated entries
        # are exact now; the rest are exact by the no-clip argument).
        kth_exact = int(np.partition(scores, n - top)[n - top])
    mask = _select_rescore(screened, saturated, top, threshold, kth_exact)
    cand_idx = np.flatnonzero(mask)
    if cand_idx.size:
        scores[cand_idx] = _rescore_exact(
            query_codes, database, cand_idx, matrix, gaps, exact_profile
        )
        rescored[cand_idx] = True
    if stats is not None:
        stats.add(
            screened=n,
            rescored=int(rescored.sum()),
            saturated=int(saturated.sum()),
        )
    return ScreenedResult(
        scores=scores,
        screened=screened,
        saturated=saturated,
        rescored=rescored,
    )


def sw_score_database_screened_multi(
    queries: SequenceType[Sequence],
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    top: int = 10,
    threshold: int | None = None,
    lanes: int = DEFAULT_SCREEN_LANES,
    bin_width: int = DEFAULT_BIN_WIDTH,
    cap: int = SCREEN_CAP,
    packs: SequenceType[LengthBinnedPack] | None = None,
    profile: MultiQueryProfile | None = None,
    stats: ScreenStats | None = None,
) -> ScreenedResult:
    """Multi-query two-stage sweep; arrays are ``(Q, len(database))``.

    All queries share each binned pack's screening sweep (the PR 5
    multi-query tensor, in int32).  Selection runs per query against
    the k-th best *screened* score (a certified lower bound on the
    k-th best exact score, since exact >= screened pointwise); the
    union of survivors across queries is rescored in one exact
    multi-query sweep.
    """
    n = len(database)
    queries_codes = [_codes(q, matrix) for q in queries]
    if profile is None:
        profile = build_screen_multi_profile(queries_codes, matrix)
    nq = profile.queries
    screened = np.zeros((nq, n), dtype=np.int64)
    saturated = np.zeros((nq, n), dtype=bool)
    if packs is None:
        packs = pack_database_binned(
            database, matrix, lanes=lanes, bin_width=bin_width
        )
    for pack in packs:
        batch, flags = sw_screen_batch_multi(profile, pack, gaps, cap=cap)
        screened[:, pack.order] = batch
        saturated[:, pack.order] = flags
    return rescore_screened_multi(
        queries,
        database,
        matrix,
        gaps,
        screened,
        saturated,
        top=top,
        threshold=threshold,
        stats=stats,
    )


def rescore_screened_multi(
    queries: SequenceType[Sequence],
    database: SequenceDatabase,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    screened: np.ndarray,
    saturated: np.ndarray,
    top: int = 10,
    threshold: int | None = None,
    stats: ScreenStats | None = None,
) -> ScreenedResult:
    """Multi-query stage 2: one exact sweep over the survivor union."""
    n = len(database)
    nq = screened.shape[0]
    rescored = np.zeros((nq, n), dtype=bool)
    for q in range(nq):
        kth = None
        if threshold is None and n > top > 0:
            # The k-th best screened score is a certified lower bound on
            # the k-th best exact score (exact >= screened pointwise).
            kth = int(np.partition(screened[q], n - top)[n - top])
        rescored[q] = saturated[q] | _select_rescore(
            screened[q], saturated[q], top, threshold, kth
        )
    scores = screened.copy()
    union = np.flatnonzero(rescored.any(axis=0))
    if union.size:
        sub = SequenceDatabase(
            [database[int(i)] for i in union], name="rescore"
        )
        exact = sw_score_database_multi(
            queries, sub, matrix, gaps, lanes=DEFAULT_LANES
        )
        # Overwriting every query's union columns is safe: exact values
        # equal the true scores, and non-selected entries there are
        # non-saturated, i.e. already exact.
        scores[:, union] = exact
    if stats is not None:
        stats.add(
            screened=int(rescored.size),
            rescored=int(rescored.sum()),
            saturated=int(saturated.sum()),
        )
    return ScreenedResult(
        scores=scores,
        screened=screened,
        saturated=saturated,
        rescored=rescored,
    )
