"""Substitution matrices and scoring schemes.

Section II of the paper scores each aligned column with a punctuation
``ma`` for a match, a penalty ``mi`` for a mismatch, and a penalty ``g``
per gap.  Protein database search in practice (and in CUDASW++ /
Farrar's code, which the paper's engines run) replaces ``ma``/``mi``
with a 20x20 substitution matrix such as BLOSUM62.  This module supplies
both: :func:`match_mismatch` builds a DNA-style matrix from ``ma``/``mi``
and the BLOSUM constants provide the protein matrices.

All matrices are dense ``(size, size)`` int16 arrays indexed by the
residue codes of the owning :class:`~repro.sequences.alphabet.Alphabet`,
so the per-cell substitution lookup in the kernels is a single fancy
index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..sequences.alphabet import DNA, PROTEIN, RNA, Alphabet

__all__ = [
    "SubstitutionMatrix",
    "match_mismatch",
    "BLOSUM62",
    "BLOSUM50",
    "DNA_SIMPLE",
    "get_matrix",
    "load_matrix_file",
]


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A named substitution matrix bound to an alphabet."""

    name: str
    alphabet: Alphabet
    scores: np.ndarray

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=np.int16)
        n = self.alphabet.size
        if scores.shape != (n, n):
            raise ValueError(
                f"matrix shape {scores.shape} does not match alphabet size {n}"
            )
        if not np.array_equal(scores, scores.T):
            raise ValueError(f"substitution matrix {self.name!r} not symmetric")
        scores.flags.writeable = False
        object.__setattr__(self, "scores", scores)

    def score(self, a: str, b: str) -> int:
        """Substitution score for residue letters *a* and *b*."""
        return int(
            self.scores[self.alphabet.code_of(a), self.alphabet.code_of(b)]
        )

    def profile_for(self, query_codes: np.ndarray) -> np.ndarray:
        """Query profile: ``profile[c, i] = scores[c, query[i]]``.

        The *query profile* is the memory layout every vectorized SW
        implementation precomputes (Farrar Fig. 1, CUDASW++ "packed
        profile"): for each possible subject residue ``c`` it stores the
        score against every query position, so the inner loop reads one
        contiguous row per subject residue.
        """
        return np.ascontiguousarray(self.scores[:, query_codes])

    @property
    def digest(self) -> str:
        """Content digest of the score table and its alphabet.

        Two matrices that would score any alignment identically share a
        digest; two matrices that differ anywhere cannot.  The caches
        and the pack store key on this instead of :attr:`name`, so two
        distinct customs that happen to share a display name can never
        alias one entry (``name`` is cosmetic; the digest is identity).
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(self.alphabet.letters.encode("ascii"))
            h.update(self.alphabet.wildcard.encode("ascii"))
            h.update(self.scores.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def max_score(self) -> int:
        """Largest substitution score in the matrix."""
        return int(self.scores.max())

    @property
    def min_score(self) -> int:
        """Smallest substitution score in the matrix."""
        return int(self.scores.min())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubstitutionMatrix({self.name!r}, {self.alphabet.name})"


def match_mismatch(
    match: int = 1,
    mismatch: int = -1,
    alphabet: Alphabet = DNA,
    wildcard_score: int = 0,
    name: str | None = None,
) -> SubstitutionMatrix:
    """Build the paper's ``ma``/``mi`` scheme as a matrix.

    Wildcard residues score *wildcard_score* against everything
    (including themselves), the convention used for ``N`` in nucleotide
    search.
    """
    n = alphabet.size
    scores = np.full((n, n), mismatch, dtype=np.int16)
    np.fill_diagonal(scores, match)
    wc = alphabet.wildcard_code
    scores[wc, :] = wildcard_score
    scores[:, wc] = wildcard_score
    return SubstitutionMatrix(
        name=name or f"match{match}/mismatch{mismatch}",
        alphabet=alphabet,
        scores=scores,
    )


def _parse_blosum(name: str, text: str) -> SubstitutionMatrix:
    """Parse the whitespace table literals below into a matrix."""
    rows = [line.split() for line in text.strip().splitlines()]
    order = rows[0]
    if "".join(order) != PROTEIN.letters:
        raise AssertionError(f"{name} column order mismatch")
    n = PROTEIN.size
    scores = np.zeros((n, n), dtype=np.int16)
    for row in rows[1:]:
        i = PROTEIN.code_of(row[0])
        scores[i, :] = [int(v) for v in row[1:]]
    return SubstitutionMatrix(name=name, alphabet=PROTEIN, scores=scores)


# NCBI BLOSUM62, 24x24, row/column order ARNDCQEGHILKMFPSTWYVBZX*.
_BLOSUM62_TEXT = """
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""

# NCBI BLOSUM50, same layout.  CUDASW++ 2.0's other stock matrix.
_BLOSUM50_TEXT = """
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  5 -2 -1 -2 -1 -1 -1  0 -2 -1 -2 -1 -1 -3 -1  1  0 -3 -2  0 -2 -1 -1 -5
R -2  7 -1 -2 -4  1  0 -3  0 -4 -3  3 -2 -3 -3 -1 -1 -3 -1 -3 -1  0 -1 -5
N -1 -1  7  2 -2  0  0  0  1 -3 -4  0 -2 -4 -2  1  0 -4 -2 -3  4  0 -1 -5
D -2 -2  2  8 -4  0  2 -1 -1 -4 -4 -1 -4 -5 -1  0 -1 -5 -3 -4  5  1 -1 -5
C -1 -4 -2 -4 13 -3 -3 -3 -3 -2 -2 -3 -2 -2 -4 -1 -1 -5 -3 -1 -3 -3 -2 -5
Q -1  1  0  0 -3  7  2 -2  1 -3 -2  2  0 -4 -1  0 -1 -1 -1 -3  0  4 -1 -5
E -1  0  0  2 -3  2  6 -3  0 -4 -3  1 -2 -3 -1 -1 -1 -3 -2 -3  1  5 -1 -5
G  0 -3  0 -1 -3 -2 -3  8 -2 -4 -4 -2 -3 -4 -2  0 -2 -3 -3 -4 -1 -2 -2 -5
H -2  0  1 -1 -3  1  0 -2 10 -4 -3  0 -1 -1 -2 -1 -2 -3  2 -4  0  0 -1 -5
I -1 -4 -3 -4 -2 -3 -4 -4 -4  5  2 -3  2  0 -3 -3 -1 -3 -1  4 -4 -3 -1 -5
L -2 -3 -4 -4 -2 -2 -3 -4 -3  2  5 -3  3  1 -4 -3 -1 -2 -1  1 -4 -3 -1 -5
K -1  3  0 -1 -3  2  1 -2  0 -3 -3  6 -2 -4 -1  0 -1 -3 -2 -3  0  1 -1 -5
M -1 -2 -2 -4 -2  0 -2 -3 -1  2  3 -2  7  0 -3 -2 -1 -1  0  1 -3 -1 -1 -5
F -3 -3 -4 -5 -2 -4 -3 -4 -1  0  1 -4  0  8 -4 -3 -2  1  4 -1 -4 -4 -2 -5
P -1 -3 -2 -1 -4 -1 -1 -2 -2 -3 -4 -1 -3 -4 10 -1 -1 -4 -3 -3 -2 -1 -2 -5
S  1 -1  1  0 -1  0 -1  0 -1 -3 -3  0 -2 -3 -1  5  2 -4 -2 -2  0  0 -1 -5
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  2  5 -3 -2  0  0 -1  0 -5
W -3 -3 -4 -5 -5 -1 -3 -3 -3 -3 -2 -3 -1  1 -4 -4 -3 15  2 -3 -5 -2 -3 -5
Y -2 -1 -2 -3 -3 -1 -2 -3  2 -1 -1 -2  0  4 -3 -2 -2  2  8 -1 -3 -2 -1 -5
V  0 -3 -3 -4 -1 -3 -3 -4 -4  4  1 -3  1 -1 -3 -2  0 -3 -1  5 -4 -3 -1 -5
B -2 -1  4  5 -3  0  1 -1  0 -4 -4  0 -3 -4 -2  0  0 -5 -3 -4  5  2 -1 -5
Z -1  0  0  1 -3  4  5 -2  0 -3 -3  1 -1 -4 -1  0 -1 -2 -2 -3  2  5 -1 -5
X -1 -1 -1 -1 -2 -1 -1 -2 -1 -1 -1 -1 -1 -2 -2 -1  0 -3 -1 -1 -1 -1 -1 -5
* -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5 -5  1
"""

#: The default matrix for protein search (CUDASW++/SSEARCH default).
BLOSUM62 = _parse_blosum("BLOSUM62", _BLOSUM62_TEXT)

#: BLOSUM50, preferred for more divergent homologs.
BLOSUM50 = _parse_blosum("BLOSUM50", _BLOSUM50_TEXT)

#: The paper's Fig. 1 example scheme (ma=+1, mi=-1) for DNA.
DNA_SIMPLE = match_mismatch(1, -1, alphabet=DNA, name="dna+1/-1")

_REGISTRY: dict[str, SubstitutionMatrix] = {
    "blosum62": BLOSUM62,
    "blosum50": BLOSUM50,
    "dna": DNA_SIMPLE,
}


def load_matrix_file(
    path: str,
    alphabet: Alphabet = PROTEIN,
    name: str | None = None,
) -> SubstitutionMatrix:
    """Parse an NCBI-format substitution matrix file.

    The standard distribution format: ``#`` comment lines, a header row
    of residue letters, then one row per residue starting with its
    letter.  Residues of *alphabet* missing from the file score the
    file's minimum (the conservative choice for ambiguity codes a
    custom matrix omits); matrices are validated for symmetry.
    """
    import os

    with open(os.fspath(path), "r", encoding="ascii") as handle:
        lines = [
            line.rstrip()
            for line in handle
            if line.strip() and not line.lstrip().startswith("#")
        ]
    if not lines:
        raise ValueError(f"matrix file {path!r} is empty")
    columns = lines[0].split()
    parsed: dict[tuple[str, str], int] = {}
    for line in lines[1:]:
        parts = line.split()
        row_letter = parts[0].upper()
        values = parts[1:]
        if len(values) != len(columns):
            raise ValueError(
                f"row {row_letter!r} has {len(values)} values, "
                f"expected {len(columns)}"
            )
        for column_letter, value in zip(columns, values):
            parsed[(row_letter, column_letter.upper())] = int(value)
    n = alphabet.size
    minimum = min(parsed.values())
    scores = np.full((n, n), minimum, dtype=np.int16)
    for i, a in enumerate(alphabet.letters):
        for j, b in enumerate(alphabet.letters):
            if (a, b) in parsed:
                scores[i, j] = parsed[(a, b)]
            elif (b, a) in parsed:
                scores[i, j] = parsed[(b, a)]
    return SubstitutionMatrix(
        name=name or os.path.basename(os.fspath(path)),
        alphabet=alphabet,
        scores=scores,
    )


def get_matrix(name: str) -> SubstitutionMatrix:
    """Look a stock matrix up by case-insensitive name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def default_matrix_for(alphabet: Alphabet) -> SubstitutionMatrix:
    """Sensible default: BLOSUM62 for protein, +1/-1 for nucleic acids."""
    if alphabet is PROTEIN:
        return BLOSUM62
    if alphabet is RNA:
        return match_mismatch(1, -1, alphabet=RNA, name="rna+1/-1")
    return DNA_SIMPLE
