"""Banded Smith-Waterman: restrict the DP to a diagonal band.

When two sequences are known to be globally similar (re-scoring a
candidate hit, comparative genomics of orthologs), the optimal path
stays close to the main diagonal and cells with ``|i - j| > band`` can
be skipped, reducing cost from ``O(mn)`` to ``O((m + n) * band)``.

The band is expressed in *diagonal offset* coordinates: cell ``(i, j)``
is inside the band iff ``-band <= (i - j) - shift <= band``, where the
optional *shift* centres the band off the main diagonal for sequences
of different lengths (default: centred on the corner-to-corner
diagonal).

Banded scores are a lower bound of the unbanded optimum and equal it
whenever the optimal path fits the band; both facts are asserted by the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import _codes
from .scoring import SubstitutionMatrix

__all__ = ["BandedResult", "sw_score_banded"]

_NEG = np.int64(-(1 << 40))


@dataclass(frozen=True)
class BandedResult:
    """Score of a band-restricted local alignment."""

    score: int
    band: int
    cells: int  # cells actually computed (inside the band)


def sw_score_banded(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    band: int,
    shift: int | None = None,
) -> BandedResult:
    """Best local alignment score within the diagonal band.

    Parameters
    ----------
    band:
        Half-width of the band (>= 0); ``band >= max(m, n)`` degenerates
        to the full DP.
    shift:
        Band centre in ``i - j`` units.  Defaults to ``(m - n) // 2`` so
        the band connects the two corners.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    m, n = len(s_codes), len(t_codes)
    if m == 0 or n == 0:
        return BandedResult(score=0, band=band, cells=0)
    if shift is None:
        shift = (m - n) // 2

    go = np.int64(gaps.open)
    ge = np.int64(gaps.extend)
    profile = matrix.profile_for(s_codes).astype(np.int64)

    # The DP column for subject position j covers query rows
    # [lo_j, hi_j] with lo_j = max(1, j + shift - band) and
    # hi_j = min(m, j + shift + band).  Columns are stored as dense
    # windows of width 2*band + 1 anchored at row j + shift - band, so
    # moving to column j+1 shifts the window down by one row: the
    # "diagonal" neighbour of window slot w is the *same* slot of the
    # previous window, and the "vertical" neighbour is slot w - 1 ...
    # wait, anchor(j) = j + shift - band, so row r sits at slot
    # r - anchor(j); in column j+1 the same row sits one slot lower.
    width = 2 * band + 1
    H_prev = np.zeros(width, dtype=np.int64)  # window for column j
    E_prev = np.full(width, _NEG, dtype=np.int64)
    best = np.int64(0)
    cells = 0

    def window_rows(j: int) -> tuple[int, int, int]:
        anchor = j + shift - band
        lo = max(1, anchor)
        hi = min(m, anchor + width - 1)
        return anchor, lo, hi

    # Column 0 (j = 0 in DP coordinates) is the all-zero H boundary; the
    # window representation of it must expose H = 0 for in-range rows.
    prev_anchor = 0 + shift - band  # anchor of the j=0 window
    for j in range(1, n + 1):
        anchor, lo, hi = window_rows(j)
        if lo > hi:
            # Band fell entirely outside the matrix for this column.
            H_prev = np.zeros(width, dtype=np.int64)
            E_prev = np.full(width, _NEG, dtype=np.int64)
            prev_anchor = anchor
            continue
        span = hi - lo + 1
        cells += span
        rows = np.arange(lo, hi + 1)

        def prev_window(values: np.ndarray, offset: int, boundary: np.int64):
            """Previous column's value at row ``r + offset`` per row r.

            Rows outside the previous window (or the matrix) read
            *boundary* — the banded DP treats off-band cells as
            unreachable.
            """
            ref_rows = rows + offset
            slots = ref_rows - prev_anchor
            ok = (
                (slots >= 0)
                & (slots < width)
                & (ref_rows >= 0)
                & (ref_rows <= m)
            )
            return np.where(
                ok, values[np.clip(slots, 0, width - 1)], boundary
            )

        h_diag = prev_window(H_prev, -1, _NEG)
        h_diag = np.where(rows - 1 == 0, 0, h_diag)  # H[0][j-1] = 0
        h_left = prev_window(H_prev, 0, _NEG)
        h_left = np.where(rows == 0, 0, h_left)
        e_left = prev_window(E_prev, 0, _NEG)

        E = np.maximum(h_left - go, e_left - ge)
        H = np.maximum(h_diag + profile[t_codes[j - 1]][rows - 1], E)
        np.maximum(H, 0, out=H)
        # F (vertical) dependency within the column: prefix scan over
        # the in-band rows (row lo - 1 contributes H = 0 boundary only
        # when lo == 1).
        ramp = np.arange(span, dtype=np.int64) * ge
        while True:
            G = H + ramp
            prefix = np.maximum.accumulate(G)
            F = np.full(span, _NEG, dtype=np.int64)
            if span > 1:
                F[1:] = prefix[:-1] - go - ramp[1:] + ge
            if lo == 1:
                # H[0][j] = 0 can open a gap into the first band row.
                F = np.maximum(F, -(go + (rows - 1) * ge))
            raised = F > H
            if not raised.any():
                break
            np.maximum(H, F, out=H)
        column_best = H.max()
        if column_best > best:
            best = column_best

        new_H = np.full(width, _NEG, dtype=np.int64)
        new_E = np.full(width, _NEG, dtype=np.int64)
        slots = rows - anchor
        new_H[slots] = H
        new_E[slots] = E
        H_prev, E_prev = new_H, new_E
        prev_anchor = anchor

    return BandedResult(score=int(best), band=band, cells=cells)
