"""Standard output formats for search results and alignments.

Downstream tooling expects search output in the de-facto standard
formats, so the library emits them:

* **tabular** — BLAST's ``-outfmt 6`` twelve-column format
  (qseqid sseqid pident length mismatch gapopen qstart qend sstart send
  evalue bitscore), the lingua franca of homology pipelines;
* **pairwise report** — a human-readable block per hit, in the style of
  SSEARCH/BLAST text output.

Columns that require an alignment (identity, mismatches, gap opens,
coordinates) are computed from :class:`~repro.align.traceback.Alignment`
objects; score-only hits emit the score columns with placeholders.
"""

from __future__ import annotations

import io
from typing import Iterable, TextIO

from .api import SearchHit, SearchResult
from .traceback import GAP_CHAR, Alignment

__all__ = [
    "alignment_to_tabular",
    "hits_to_tabular",
    "write_tabular",
    "pairwise_report",
]

_TABULAR_HEADER = (
    "qseqid\tsseqid\tpident\tlength\tmismatch\tgapopen\t"
    "qstart\tqend\tsstart\tsend\tevalue\tbitscore"
)


def _gap_opens(alignment: Alignment) -> int:
    opens = 0
    in_gap = False
    for a, b in zip(alignment.aligned_query, alignment.aligned_subject):
        if a == GAP_CHAR or b == GAP_CHAR:
            if not in_gap:
                opens += 1
            in_gap = True
        else:
            in_gap = False
    return opens


def alignment_to_tabular(
    alignment: Alignment,
    evalue: float | None = None,
    bit_score: float | None = None,
) -> str:
    """One BLAST outfmt-6 line for an alignment."""
    mismatches = sum(
        a != b and a != GAP_CHAR and b != GAP_CHAR
        for a, b in zip(alignment.aligned_query, alignment.aligned_subject)
    )
    fields = [
        alignment.query_id,
        alignment.subject_id,
        f"{100.0 * alignment.identity:.2f}",
        str(alignment.length),
        str(mismatches),
        str(_gap_opens(alignment)),
        str(alignment.query_start + 1),
        str(alignment.query_end),
        str(alignment.subject_start + 1),
        str(alignment.subject_end),
        f"{evalue:.2g}" if evalue is not None else "*",
        f"{bit_score:.1f}" if bit_score is not None else str(alignment.score),
    ]
    return "\t".join(fields)


def hits_to_tabular(result: SearchResult) -> list[str]:
    """Score-only tabular lines for a search result (no alignments).

    Alignment-derived columns are ``*`` placeholders; score/statistics
    columns are real.  Use :func:`alignment_to_tabular` after Phase 2
    for fully populated rows.
    """
    lines = []
    for hit in result.hits:
        fields = [
            result.query_id,
            hit.subject_id,
            "*",  # pident needs an alignment
            "*",
            "*",
            "*",
            "*",
            "*",
            "*",
            "*",
            f"{hit.evalue:.2g}" if hit.evalue is not None else "*",
            f"{hit.bit_score:.1f}" if hit.bit_score is not None else str(
                hit.score
            ),
        ]
        lines.append("\t".join(fields))
    return lines


def write_tabular(
    rows: Iterable[str],
    destination: TextIO | None = None,
    header: bool = True,
) -> str:
    """Assemble (and optionally write) a tabular report."""
    buffer = io.StringIO()
    if header:
        buffer.write("# " + _TABULAR_HEADER + "\n")
    for row in rows:
        buffer.write(row + "\n")
    text = buffer.getvalue()
    if destination is not None:
        destination.write(text)
    return text


def pairwise_report(
    alignments: Iterable[tuple[Alignment, SearchHit | None]],
    database_name: str = "",
    width: int = 60,
) -> str:
    """SSEARCH-style text report: one block per alignment."""
    blocks = []
    for alignment, hit in alignments:
        header = [f">>{alignment.subject_id}"]
        stats = [f"score: {alignment.score}"]
        if hit is not None and hit.bit_score is not None:
            stats.append(f"bits: {hit.bit_score:.1f}")
        if hit is not None and hit.evalue is not None:
            stats.append(f"E({database_name or 'db'}): {hit.evalue:.2g}")
        stats.append(f"identity: {alignment.identity:.1%}")
        header.append("  ".join(stats))
        header.append(alignment.pretty(width=width))
        blocks.append("\n".join(header))
    return "\n\n".join(blocks)
