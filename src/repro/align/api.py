"""High-level alignment and database-search API.

These are the entry points applications use; the kernels underneath are
selected automatically (or explicitly via ``kernel=``):

* ``"reference"`` — textbook loops (ground truth; small inputs);
* ``"scan"`` — numpy column-scan, the fast single-pair scorer;
* ``"striped"`` — the paper's adapted-Farrar SSE engine;
* ``"intersequence"`` — the CUDASW++-style many-subjects engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .columnwise import sw_score_scan
from .gaps import DEFAULT_GAPS, GapModel
from .hirschberg import align_linear_space
from .intersequence import sw_score_database
from .reference import sw_score_reference
from .scoring import SubstitutionMatrix, default_matrix_for
from .striped import sw_score_striped
from .traceback import Alignment, sw_align_reference
from .wavefront import sw_score_wavefront

__all__ = [
    "SearchHit",
    "SearchResult",
    "sw_score",
    "sw_align",
    "database_search",
    "search_and_align",
]

#: Above this many DP cells, :func:`sw_align` switches from quadratic
#: space (reference traceback) to linear space (Myers-Miller).
_FULL_MATRIX_CELL_LIMIT = 4_000_000


def _resolve(
    s: Sequence, matrix: SubstitutionMatrix | None
) -> SubstitutionMatrix:
    if matrix is not None:
        return matrix
    assert s.alphabet is not None
    return default_matrix_for(s.alphabet)


def sw_score(
    query: Sequence,
    subject: Sequence,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapModel = DEFAULT_GAPS,
    kernel: str = "scan",
) -> int:
    """Smith-Waterman similarity of *query* x *subject* (Phase 1 only)."""
    matrix = _resolve(query, matrix)
    if kernel == "scan":
        return sw_score_scan(query, subject, matrix, gaps).score
    if kernel == "striped":
        return sw_score_striped(query, subject, matrix, gaps).score
    if kernel == "reference":
        return sw_score_reference(query, subject, matrix, gaps)
    if kernel == "wavefront":
        return sw_score_wavefront(query, subject, matrix, gaps).score
    if kernel == "intersequence":
        db = SequenceDatabase([subject], name=subject.id)
        return int(sw_score_database(query, db, matrix, gaps)[0])
    raise ValueError(f"unknown kernel {kernel!r}")


def sw_align(
    query: Sequence,
    subject: Sequence,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapModel = DEFAULT_GAPS,
) -> Alignment:
    """Optimal local alignment (Phases 1 + 2).

    Small problems run the quadratic-space textbook traceback; larger
    ones switch to the linear-space Myers-Miller retrieval, so this is
    safe for arbitrarily long inputs.
    """
    matrix = _resolve(query, matrix)
    if len(query) * len(subject) <= _FULL_MATRIX_CELL_LIMIT:
        return sw_align_reference(query, subject, matrix, gaps)
    return align_linear_space(query, subject, matrix, gaps)


@dataclass(frozen=True)
class SearchHit:
    """One ranked database hit.

    ``evalue``/``bit_score`` are populated when the search ran with
    Karlin-Altschul statistics (see :func:`database_search`'s
    ``statistics`` parameter); ``None`` otherwise.  ``strand`` is ``"-"``
    when a two-strand nucleotide search matched the reverse complement
    of the query.
    """

    subject_id: str
    subject_index: int
    score: int
    subject_length: int
    evalue: float | None = None
    bit_score: float | None = None
    strand: str = "+"


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one query x database search (one paper *task*)."""

    query_id: str
    database_name: str
    hits: tuple[SearchHit, ...]
    cells: int

    @property
    def best(self) -> SearchHit:
        """The top-ranked hit (raises on an empty result)."""
        if not self.hits:
            raise ValueError("empty search result")
        return self.hits[0]

    def scores(self) -> list[int]:
        """Hit scores, best-first."""
        return [hit.score for hit in self.hits]


def database_search(
    query: Sequence,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapModel = DEFAULT_GAPS,
    top: int = 10,
    lanes: int = 32,
    statistics: "KarlinAltschul | str | None" = None,
    strands: str = "forward",
    evalue_cutoff: float | None = None,
) -> SearchResult:
    """Rank every database record by SW similarity to *query*.

    This is exactly the unit of work the paper calls a *task*; the
    inter-sequence kernel scores the whole database in lane batches and
    the *top* hits are returned best-first (ties broken by database
    order, matching the deterministic merge the master performs).

    ``statistics`` annotates hits with E-values and bit scores: pass a
    fitted :class:`~repro.align.statistics.KarlinAltschul`, or
    ``"auto"`` to use the pre-fit parameters of a stock scoring system
    (silently skipped when none are on record).

    ``strands="both"`` (nucleotide queries only) also scores the
    reverse complement and keeps each subject's better strand, reported
    in :attr:`SearchHit.strand` — the BLASTN convention.

    ``evalue_cutoff`` drops hits whose expected chance-occurrence count
    exceeds the threshold (requires statistics; BLAST's default is 10).
    """
    from .statistics import KarlinAltschul, stock_parameters

    matrix = _resolve(query, matrix)
    params: KarlinAltschul | None
    if statistics == "auto":
        params = stock_parameters(matrix, gaps)
    else:
        params = statistics  # type: ignore[assignment]

    scores = sw_score_database(query, database, matrix, gaps, lanes=lanes)
    if strands == "both":
        from .dna import reverse_complement

        reverse_scores = sw_score_database(
            reverse_complement(query), database, matrix, gaps, lanes=lanes
        )
        hit_strands = np.where(reverse_scores > scores, "-", "+")
        scores = np.maximum(scores, reverse_scores)
    elif strands == "forward":
        hit_strands = np.full(len(scores), "+", dtype=object)
    else:
        raise ValueError("strands must be 'forward' or 'both'")
    if top <= 0:
        top = len(scores)
    top = min(top, len(scores))
    if top == 0:
        ranked: list[int] = []
    else:
        # Stable best-first ranking: sort by (-score, index).
        ranked = list(np.lexsort((np.arange(len(scores)), -scores))[:top])
    residues = database.total_residues
    hits = tuple(
        SearchHit(
            subject_id=database[i].id,
            subject_index=int(i),
            score=int(scores[i]),
            subject_length=len(database[i]),
            evalue=(
                params.evalue(int(scores[i]), len(query), residues)
                if params is not None
                else None
            ),
            bit_score=(
                params.bit_score(int(scores[i])) if params is not None else None
            ),
            strand=str(hit_strands[i]),
        )
        for i in ranked
    )
    if evalue_cutoff is not None:
        if params is None:
            raise ValueError(
                "evalue_cutoff requires statistics (pass statistics='auto' "
                "or a fitted KarlinAltschul)"
            )
        hits = tuple(
            hit for hit in hits
            if hit.evalue is not None and hit.evalue <= evalue_cutoff
        )
    return SearchResult(
        query_id=query.id,
        database_name=database.name,
        hits=hits,
        cells=len(query) * residues,
    )


def search_and_align(
    query: Sequence,
    database: SequenceDatabase,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapModel = DEFAULT_GAPS,
    top: int = 10,
    lanes: int = 32,
    statistics: "KarlinAltschul | str | None" = "auto",
) -> list[tuple[Alignment, SearchHit]]:
    """The complete SSEARCH-style pipeline: score, rank, then align.

    Phase 1 scores the whole database with the inter-sequence kernel;
    Phase 2 retrieves alignments only for the *top* hits (the standard
    production split — traceback for every subject would multiply the
    cost for results nobody reads).  Returns ``(alignment, hit)`` pairs
    best-first, ready for
    :func:`repro.align.io_formats.pairwise_report` or
    :func:`repro.align.io_formats.alignment_to_tabular`.
    """
    matrix = _resolve(query, matrix)
    result = database_search(
        query, database, matrix, gaps, top=top, lanes=lanes,
        statistics=statistics,
    )
    pairs: list[tuple[Alignment, SearchHit]] = []
    for hit in result.hits:
        alignment = sw_align(
            query, database[hit.subject_index], matrix, gaps
        )
        if alignment.score != hit.score:  # pragma: no cover - invariant
            raise AssertionError(
                f"phase-2 score {alignment.score} != phase-1 {hit.score} "
                f"for {hit.subject_id}"
            )
        pairs.append((alignment, hit))
    return pairs
