"""Reference Smith-Waterman: the textbook algorithm of Section II-A.

Phase 1 builds the full similarity matrix ``H`` (plus Gotoh's ``E``/``F``
for affine gaps) with plain Python loops — quadratic time *and* space,
exactly as the paper describes, including the zero floor that makes the
alignment local.  Phase 2 (:mod:`repro.align.traceback`) walks the
matrices back from the maximum.

This implementation is deliberately unoptimized: it is the ground truth
that every vectorized kernel (:mod:`repro.align.columnwise`,
:mod:`repro.align.striped`, :mod:`repro.align.intersequence`) is tested
against, so clarity beats speed.  Use it only for sequences up to a few
thousand residues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.records import Sequence
from .gaps import GapModel
from .scoring import SubstitutionMatrix

__all__ = ["DPMatrices", "sw_matrix", "sw_score_reference"]

#: Sentinel for "minus infinity" in int32 DP cells, chosen so that
#: subtracting any realistic gap penalty cannot wrap around.
NEG_INF = np.iinfo(np.int32).min // 4


@dataclass
class DPMatrices:
    """Phase-1 output: the dynamic-programming matrices and the optimum.

    Attributes
    ----------
    H, E, F:
        ``(m+1, n+1)`` int32 arrays.  ``H[i, j]`` is the best local
        alignment score of prefixes ``s[:i]`` / ``t[:j]`` ending at
        ``(i, j)``; ``E`` ends in a gap in *s* (horizontal move), ``F``
        in a gap in *t* (vertical move).  For linear gaps ``E``/``F``
        are still populated (they make traceback uniform).
    score:
        ``max(H)`` — the similarity of the two sequences.
    end:
        ``(i, j)`` of the first maximal cell in row-major order.
    """

    H: np.ndarray
    E: np.ndarray
    F: np.ndarray
    score: int
    end: tuple[int, int]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the DP matrices: (m + 1, n + 1)."""
        return self.H.shape


def sw_matrix(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> DPMatrices:
    """Compute the full SW similarity matrices for *s* x *t*.

    Implements Eq. 1 of the paper generalized to a substitution matrix,
    and Gotoh's three-matrix recurrence for affine gaps.  The first row
    and column of ``H`` are zero; ``E``/``F`` boundaries are minus
    infinity (no gap can start before the sequences do).
    """
    s_codes = _codes(s, matrix)
    t_codes = _codes(t, matrix)
    m, n = len(s_codes), len(t_codes)
    go, ge = gaps.open, gaps.extend

    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    sub = matrix.scores

    best = 0
    best_pos = (0, 0)
    for i in range(1, m + 1):
        si = s_codes[i - 1]
        for j in range(1, n + 1):
            # E: alignment ending with a gap in s (consumes t[j-1]).
            e = max(H[i, j - 1] - go, E[i, j - 1] - ge)
            # F: alignment ending with a gap in t (consumes s[i-1]).
            f = max(H[i - 1, j] - go, F[i - 1, j] - ge)
            diag = H[i - 1, j - 1] + sub[si, t_codes[j - 1]]
            h = max(0, diag, e, f)
            E[i, j] = e
            F[i, j] = f
            H[i, j] = h
            if h > best:
                best = int(h)
                best_pos = (i, j)
    return DPMatrices(H=H, E=E, F=F, score=best, end=best_pos)


def sw_score_reference(
    s: Sequence | str,
    t: Sequence | str,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> int:
    """Similarity score only (convenience wrapper around :func:`sw_matrix`)."""
    return sw_matrix(s, t, matrix, gaps).score


def _codes(seq: Sequence | str, matrix: SubstitutionMatrix) -> np.ndarray:
    """Encode *seq* with the matrix's alphabet (strings are encoded ad hoc)."""
    if isinstance(seq, Sequence):
        if seq.alphabet is not matrix.alphabet:
            # Re-encode rather than trusting a foreign alphabet's codes.
            return matrix.alphabet.encode(seq.residues)
        return seq.codes
    return matrix.alphabet.encode(seq)
