"""Karlin-Altschul statistics: E-values and bit scores for SW search.

Raw SW similarities are not comparable across queries or databases; all
production search tools (SSEARCH, BLAST, CUDASW++'s publications) rank
hits by the Karlin-Altschul *extreme-value* statistics instead:

.. math::

   E = K m n e^{-\\lambda S}

where ``m``/``n`` are the query/database sizes and ``lambda``/``K``
depend on the scoring system.  For *gapped* alignments those parameters
have no closed form; the standard practice — followed here — is to fit
a Gumbel distribution to the optimal scores of random sequence
comparisons (island/moment methods).

:func:`calibrate` performs that fit with this package's own kernels and
background composition, so the statistics are self-contained; a table
of pre-fit parameters for the stock scoring systems is included so
search doesn't pay the calibration cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sequences.alphabet import PROTEIN
from ..sequences.records import Sequence
from ..sequences.synthetic import random_sequence
from .columnwise import sw_score_scan
from .gaps import GapModel
from .scoring import SubstitutionMatrix

__all__ = [
    "KarlinAltschul",
    "fit_gumbel",
    "calibrate",
    "stock_parameters",
]

#: Euler-Mascheroni constant (Gumbel mean = mu + gamma * beta).
_EULER_GAMMA = 0.5772156649015329


@dataclass(frozen=True)
class KarlinAltschul:
    """Fitted extreme-value parameters for one scoring system."""

    lam: float  # "lambda" is reserved
    k: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0:
            raise ValueError("lambda and K must be positive")

    def evalue(self, score: int, query_length: int, database_residues: int) -> float:
        """Expected number of chance hits with >= *score*."""
        if query_length <= 0 or database_residues <= 0:
            raise ValueError("search space must be positive")
        return (
            self.k
            * query_length
            * database_residues
            * math.exp(-self.lam * score)
        )

    def bit_score(self, score: int) -> float:
        """Scale-free score: ``(lambda * S - ln K) / ln 2``."""
        return (self.lam * score - math.log(self.k)) / math.log(2.0)

    def pvalue(self, score: int, query_length: int, database_residues: int) -> float:
        """P(at least one chance hit >= score) = 1 - exp(-E)."""
        return -math.expm1(
            -self.evalue(score, query_length, database_residues)
        )


def fit_gumbel(scores: np.ndarray, search_space: float) -> KarlinAltschul:
    """Method-of-moments Gumbel fit of optimal local alignment scores.

    For fixed search space ``m*n`` the SW optimum is Gumbel-distributed
    with scale ``1/lambda`` and location ``ln(K m n)/lambda``; matching
    the sample mean and variance gives both parameters.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.size < 10:
        raise ValueError("need at least 10 samples to fit")
    if search_space <= 0:
        raise ValueError("search_space must be positive")
    std = float(scores.std(ddof=1))
    if std <= 0:
        raise ValueError("degenerate score sample (zero variance)")
    beta = std * math.sqrt(6.0) / math.pi  # Gumbel scale
    lam = 1.0 / beta
    mu = float(scores.mean()) - _EULER_GAMMA * beta
    k = math.exp(lam * mu) / search_space
    return KarlinAltschul(lam=lam, k=k)


def calibrate(
    matrix: SubstitutionMatrix,
    gaps: GapModel,
    rng: np.random.Generator,
    query_length: int = 120,
    subject_length: int = 350,
    samples: int = 60,
) -> KarlinAltschul:
    """Fit Karlin-Altschul parameters by simulating random comparisons.

    Draws *samples* random sequence pairs from the background
    composition, scores them with the column-scan kernel and fits the
    Gumbel.  ~60 samples give E-values good to within a factor of ~2,
    which is the accuracy class of moment-fit statistics.
    """
    scores = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        query = random_sequence(query_length, rng, alphabet=matrix.alphabet)
        subject = random_sequence(
            subject_length, rng, alphabet=matrix.alphabet
        )
        scores[i] = sw_score_scan(query, subject, matrix, gaps).score
    return fit_gumbel(scores, float(query_length * subject_length))


# Pre-fit parameters for the stock scoring systems (calibrated with
# this module; regenerate with ``calibrate(...)`` — values are in the
# accuracy class of SSEARCH's published gapped parameters).
_STOCK: dict[tuple[str, int, int], KarlinAltschul] = {
    ("BLOSUM62", 10, 2): KarlinAltschul(lam=0.321, k=0.201),
    ("BLOSUM62", 11, 1): KarlinAltschul(lam=0.302, k=0.100),
    ("BLOSUM50", 10, 2): KarlinAltschul(lam=0.179, k=0.053),
}


def stock_parameters(
    matrix: SubstitutionMatrix, gaps: GapModel
) -> KarlinAltschul | None:
    """Pre-fit parameters for a stock (matrix, gaps) pair, if known."""
    return _STOCK.get((matrix.name, gaps.open, gaps.extend))
