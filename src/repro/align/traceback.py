"""Phase 2 of Smith-Waterman: obtain the optimal local alignment.

Section II-A-2 of the paper: start from the cell with the highest value
in ``H`` and follow the arrows until a zero is reached.  A left arrow
aligns ``t[j]`` against a gap, an up arrow aligns ``s[i]`` against a
gap, and a diagonal arrow aligns ``s[i]`` with ``t[j]``.

Instead of storing per-cell arrows (which would double Phase 1's memory
traffic) the walker *re-derives* each arrow from the Gotoh identity it
must satisfy — the standard trick for pointer-free traceback.  Affine
gaps require tracking which matrix the current cell lives in (``H``,
``E`` or ``F``) so that gap runs are charged open-then-extend correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sequences.records import Sequence
from .gaps import GapModel
from .reference import DPMatrices, sw_matrix
from .scoring import SubstitutionMatrix

__all__ = ["Alignment", "traceback", "sw_align_reference"]

GAP_CHAR = "-"


@dataclass(frozen=True)
class Alignment:
    """A scored local alignment between a query and a subject.

    ``aligned_query``/``aligned_subject`` are equal-length strings over
    residues and ``-`` gap characters; coordinates are 0-based
    half-open into the *original* sequences.
    """

    query_id: str
    subject_id: str
    score: int
    aligned_query: str
    aligned_subject: str
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int

    def __post_init__(self) -> None:
        if len(self.aligned_query) != len(self.aligned_subject):
            raise ValueError("aligned strings must have equal length")

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.aligned_query)

    @property
    def matches(self) -> int:
        """Number of identical aligned residue pairs."""
        return sum(
            a == b and a != GAP_CHAR
            for a, b in zip(self.aligned_query, self.aligned_subject)
        )

    @property
    def gaps(self) -> int:
        """Total gap columns (in either sequence)."""
        return self.aligned_query.count(GAP_CHAR) + self.aligned_subject.count(
            GAP_CHAR
        )

    @property
    def identity(self) -> float:
        """Fraction of columns that are exact matches."""
        return self.matches / self.length if self.length else 0.0

    def midline(self) -> str:
        """``|`` for matches, space for everything else (BLAST style)."""
        return "".join(
            "|" if a == b and a != GAP_CHAR else " "
            for a, b in zip(self.aligned_query, self.aligned_subject)
        )

    def cigar(self) -> str:
        """CIGAR string (``M``/``I``/``D``; I = insertion in query)."""
        ops: list[tuple[str, int]] = []
        for a, b in zip(self.aligned_query, self.aligned_subject):
            if a == GAP_CHAR:
                op = "D"  # gap in query: subject residue consumed
            elif b == GAP_CHAR:
                op = "I"
            else:
                op = "M"
            if ops and ops[-1][0] == op:
                ops[-1] = (op, ops[-1][1] + 1)
            else:
                ops.append((op, 1))
        return "".join(f"{count}{op}" for op, count in ops)

    def rescore(self, matrix: SubstitutionMatrix, gaps: GapModel) -> int:
        """Recompute the score from the alignment columns.

        Independent of the DP matrices — used by tests to assert that
        Phase 2 emitted an alignment worth exactly :attr:`score`.
        """
        total = 0
        # Gap state is tracked per sequence: a deletion run followed
        # immediately by an insertion run is *two* gap runs under the
        # Gotoh model, each paying its own open cost.
        in_query_gap = False
        in_subject_gap = False
        for a, b in zip(self.aligned_query, self.aligned_subject):
            if a == GAP_CHAR:
                total -= gaps.extend if in_query_gap else gaps.open
                in_query_gap, in_subject_gap = True, False
            elif b == GAP_CHAR:
                total -= gaps.extend if in_subject_gap else gaps.open
                in_query_gap, in_subject_gap = False, True
            else:
                total += matrix.score(a, b)
                in_query_gap = in_subject_gap = False
        return total

    def pretty(self, width: int = 60) -> str:
        """Multi-line rendering with coordinates and a midline."""
        lines = [
            f"{self.query_id} x {self.subject_id}  score={self.score}  "
            f"identity={self.identity:.1%}  length={self.length}"
        ]
        mid = self.midline()
        q_pos = self.query_start
        s_pos = self.subject_start
        for start in range(0, self.length, width):
            q_chunk = self.aligned_query[start : start + width]
            s_chunk = self.aligned_subject[start : start + width]
            m_chunk = mid[start : start + width]
            q_consumed = len(q_chunk) - q_chunk.count(GAP_CHAR)
            s_consumed = len(s_chunk) - s_chunk.count(GAP_CHAR)
            lines.append(f"Query  {q_pos + 1:>6} {q_chunk}")
            lines.append(f"              {m_chunk}")
            lines.append(f"Sbjct  {s_pos + 1:>6} {s_chunk}")
            lines.append("")
            q_pos += q_consumed
            s_pos += s_consumed
        return "\n".join(lines)


def traceback(
    s: Sequence,
    t: Sequence,
    matrices: DPMatrices,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> Alignment:
    """Walk the arrows from the optimum back to a zero cell.

    Parameters mirror Phase 1; *matrices* must come from
    :func:`repro.align.reference.sw_matrix` on the same inputs.
    """
    H, E, F = matrices.H, matrices.E, matrices.F
    sub = matrix.scores
    go, ge = gaps.open, gaps.extend
    s_codes = matrix.alphabet.encode(s.residues)
    t_codes = matrix.alphabet.encode(t.residues)

    i, j = matrices.end
    q_parts: list[str] = []
    t_parts: list[str] = []
    state = "H"
    while True:
        if state == "H":
            value = H[i, j]
            if value == 0:
                break
            if value == E[i, j]:
                state = "E"
            elif value == F[i, j]:
                state = "F"
            else:
                diag = H[i - 1, j - 1] + sub[s_codes[i - 1], t_codes[j - 1]]
                if value != diag:  # pragma: no cover - corrupt matrices
                    raise AssertionError("traceback: no arrow explains H cell")
                q_parts.append(s.residues[i - 1])
                t_parts.append(t.residues[j - 1])
                i -= 1
                j -= 1
        elif state == "E":
            # Gap in s: consume t[j-1], move left.
            value = E[i, j]
            q_parts.append(GAP_CHAR)
            t_parts.append(t.residues[j - 1])
            state = "H" if value == H[i, j - 1] - go else "E"
            j -= 1
        else:  # state == "F": gap in t, consume s[i-1], move up.
            value = F[i, j]
            q_parts.append(s.residues[i - 1])
            t_parts.append(GAP_CHAR)
            state = "H" if value == H[i - 1, j] - go else "F"
            i -= 1

    end_i, end_j = matrices.end
    return Alignment(
        query_id=s.id,
        subject_id=t.id,
        score=matrices.score,
        aligned_query="".join(reversed(q_parts)),
        aligned_subject="".join(reversed(t_parts)),
        query_start=i,
        query_end=end_i,
        subject_start=j,
        subject_end=end_j,
    )


def sw_align_reference(
    s: Sequence,
    t: Sequence,
    matrix: SubstitutionMatrix,
    gaps: GapModel,
) -> Alignment:
    """Phases 1 + 2 in one call (quadratic space; small inputs only)."""
    matrices = sw_matrix(s, t, matrix, gaps)
    if matrices.score == 0:
        # No positively-scoring local alignment exists; return the empty one.
        return Alignment(
            query_id=s.id,
            subject_id=t.id,
            score=0,
            aligned_query="",
            aligned_subject="",
            query_start=0,
            query_end=0,
            subject_start=0,
            subject_end=0,
        )
    return traceback(s, t, matrices, matrix, gaps)
