"""K-mer seeding: the heuristic prefilter family (BLAST/FASTA style).

The paper positions SW as "the most accurate algorithm" precisely
because the fast tools are *heuristic*: they index k-mers, keep only
subjects sharing seeds with the query, and run (banded) dynamic
programming on that shortlist.  This module implements the canonical
version of that pipeline so the exact-vs-heuristic trade-off the paper
leans on is measurable inside one codebase:

* :class:`KmerIndex` — an inverted index from k-mer to database
  positions (the database preprocessing step);
* :func:`seed_candidates` — subjects sharing at least ``min_seeds``
  k-mers with the query, with their best-supported diagonal;
* :func:`seeded_search` — SW (optionally banded around the seeded
  diagonal) on the candidates only.

A seeded search can *miss* homologs with no exact k-mer in common —
that is the sensitivity loss the paper's exact approach avoids; the
benchmark quantifies both the speedup and the recall.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .api import SearchHit, SearchResult
from .banded import sw_score_banded
from .columnwise import sw_score_scan
from .gaps import DEFAULT_GAPS, GapModel
from .scoring import SubstitutionMatrix, default_matrix_for

__all__ = ["KmerIndex", "SeedHit", "seed_candidates", "seeded_search"]


class KmerIndex:
    """Inverted k-mer index over a database.

    Maps every exact k-mer to the ``(subject, offset)`` pairs where it
    occurs.  Wildcard-containing k-mers are skipped — they would match
    everything and carry no signal.
    """

    def __init__(self, database: SequenceDatabase, k: int = 4):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.database = database
        self._postings: dict[str, list[tuple[int, int]]] = defaultdict(list)
        wildcard = database.alphabet.wildcard
        for index, record in enumerate(database):
            residues = record.residues
            for offset in range(len(residues) - k + 1):
                kmer = residues[offset : offset + k]
                if wildcard in kmer:
                    continue
                self._postings[kmer].append((index, offset))

    def __len__(self) -> int:
        return len(self._postings)

    def lookup(self, kmer: str) -> list[tuple[int, int]]:
        """(subject index, offset) occurrences of *kmer*."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {kmer!r}")
        return list(self._postings.get(kmer, ()))


@dataclass(frozen=True)
class SeedHit:
    """Seeding evidence for one candidate subject."""

    subject_index: int
    seed_count: int
    best_diagonal: int  # query_offset - subject_offset, mode over seeds


def seed_candidates(
    query: Sequence,
    index: KmerIndex,
    min_seeds: int = 2,
) -> list[SeedHit]:
    """Subjects sharing at least *min_seeds* k-mers with the query.

    The dominant diagonal of each candidate's seeds is reported so the
    downstream DP can be banded around it (the FASTA trick).
    """
    if min_seeds < 1:
        raise ValueError("min_seeds must be positive")
    k = index.k
    seeds_by_subject: dict[int, list[int]] = defaultdict(list)
    wildcard = query.alphabet.wildcard if query.alphabet else "X"
    residues = query.residues
    for q_offset in range(len(residues) - k + 1):
        kmer = residues[q_offset : q_offset + k]
        if wildcard in kmer:
            continue
        for subject_index, s_offset in index.lookup(kmer):
            seeds_by_subject[subject_index].append(q_offset - s_offset)
    hits = []
    for subject_index, diagonals in seeds_by_subject.items():
        if len(diagonals) < min_seeds:
            continue
        values, counts = np.unique(diagonals, return_counts=True)
        hits.append(
            SeedHit(
                subject_index=subject_index,
                seed_count=len(diagonals),
                best_diagonal=int(values[counts.argmax()]),
            )
        )
    hits.sort(key=lambda h: (-h.seed_count, h.subject_index))
    return hits


def seeded_search(
    query: Sequence,
    index: KmerIndex,
    matrix: SubstitutionMatrix | None = None,
    gaps: GapModel = DEFAULT_GAPS,
    min_seeds: int = 2,
    band: int | None = None,
    top: int = 10,
) -> SearchResult:
    """Heuristic database search: SW only on seeded candidates.

    ``band`` activates banded SW centred on each candidate's dominant
    seed diagonal (FASTA-style); ``None`` runs full SW per candidate
    (BLAST-with-exact-extension-style).  Cell accounting reflects the
    work actually done, so the speedup versus
    :func:`~repro.align.api.database_search` is directly comparable.
    """
    database = index.database
    if matrix is None:
        assert query.alphabet is not None
        matrix = default_matrix_for(query.alphabet)
    candidates = seed_candidates(query, index, min_seeds=min_seeds)
    scored: list[SearchHit] = []
    cells = 0
    for candidate in candidates:
        subject = database[candidate.subject_index]
        if band is None:
            result = sw_score_scan(query, subject, matrix, gaps)
            score = result.score
            cells += result.cells
        else:
            banded = sw_score_banded(
                query, subject, matrix, gaps, band,
                shift=candidate.best_diagonal,
            )
            score = banded.score
            cells += banded.cells
        scored.append(
            SearchHit(
                subject_id=subject.id,
                subject_index=candidate.subject_index,
                score=score,
                subject_length=len(subject),
            )
        )
    scored.sort(key=lambda h: (-h.score, h.subject_index))
    if top > 0:
        scored = scored[:top]
    return SearchResult(
        query_id=query.id,
        database_name=database.name,
        hits=tuple(scored),
        cells=cells,
    )
