"""Task-lifecycle spans derived from the unified event log.

A *span* is one timed node of a causal trace: every task owns one trace
(``trace_id``), rooted in a ``task`` span that opens at the first
assignment and closes when some PE wins the race, with one child
``execution`` span per (task, PE) attempt — original grant or
workload-adjustment replica alike.  Span identifiers are deterministic
functions of the schedule (:func:`task_trace_id`,
:func:`execution_span_id`), which is what makes traces comparable
across the threaded runtime, the discrete-event simulator and the TCP
cluster: the same schedule produces the same ids in every environment,
on any clock.

The master allocates span contexts as it grants work and stamps them
onto the events it emits (``trace`` / ``span`` / ``parent`` fields);
the cluster protocol forwards them to the slaves so worker-side events
join the same trace.  :func:`derive_spans` reconstructs the spans from
any event log — including legacy logs that never carried the explicit
fields, by regenerating the deterministic ids from the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import EventLog

__all__ = [
    "SpanContext",
    "Span",
    "task_trace_id",
    "execution_span_id",
    "derive_spans",
    "span_structure",
]


def task_trace_id(task_id: int) -> str:
    """Deterministic trace id (and root-span id) of one task."""
    return f"task-{int(task_id)}"


def execution_span_id(task_id: int, pe_id: str, attempt: int) -> str:
    """Deterministic span id of one (task, PE) execution attempt."""
    return f"task-{int(task_id)}/{pe_id}#{int(attempt)}"


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of one span (what crosses the wire)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def as_fields(self) -> dict[str, str]:
        """Event-log / wire-message field form (``trace``/``span``/...)."""
        fields = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            fields["parent"] = self.parent_id
        return fields


@dataclass(frozen=True)
class Span:
    """One reconstructed span of a task's lifecycle trace.

    ``status`` says how the race went — ``won`` for the execution whose
    result was merged (and for the completed root), ``stale`` for a
    losing execution (whether it completed uselessly or aborted on
    cancellation — ``end_reason`` keeps that distinction), ``released``
    when the PE deregistered mid-flight, and ``open`` for spans the log
    never closed.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str  # "task" | "execution"
    pe: str | None
    task: int
    start: float
    end: float | None
    status: str  # "open" | "won" | "stale" | "released"
    end_reason: str = "open"  # "open" | "complete" | "cancelled" | "released"
    kind: str = "task"  # grant kind: "task" | "replica"

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0) if self.end is not None else 0.0

    def as_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "pe": self.pe,
            "task": self.task,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "end_reason": self.end_reason,
            "kind": self.kind,
        }


class _OpenExecution:
    """Mutable bookkeeping for one not-yet-closed execution span."""

    __slots__ = ("context", "start", "kind")

    def __init__(self, context: SpanContext, start: float, kind: str):
        self.context = context
        self.start = start
        self.kind = kind


def derive_spans(events: EventLog | list[dict]) -> list[Span]:
    """Reconstruct the span set from a structured event log.

    Pure function of the events; works on live :class:`EventLog`
    registries and on logs parsed back from JSONL files.  Events that
    carry explicit ``trace``/``span`` fields keep them; legacy events
    get the deterministic ids regenerated from the schedule, so both
    forms of the same log yield identical spans.
    """
    spans: list[Span] = []
    roots: dict[int, dict] = {}  # task -> {"start", "end", "status"}
    open_execs: dict[tuple[str, int], list[_OpenExecution]] = {}
    attempts: dict[tuple[int, str], int] = {}

    def close(
        record: _OpenExecution,
        pe: str,
        task: int,
        end: float | None,
        status: str,
        end_reason: str,
    ) -> None:
        context = record.context
        spans.append(
            Span(
                trace_id=context.trace_id,
                span_id=context.span_id,
                parent_id=context.parent_id,
                name="execution",
                pe=pe,
                task=task,
                start=record.start,
                end=end,
                status=status,
                end_reason=end_reason,
                kind=record.kind,
            )
        )

    for event in events:
        kind = event["kind"]
        time = float(event["time"])
        pe = str(event.get("pe", ""))
        task = int(event.get("task", -1))
        if kind in ("assign", "replica"):
            attempt = attempts.get((task, pe), 0)
            attempts[(task, pe)] = attempt + 1
            trace = str(event.get("trace") or task_trace_id(task))
            span = str(
                event.get("span") or execution_span_id(task, pe, attempt)
            )
            parent = event.get("parent")
            context = SpanContext(
                trace, span, str(parent) if parent else trace
            )
            roots.setdefault(
                task, {"start": time, "end": None, "status": "open"}
            )
            open_execs.setdefault((pe, task), []).append(
                _OpenExecution(context, time, kind)
            )
        elif kind == "complete":
            pending = open_execs.get((pe, task))
            won = bool(event.get("value", 0.0))
            if pending:
                close(
                    pending.pop(0), pe, task, time,
                    "won" if won else "stale", "complete",
                )
            if won and task in roots:
                roots[task]["end"] = time
                roots[task]["status"] = "won"
        elif kind == "cancelled":
            pending = open_execs.get((pe, task))
            if pending:
                close(pending.pop(0), pe, task, time, "stale", "cancelled")
        elif kind == "deregister":
            for (open_pe, open_task), pending in list(open_execs.items()):
                if open_pe != pe:
                    continue
                for record in pending:
                    close(
                        record, open_pe, open_task, time,
                        "released", "released",
                    )
                del open_execs[(open_pe, open_task)]

    # Executions the log never closed stay open (crash or truncation).
    for (pe, task), pending in open_execs.items():
        for record in pending:
            close(record, pe, task, None, "open", "open")

    for task, root in roots.items():
        trace = task_trace_id(task)
        spans.append(
            Span(
                trace_id=trace,
                span_id=trace,
                parent_id=None,
                name="task",
                pe=None,
                task=task,
                start=root["start"],
                end=root["end"],
                status=root["status"],
                end_reason="complete" if root["status"] == "won" else "open",
            )
        )
    return sorted(spans, key=lambda s: (s.start, s.trace_id, s.span_id))


def span_structure(spans: list[Span]) -> dict:
    """Environment-independent structural summary of a span set.

    Wall-clock and virtual-time runs of the same workload disagree on
    every timestamp and (for timing-dependent policies) on how many
    replicas raced, but they must agree on this view: which span names
    exist, which traces exist, and that every trace crowned exactly one
    winner.  The cross-environment parity test compares exactly this.
    """
    names: set[str] = set()
    statuses: set[str] = set()
    won: dict[str, int] = {}
    traces: set[str] = set()
    for span in spans:
        names.add(span.name)
        statuses.add(span.status)
        traces.add(span.trace_id)
        if span.name == "execution" and span.status == "won":
            won[span.trace_id] = won.get(span.trace_id, 0) + 1
    return {
        "span_names": sorted(names),
        "statuses": sorted(statuses),
        "traces": sorted(traces),
        "won_executions_by_trace": {t: won.get(t, 0) for t in sorted(traces)},
    }
