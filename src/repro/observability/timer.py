"""Clock-agnostic timing helpers.

The same scheduling code runs under wall time (threaded runtime,
cluster) and virtual time (the DES), so instrumentation must never call
``time.perf_counter()`` directly — it asks a :class:`Timer` constructed
with whichever clock the host runtime uses.  The default is the
monotonic high-resolution clock; the simulator passes its event-queue
clock instead, and tests pass a hand-cranked fake.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Timer", "Stopwatch"]


class Stopwatch:
    """One in-flight measurement; ``elapsed`` is valid once stopped."""

    __slots__ = ("_clock", "start", "elapsed")

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self.start = clock()
        self.elapsed: float | None = None

    def stop(self) -> float:
        self.elapsed = self._clock() - self.start
        return self.elapsed


class Timer:
    """A source of :class:`Stopwatch` instances bound to one clock."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter

    def now(self) -> float:
        return self._clock()

    def stopwatch(self) -> Stopwatch:
        return Stopwatch(self._clock)

    @contextmanager
    def time(self, observe: Callable[[float], None]) -> Iterator[Stopwatch]:
        """Measure the block and feed the elapsed seconds to *observe*.

        *observe* is any ``float -> None`` sink — typically the
        ``observe`` method of a histogram series::

            with timer.time(rpc_seconds.labels(type="request").observe):
                reply = link.call(message)
        """
        watch = self.stopwatch()
        try:
            yield watch
        finally:
            observe(watch.stop())
