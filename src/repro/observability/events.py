"""Structured JSONL event log.

One log format for every layer.  Previously the master
(:mod:`repro.core.master`), the cluster launcher
(:mod:`repro.cluster.launcher`) and the simulator's renderers
(:mod:`repro.simulate.trace`) each grew their own ad-hoc trace list;
this module is the single machine-readable form that subsumes them.

Every event is one JSON object per line with two required keys —
``kind`` (event type) and ``time`` (seconds, wall or virtual, from the
host runtime's clock) — plus free-form scalar fields.  The master's
scheduling events use ``pe`` / ``task`` / ``value``, matching the
legacy :class:`~repro.core.master.TraceEvent` tuple exactly, so the
conversion helpers below are lossless in both directions.
"""

from __future__ import annotations

import io
import json
import threading
from typing import IO, Iterable, Iterator, Mapping

__all__ = ["EventLog"]

_RESERVED = ("kind", "time")


class EventLog:
    """An in-memory, optionally streamed, append-only event list.

    Parameters
    ----------
    sink:
        Optional text file-like object; when given, every event is
        additionally written to it as one JSON line at emit time
        (crash-durable tracing for long cluster runs).
    """

    def __init__(self, sink: IO[str] | None = None):
        self._events: list[dict] = []
        self._sink = sink
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def emit(self, kind: str, time: float, **fields: object) -> dict:
        """Append one event; returns the stored dict."""
        if not kind:
            raise ValueError("event kind must be non-empty")
        for key in _RESERVED:
            if key in fields:
                raise ValueError(f"field {key!r} is reserved")
        event: dict = {"kind": str(kind), "time": float(time)}
        event.update(fields)
        with self._lock:
            self._events.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event, sort_keys=False) + "\n")
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict]:
        with self._lock:
            return iter(list(self._events))

    def filter(
        self,
        kind: str | None = None,
        since: float | None = None,
        until: float | None = None,
        **fields: object,
    ) -> list[dict]:
        """Events matching the kind, time window and field values.

        The window is half-open: ``since <= time < until``, so adjacent
        windows partition a log without double-counting events.
        """
        out = []
        for event in self:
            if kind is not None and event["kind"] != kind:
                continue
            if since is not None and event["time"] < since:
                continue
            if until is not None and event["time"] >= until:
                continue
            if any(event.get(key) != value for key, value in fields.items()):
                continue
            out.append(event)
        return out

    @classmethod
    def merge(cls, *logs: "EventLog", sink: IO[str] | None = None) -> "EventLog":
        """Deterministically merge several logs into one.

        Events are stably ordered by ``(time, pe, seq)`` — ``seq`` being
        each event's position in the concatenation of the source logs,
        so ties keep concatenation order (earlier-listed logs first).
        Merging a master log with per-worker logs therefore yields the
        same combined timeline on every run, which is what makes
        ``repro trace`` output reproducible for cluster reports.
        """
        entries: list[tuple[float, str, int, dict]] = []
        seq = 0
        for log in logs:
            for event in log:
                entries.append(
                    (float(event["time"]), str(event.get("pe", "")), seq,
                     event)
                )
                seq += 1
        entries.sort(key=lambda entry: entry[:3])
        merged = cls(sink=sink)
        for _, _, _, event in entries:
            fields = {
                key: value for key, value in event.items()
                if key not in _RESERVED
            }
            merged.emit(event["kind"], event["time"], **fields)
        return merged

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------
    def to_jsonl(self, target: str | IO[str]) -> None:
        """Write every event as one JSON object per line."""
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                self.to_jsonl(handle)
            return
        for event in self:
            target.write(json.dumps(event, sort_keys=False) + "\n")

    def to_jsonl_text(self) -> str:
        buffer = io.StringIO()
        self.to_jsonl(buffer)
        return buffer.getvalue()

    @classmethod
    def from_jsonl(cls, source: str | IO[str]) -> "EventLog":
        """Parse a JSONL stream (path or file-like) back into a log.

        Tolerant of blank/whitespace-only lines and CRLF line endings —
        logs that passed through editors, shells or Windows transfers
        parse identically to pristine ones.
        """
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.from_jsonl(handle)
        log = cls()
        for line_number, line in enumerate(source, start=1):
            line = line.strip()  # drops surrounding whitespace incl. \r
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {line_number}: invalid JSON ({exc})"
                ) from None
            if not isinstance(event, Mapping) or "kind" not in event \
                    or "time" not in event:
                raise ValueError(
                    f"line {line_number}: events need 'kind' and 'time'"
                )
            fields = {
                key: value for key, value in event.items()
                if key not in _RESERVED
            }
            log.emit(event["kind"], event["time"], **fields)
        return log

    # ------------------------------------------------------------------
    # Legacy TraceEvent interop
    # ------------------------------------------------------------------
    def to_trace_events(self) -> list:
        """Master scheduling events as legacy ``TraceEvent`` records."""
        from ..core.master import TraceEvent  # local import: layering

        return [
            TraceEvent(
                kind=event["kind"],
                time=event["time"],
                pe_id=str(event.get("pe", "")),
                task_id=int(event.get("task", -1)),
                value=float(event.get("value", 0.0)),
            )
            for event in self
            if "pe" in event
        ]

    @classmethod
    def from_trace_events(cls, trace: Iterable) -> "EventLog":
        """Wrap legacy ``TraceEvent`` records into the unified form."""
        log = cls()
        for event in trace:
            log.emit(
                event.kind,
                event.time,
                pe=event.pe_id,
                task=event.task_id,
                value=event.value,
            )
        return log
