"""Canonical metric names shared by every execution environment.

The DES and the threaded runtime drive the *same*
:class:`~repro.core.master.Master`, so most telemetry is declared once,
here, and both environments inherit identical metric names — the
property the parity tests (and any cross-run comparison of
``BENCH_*.json`` telemetry) depend on.  Cluster transports add their
own ``cluster_*`` families on top.

Naming rules (documented in ``docs/observability.md``):

* snake_case, unit-suffixed (``_seconds``, ``_cells``, ``_total`` for
  counters);
* the PE identity label is always ``pe``; categorical labels are
  lower-case (``kind``, ``outcome``, ``type``);
* the same physical quantity never appears under two names.
"""

from __future__ import annotations

from types import SimpleNamespace

from .registry import MetricsRegistry

__all__ = [
    "master_instruments",
    "cache_instruments",
    "screen_instruments",
    "cluster_server_instruments",
    "cluster_worker_instruments",
    "service_instruments",
    "finalize_run_metrics",
    "SPAN_NAMES",
    "SPAN_STATUSES",
    "SPAN_END_REASONS",
    "TRACE_REPORT_SCHEMA",
    "TRACE_REPORT_METRICS",
    "TRACE_REPORT_PE_FIELDS",
]

# ----------------------------------------------------------------------
# Span and trace-report conventions
# ----------------------------------------------------------------------
# Declared once so the analyzer, the parity tests and external tooling
# agree on the vocabulary in every execution environment.

#: Span names of a task-lifecycle trace (repro.observability.spans).
SPAN_NAMES = ("task", "execution")

#: How a span can end: the winning execution (and its completed root)
#: is ``won``; a losing execution is ``stale`` whether it completed
#: uselessly or aborted on cancellation; ``released`` marks executions
#: returned to READY by a deregistering PE; ``open`` never closed.
SPAN_STATUSES = ("open", "won", "stale", "released")

#: The mechanical reason a span closed (finer-grained than status).
SPAN_END_REASONS = ("open", "complete", "cancelled", "released")

#: Schema tag of the trace-analysis JSON document.
TRACE_REPORT_SCHEMA = "repro.trace_report.v1"

#: Top-level metric keys every trace report carries — identical across
#: the threaded runtime, the DES and the cluster (the parity set).
TRACE_REPORT_METRICS = (
    "makespan_seconds",
    "balancing_factor",
    "replica_waste_ratio",
    "assignment_latency_seconds",
    "critical_path_seconds",
    "total_busy_seconds",
)

#: Per-PE keys of the trace report's ``pes`` section.
TRACE_REPORT_PE_FIELDS = (
    "busy_seconds",
    "idle_seconds",
    "utilization",
    "tasks_won",
    "tasks_lost",
    "estimated_rate_cells_per_second",
    "rate_samples",
)

#: Task-latency bucket bounds: spans millisecond in-process tasks up to
#: multi-hour simulated SwissProt scans.
TASK_LATENCY_BUCKETS = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
    7200.0, float("inf"),
)

#: RPC/notification bucket bounds: microseconds to seconds.
RPC_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
    float("inf"),
)

#: End-to-end service-request latency (queue wait + compute): covers
#: sub-second in-process answers up to long simulated scans.
SERVICE_LATENCY_BUCKETS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    300.0, 1800.0, float("inf"),
)


def master_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Declare (get-or-create) every master/scheduling metric family."""
    return SimpleNamespace(
        events=registry.counter(
            "master_events_total",
            "Master protocol events by kind",
            ("kind",),
        ),
        tasks_assigned=registry.counter(
            "tasks_assigned_total",
            "Ready tasks granted to a PE",
            ("pe",),
        ),
        replicas_assigned=registry.counter(
            "replicas_assigned_total",
            "Workload-adjustment replicas granted to a PE",
            ("pe",),
        ),
        tasks_completed=registry.counter(
            "tasks_completed_total",
            "Task completions by PE and race outcome (won/stale)",
            ("pe", "outcome"),
        ),
        tasks_cancelled=registry.counter(
            "tasks_cancelled_total",
            "Replica cancellations issued to a PE",
            ("pe",),
        ),
        progress_notifications=registry.counter(
            "progress_notifications_total",
            "PSS progress notifications received from a PE",
            ("pe",),
        ),
        wait_polls=registry.counter(
            "worker_wait_polls_total",
            "Empty assignments (PE told to wait and retry)",
            ("pe",),
        ),
        registered_pes=registry.gauge(
            "registered_pes",
            "PEs currently registered with the master",
        ),
        ready_tasks=registry.gauge(
            "ready_tasks",
            "Tasks in the READY state",
        ),
        executing_tasks=registry.gauge(
            "executing_tasks",
            "Tasks in the EXECUTING state",
        ),
        queue_depth=registry.gauge(
            "pe_queue_depth",
            "Tasks currently queued on a PE (master's view)",
            ("pe",),
        ),
        estimated_rate=registry.gauge(
            "pe_estimated_rate_cells_per_second",
            "Omega-window weighted-mean rate estimate (the PSS input)",
            ("pe",),
        ),
        realized_rate=registry.gauge(
            "pe_realized_rate_cells_per_second",
            "Realized rate of the PE's latest completed task",
            ("pe",),
        ),
        task_latency=registry.histogram(
            "task_latency_seconds",
            "Per-task execution latency as reported at completion",
            ("pe",),
            buckets=TASK_LATENCY_BUCKETS,
        ),
        busy_seconds=registry.counter(
            "pe_busy_seconds_total",
            "Cumulative task-execution seconds per PE",
            ("pe",),
        ),
        cells_completed=registry.counter(
            "cells_completed_total",
            "Matrix cells of completed tasks per PE (incl. stale)",
            ("pe",),
        ),
    )


def cache_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Pack/profile cache metrics (the ``cache`` label names the cache)."""
    return SimpleNamespace(
        hits=registry.counter(
            "cache_hits_total",
            "Cache lookups served from a resident entry",
            ("cache",),
        ),
        misses=registry.counter(
            "cache_misses_total",
            "Cache lookups that had to build the entry",
            ("cache",),
        ),
        evictions=registry.counter(
            "cache_evictions_total",
            "Entries evicted by the LRU capacity bound",
            ("cache",),
        ),
        entries=registry.gauge(
            "cache_entries",
            "Entries currently resident in the cache",
            ("cache",),
        ),
    )


def screen_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Two-stage screening-pipeline metrics (the ``screen_*`` families).

    Declared once so the threaded runtime, the CLI search path and
    cluster workers export identical names; bound through
    :meth:`repro.align.screening.ScreenStats.bind`.
    """
    return SimpleNamespace(
        passed=registry.counter(
            "screen_pass_total",
            "Sequences resolved by the 8-bit screening pass alone "
            "(screened score exact, no rescore needed)",
        ),
        rescored=registry.counter(
            "screen_rescore_total",
            "Sequences re-scored by the exact kernel after the screen "
            "(saturated or above the rescore threshold)",
        ),
        saturated=registry.counter(
            "screen_saturated_total",
            "Screened (query, sequence) pairs that hit the 8-bit cap "
            "(always rescored exactly)",
        ),
    )


def cluster_server_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Master-server transport metrics (one side of the wire)."""
    return SimpleNamespace(
        messages=registry.counter(
            "cluster_messages_total",
            "Wire messages handled by the master server, by type",
            ("type",),
        ),
        rpc_seconds=registry.histogram(
            "cluster_rpc_seconds",
            "Master-side service time per message, by type",
            ("type",),
            buckets=RPC_BUCKETS,
        ),
        connections=registry.counter(
            "cluster_connections_total",
            "Slave connections accepted by the master server",
        ),
        protocol_errors=registry.counter(
            "cluster_protocol_errors_total",
            "Malformed or unknown wire messages",
        ),
    )


def cluster_worker_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Worker-side transport metrics (the other side of the wire)."""
    return SimpleNamespace(
        roundtrip_seconds=registry.histogram(
            "cluster_roundtrip_seconds",
            "Worker-observed request/notification round-trip time",
            ("pe", "type"),
            buckets=RPC_BUCKETS,
        ),
        connects=registry.counter(
            "cluster_worker_connects_total",
            "Connections (and reconnections) a worker opened",
            ("pe",),
        ),
    )


def service_instruments(registry: MetricsRegistry) -> SimpleNamespace:
    """Admission-layer metrics of the always-on search service.

    Declared once so the threaded service, the DES service model and
    the cluster front-end export identical families (same parity rule
    as the master instruments above).
    """
    return SimpleNamespace(
        requests=registry.counter(
            "service_requests_total",
            "Service requests by final outcome "
            "(admitted/shed/done/expired/cancelled)",
            ("tenant", "outcome"),
        ),
        shed=registry.counter(
            "service_shed_total",
            "Requests rejected by admission control, by reason",
            ("tenant", "reason"),
        ),
        deadline_misses=registry.counter(
            "service_deadline_misses_total",
            "Requests whose deadline expired before completion",
            ("tenant",),
        ),
        queue_depth=registry.gauge(
            "service_queue_depth",
            "Requests waiting in the admission queue",
            ("tenant",),
        ),
        backlog_seconds=registry.gauge(
            "service_backlog_seconds",
            "Estimated seconds of queued + in-flight work at the "
            "current fleet rate",
        ),
        draining=registry.gauge(
            "service_draining",
            "1 while the service refuses new admissions and drains",
        ),
        latency=registry.histogram(
            "service_request_latency_seconds",
            "Submit-to-completion latency of admitted requests",
            ("tenant",),
            buckets=SERVICE_LATENCY_BUCKETS,
        ),
        predicted_p99=registry.gauge(
            "service_predicted_p99_seconds",
            "SLO admission controller's predicted p99 completion time "
            "for the tenant's next request (rate EWMA + backlog, "
            "inflated by the observed prediction-error quantile)",
            ("tenant",),
        ),
        recovered=registry.counter(
            "service_recovered_requests_total",
            "Requests rebuilt from the service journal at cold "
            "restart, by disposition "
            "(restored/readmitted/expired/terminal)",
            ("disposition",),
        ),
    )


def finalize_run_metrics(
    registry: MetricsRegistry, makespan: float, total_cells: float
) -> None:
    """Stamp whole-run summary gauges (identical in DES and runtime).

    Derives per-PE utilization from the accumulated busy-seconds
    counter, so it only needs the numbers every environment already
    has.
    """
    registry.gauge(
        "run_makespan_seconds", "End-to-end makespan of the run"
    ).set(makespan)
    registry.gauge(
        "run_total_cells", "Matrix cells in the workload"
    ).set(total_cells)
    registry.gauge(
        "run_gcups", "Aggregate useful throughput of the run"
    ).set(total_cells / makespan / 1e9 if makespan > 0 else 0.0)
    utilization = registry.gauge(
        "pe_utilization_ratio",
        "Per-PE busy seconds / makespan (1.0 = perfectly packed)",
        ("pe",),
    )
    busy = registry.get("pe_busy_seconds_total")
    if busy is not None and makespan > 0:
        for labels, child in busy.series():
            utilization.labels(**labels).set(child.value / makespan)
