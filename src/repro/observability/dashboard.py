"""Operator status derivation and the ``repro top`` terminal dashboard.

:func:`status_from_snapshot` distills a ``repro.metrics.v1`` snapshot
into a compact ``repro.status.v1`` dict — per-PE rates and queue
depths, fleet totals, cache hit ratio, task-latency quantiles — which
is exactly what the master's ``/statusz`` endpoint serves.
:func:`run_top` renders successive status frames as a plain-text
table, either polling a live ``/statusz`` endpoint or tailing (and
folding) a ``repro.telemetry.v1`` stream.  No curses: frames are
redrawn with a single ANSI clear so the dashboard works over ssh, in
CI logs, and piped to a file.
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import IO, Mapping

from .registry import Histogram, MetricsRegistry
from .telemetry import read_telemetry, replay_telemetry

__all__ = ["render_status", "run_top", "status_from_snapshot"]

STATUS_SCHEMA = "repro.status.v1"

_QUANTILES = (0.5, 0.95, 0.99)


def _solo_value(registry: MetricsRegistry, name: str) -> float | None:
    family = registry.get(name)
    if family is None or family.labelnames:
        return None
    for _, child in family.series():
        return child.value  # type: ignore[union-attr]
    return None


def _labelled(registry: MetricsRegistry, name: str):
    family = registry.get(name)
    if family is None:
        return
    yield from family.series()


def _quantiles(histogram: Histogram) -> dict[str, float | None]:
    out: dict[str, float | None] = {}
    for q in _QUANTILES:
        value = histogram.quantile(q)
        out[f"p{int(q * 100)}"] = None if math.isnan(value) else value
    return out


def status_from_snapshot(snapshot: Mapping) -> dict:
    """Distill a metrics snapshot into a ``repro.status.v1`` dict."""
    registry = MetricsRegistry.from_snapshot(snapshot)

    pes: dict[str, dict] = {}

    def pe_entry(pe: str) -> dict:
        return pes.setdefault(
            pe,
            {
                "queue_depth": 0.0,
                "estimated_rate": None,
                "realized_rate": None,
                "tasks_completed": 0.0,
                "cells_completed": 0.0,
                "busy_seconds": 0.0,
                "latency": None,
            },
        )

    for labels, child in _labelled(registry, "pe_queue_depth"):
        pe_entry(labels["pe"])["queue_depth"] = child.value
    for labels, child in _labelled(
        registry, "pe_estimated_rate_cells_per_second"
    ):
        pe_entry(labels["pe"])["estimated_rate"] = child.value
    for labels, child in _labelled(
        registry, "pe_realized_rate_cells_per_second"
    ):
        pe_entry(labels["pe"])["realized_rate"] = child.value
    for labels, child in _labelled(registry, "tasks_completed_total"):
        entry = pe_entry(labels["pe"])
        entry["tasks_completed"] += child.value
    for labels, child in _labelled(registry, "cells_completed_total"):
        pe_entry(labels["pe"])["cells_completed"] = child.value
    for labels, child in _labelled(registry, "pe_busy_seconds_total"):
        pe_entry(labels["pe"])["busy_seconds"] = child.value

    # Task latency: per-PE quantiles plus a fleet aggregate built by
    # summing bucket counts (bounds are identical across series).
    aggregate: Histogram | None = None
    for labels, child in _labelled(registry, "task_latency_seconds"):
        assert isinstance(child, Histogram)
        pe_entry(labels["pe"])["latency"] = _quantiles(child)
        if aggregate is None:
            aggregate = Histogram(child.bounds)
        for index, count in enumerate(child._counts):
            aggregate._counts[index] += count
        aggregate._sum += child.sum
        aggregate._count += child.count

    hits = sum(c.value for _, c in _labelled(registry, "cache_hits_total"))
    misses = sum(c.value for _, c in _labelled(registry, "cache_misses_total"))
    lookups = hits + misses

    status = {
        "schema": STATUS_SCHEMA,
        "pes": {pe: pes[pe] for pe in sorted(pes)},
        "registered_pes": _solo_value(registry, "registered_pes"),
        "ready_tasks": _solo_value(registry, "ready_tasks"),
        "executing_tasks": _solo_value(registry, "executing_tasks"),
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else None,
        },
        "task_latency": _quantiles(aggregate) if aggregate else None,
        "run": {
            "makespan_seconds": _solo_value(registry, "run_makespan_seconds"),
            "total_cells": _solo_value(registry, "run_total_cells"),
            "gcups": _solo_value(registry, "run_gcups"),
        },
    }
    return status


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _fmt(value, width: int = 10, digits: int = 3) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.{digits}g}".rjust(width)
    return str(int(value)).rjust(width)


def render_status(status: Mapping, title: str = "repro top") -> str:
    """One dashboard frame as plain text."""
    lines = [title, "=" * len(title)]
    lines.append(
        "pes={} ready={} executing={}".format(
            _fmt(status.get("registered_pes"), 1),
            _fmt(status.get("ready_tasks"), 1),
            _fmt(status.get("executing_tasks"), 1),
        )
    )
    cache = status.get("cache") or {}
    ratio = cache.get("hit_ratio")
    lines.append(
        "cache: hits={} misses={} ratio={}".format(
            _fmt(cache.get("hits"), 1),
            _fmt(cache.get("misses"), 1),
            "-" if ratio is None else f"{ratio:.1%}",
        )
    )
    latency = status.get("task_latency")
    if latency:
        lines.append(
            "task latency: p50={} p95={} p99={}".format(
                _fmt(latency.get("p50"), 1),
                _fmt(latency.get("p95"), 1),
                _fmt(latency.get("p99"), 1),
            )
        )
    run = status.get("run") or {}
    if run.get("makespan_seconds") is not None:
        lines.append(
            "run: makespan={}s cells={} gcups={}".format(
                _fmt(run.get("makespan_seconds"), 1),
                _fmt(run.get("total_cells"), 1),
                _fmt(run.get("gcups"), 1),
            )
        )
    pes = status.get("pes") or {}
    if pes:
        header = (
            f"{'pe':<12}{'queue':>8}{'done':>8}{'cells':>12}"
            f"{'est c/s':>12}{'real c/s':>12}{'p50':>10}{'p99':>10}"
        )
        lines.append("")
        lines.append(header)
        lines.append("-" * len(header))
        for pe, entry in pes.items():
            latency = entry.get("latency") or {}
            lines.append(
                f"{pe:<12}"
                f"{_fmt(entry.get('queue_depth'), 8)}"
                f"{_fmt(entry.get('tasks_completed'), 8)}"
                f"{_fmt(entry.get('cells_completed'), 12)}"
                f"{_fmt(entry.get('estimated_rate'), 12)}"
                f"{_fmt(entry.get('realized_rate'), 12)}"
                f"{_fmt(latency.get('p50'), 10)}"
                f"{_fmt(latency.get('p99'), 10)}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Top loop
# ----------------------------------------------------------------------

def _fetch_status(source: str) -> dict:
    """One status frame from a URL (``/statusz``) or telemetry file."""
    if source.startswith("http://") or source.startswith("https://"):
        url = source.rstrip("/")
        if not url.endswith("/statusz"):
            url += "/statusz"
        with urllib.request.urlopen(url, timeout=5.0) as response:
            status = json.loads(response.read().decode("utf-8"))
        if status.get("schema") != STATUS_SCHEMA:
            raise ValueError(
                f"unrecognised status schema {status.get('schema')!r}"
            )
        return status
    records = read_telemetry(source)
    final = [r for r in records if r["record"] == "final"]
    if final:
        snapshot = final[-1]["snapshot"]
    else:
        snapshot = replay_telemetry(records)
    status = status_from_snapshot(snapshot)
    status["finished"] = bool(final)
    return status


def run_top(
    source: str,
    interval: float = 2.0,
    iterations: int | None = None,
    out: IO[str] | None = None,
    clear: bool | None = None,
) -> int:
    """Render dashboard frames until interrupted (or ``iterations``).

    ``source`` is a master base URL (its ``/statusz`` is polled) or a
    telemetry JSONL path (folded locally; stops once the stream's
    ``final`` record appears).  Returns an exit code: 0 on a clean
    finish, 1 if the source was never reachable.
    """
    stream = out if out is not None else sys.stdout
    if clear is None:
        clear = stream.isatty()
    frames = 0
    while True:
        try:
            status = _fetch_status(source)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if frames == 0:
                stream.write(f"repro top: cannot read {source}: {exc}\n")
                return 1
            stream.write("repro top: source went away; exiting\n")
            return 0
        frames += 1
        if clear:
            stream.write("\x1b[2J\x1b[H")
        stream.write(render_status(status, title=f"repro top — {source}"))
        stream.flush()
        if iterations is not None and frames >= iterations:
            return 0
        if status.get("finished"):
            return 0
        time.sleep(interval)
