"""Dependency-free metrics: counters, gauges and histograms with labels.

The paper's evaluation (Figs. 5-8, Tables III-V) is entirely an
exercise in *schedule telemetry* — per-PE throughput, utilization and
the price of replication.  This module is the substrate that carries
those numbers: a :class:`MetricsRegistry` holding named metric
families, each family fanning out into labelled series, exportable as
a JSON snapshot (machine consumption, exact round-trip) or
Prometheus-style text exposition (human eyeballs, `promtool`, scrape
endpoints).

Design constraints, in order:

* **stdlib only** — the registry must import on the barest container;
* **thread-safe** — the threaded runtime and the cluster server mutate
  metrics from many threads; every read-modify-write takes a lock;
* **clock-free** — metrics never read a clock themselves, so the same
  registry works under virtual (DES) and wall time (see
  :mod:`repro.observability.timer`).
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_into",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds-flavoured: they span
#: sub-millisecond RPC hops up to DES makespans of hours).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
    50.0, 100.0, 500.0, 1000.0, 5000.0, float("inf"),
)


class Counter:
    """Monotonically increasing value (e.g. tasks assigned)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that can go up and down (e.g. ready-queue depth)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution (e.g. task latency).

    ``buckets`` are upper bounds; a terminal ``+inf`` bucket is added
    when missing, so every observation lands somewhere.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_nan_count",
                 "_lock")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        if bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self._bounds = tuple(bounds)
        self._counts = [0] * len(self._bounds)
        self._sum = 0.0
        self._count = 0
        self._nan_count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:
            # NaN: bisect_left against NaN lands in an arbitrary bucket
            # and NaN-poisons ``sum`` forever.  Count and drop instead,
            # so a single bad sample stays visible but harmless.
            with self._lock:
                self._nan_count += 1
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def nan_count(self) -> int:
        """Observations rejected because they were NaN."""
        return self._nan_count

    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, count in zip(self._bounds, self._counts):
                running += count
                out.append((bound, running))
        return out

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile by linear interpolation.

        Walks the cumulative bucket counts to the first bucket holding
        the target rank, then interpolates linearly between its bounds
        (Prometheus ``histogram_quantile`` semantics): the estimate is
        exact only up to bucket resolution.  An empty histogram returns
        NaN; a target landing in the terminal ``+Inf`` bucket returns
        the largest finite bound, since there is no upper edge to
        interpolate toward.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return float("nan")
        target = q * total
        running = 0
        for index, (bound, count) in enumerate(zip(self._bounds, counts)):
            if running + count >= target and count > 0:
                if bound == float("inf"):
                    if index == 0:
                        return float("nan")  # every bucket is +Inf-wide
                    return self._bounds[index - 1]
                lower = self._bounds[index - 1] if index > 0 else min(
                    0.0, bound
                )
                fraction = (target - running) / count
                return lower + (bound - lower) * fraction
            running += count
        return self._bounds[-2] if len(self._bounds) > 1 else float("nan")


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric fanned out over label values.

    With no label names the family holds a single series and proxies
    the metric interface directly (``family.inc()``), so unlabelled
    metrics cost no ceremony.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] | None = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind not in _METRIC_TYPES:
            raise ValueError(f"unknown metric type {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_BUCKETS)
        return _METRIC_TYPES[self.kind]()

    def labels(self, **labelvalues: str) -> Counter | Gauge | Histogram:
        """The child series for these label values (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def series(self) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        with self._lock:
            items = list(self._children.items())
        for key, child in sorted(items, key=lambda kv: kv[0]):
            yield dict(zip(self.labelnames, key)), child

    # -- unlabelled convenience proxies --------------------------------
    def _solo(self) -> Counter | Gauge | Histogram:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...)")
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self._solo().set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self._solo().observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self._solo().value  # type: ignore[union-attr]


class MetricsRegistry:
    """A process-local collection of metric families.

    The ``counter``/``gauge``/``histogram`` constructors are
    *get-or-create*: asking twice for the same name returns the same
    family (and re-registering under a different type or label set is
    an error), which is what lets the DES and the threaded runtime
    converge on identical metric names by calling the same declaration
    helpers (:mod:`repro.observability.conventions`).
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = MetricFamily(name, kind, help, tuple(labelnames), buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, tuple(labelnames), buckets)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    # ------------------------------------------------------------------
    # JSON snapshot (exact round-trip)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dict of every family and series.

        Declared-but-never-observed families appear with an empty
        ``series`` list, so metric *names* survive even on runs that
        exercised nothing — the parity tests rely on this.
        """
        families = []
        with self._lock:
            ordered = sorted(self._families.values(), key=lambda f: f.name)
        for family in ordered:
            series = []
            for labels, child in family.series():
                entry: dict = {"labels": labels}
                if isinstance(child, Histogram):
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                    entry["buckets"] = [
                        ["+Inf" if le == float("inf") else le, count]
                        for le, count in child.cumulative()
                    ]
                    if child.nan_count:
                        # Only when nonzero, so clean runs stay
                        # byte-identical to pre-nan-count snapshots.
                        entry["nan"] = child.nan_count
                else:
                    entry["value"] = child.value
                series.append(entry)
            families.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "series": series,
                }
            )
        return {"schema": "repro.metrics.v1", "metrics": families}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (validating)."""
        if snapshot.get("schema") != "repro.metrics.v1":
            raise ValueError(
                f"unrecognised metrics schema {snapshot.get('schema')!r}"
            )
        registry = cls()
        for family_dict in snapshot["metrics"]:
            name = family_dict["name"]
            kind = family_dict["type"]
            labelnames = tuple(family_dict.get("labelnames", ()))
            help_text = family_dict.get("help", "")
            buckets = None
            if kind == "histogram":
                for entry in family_dict.get("series", ()):
                    buckets = [
                        float("inf") if le == "+Inf" else float(le)
                        for le, _ in entry["buckets"]
                    ]
                    break
            family = registry._register(name, kind, help_text, labelnames, buckets)
            for entry in family_dict.get("series", ()):
                child = family.labels(**entry.get("labels", {}))
                if kind == "histogram":
                    assert isinstance(child, Histogram)
                    previous = 0
                    cumulative = [
                        (float("inf") if le == "+Inf" else float(le), int(c))
                        for le, c in entry["buckets"]
                    ]
                    for index, (_, count) in enumerate(cumulative):
                        child._counts[index] = count - previous
                        previous = count
                    child._sum = float(entry["sum"])
                    child._count = int(entry["count"])
                    child._nan_count = int(entry.get("nan", 0))
                elif kind == "counter":
                    child.inc(float(entry["value"]))  # type: ignore[union-attr]
                else:
                    child.set(float(entry["value"]))  # type: ignore[union-attr]
        return registry

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """Text exposition (version 0.0.4 style) of every series."""
        lines: list[str] = []
        with self._lock:
            ordered = sorted(self._families.values(), key=lambda f: f.name)
        for family in ordered:
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.series():
                if isinstance(child, Histogram):
                    for le, count in child.cumulative():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_float(le)
                        lines.append(
                            f"{family.name}_bucket{_format_labels(bucket_labels)}"
                            f" {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_format_labels(labels)}"
                        f" {_format_float(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(labels)}"
                        f" {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_format_labels(labels)}"
                        f" {_format_float(child.value)}"
                    )
        return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
def merge_into(registry: MetricsRegistry, snapshot: Mapping) -> None:
    """Fold one snapshot dict into a live registry, in place.

    Families are merged by name (types and label sets must agree);
    series with identical labels are combined — counters and histograms
    add, gauges keep the incoming value.  This is the primitive under
    :func:`merge_snapshots` and the master's fleet aggregation.
    """
    incoming = MetricsRegistry.from_snapshot(snapshot)
    for name in incoming.names():
        family = incoming.get(name)
        assert family is not None
        target = registry._register(
            name, family.kind, family.help, family.labelnames,
            family._buckets,
        )
        if family.kind == "histogram" and family._buckets is not None:
            with target._lock:
                # A family first seen through an empty-series snapshot
                # has no committed bounds; adopt the incoming ones
                # before any child is created with the defaults.
                if not target._children and target._buckets != family._buckets:
                    target._buckets = family._buckets
        for labels, child in family.series():
            existing = target.labels(**labels)
            if isinstance(child, Histogram):
                assert isinstance(existing, Histogram)
                if existing.bounds != child.bounds:
                    raise ValueError(
                        f"{name}: histogram bucket bounds disagree"
                    )
                with existing._lock:
                    for index, count in enumerate(child._counts):
                        existing._counts[index] += count
                    existing._sum += child.sum
                    existing._count += child.count
                    existing._nan_count += child.nan_count
            elif isinstance(child, Counter):
                existing.inc(child.value)  # type: ignore[union-attr]
            else:
                existing.set(child.value)  # type: ignore[union-attr]


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge snapshot dicts into one (e.g. master-side + worker-side).

    Families are merged by name (types and label sets must agree);
    series with identical labels are combined — counters and histograms
    add, gauges keep the last value seen.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merge_into(merged, snapshot)
    return merged.snapshot()
