"""Tiny stdlib HTTP server exposing live metrics endpoints.

Serves three read-only endpoints from a daemon thread:

* ``/metrics`` — OpenMetrics text of the current snapshot;
* ``/healthz`` — liveness probe (``ok`` / 503);
* ``/statusz`` — operator-facing JSON summary.

The server is deliberately generic: it is handed three callables and
knows nothing about masters or schedulers, so the cluster
:class:`~repro.cluster.server.MasterServer` (and any future always-on
service) can mount it without import cycles.  ``port=0`` binds an
ephemeral port; read :attr:`MetricsHTTPServer.port` after
:meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from .exposition import OPENMETRICS_CONTENT_TYPE, openmetrics_text

__all__ = ["MetricsHTTPServer"]


class MetricsHTTPServer:
    """Expose ``/metrics``, ``/healthz`` and ``/statusz`` over HTTP."""

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping],
        status_fn: Callable[[], Mapping] | None = None,
        health_fn: Callable[[], bool] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self._status_fn = status_fn
        self._health_fn = health_fn
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self._host, self.port)

    def url(self, path: str = "/metrics") -> str:
        return f"http://{self._host}:{self.port}{path}"

    # ------------------------------------------------------------------
    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # Exceptions from callables must surface as 500s, never
            # kill the serving thread.
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                try:
                    outer._route(self)
                except Exception as exc:  # pragma: no cover - defensive
                    self._send(500, "text/plain; charset=utf-8",
                               f"error: {exc}\n")

            def _send(self, code: int, content_type: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def _route(self, handler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            handler._send(
                200, OPENMETRICS_CONTENT_TYPE,
                openmetrics_text(self._snapshot_fn()),
            )
        elif path == "/healthz":
            healthy = True if self._health_fn is None else bool(self._health_fn())
            if healthy:
                handler._send(200, "text/plain; charset=utf-8", "ok\n")
            else:
                handler._send(503, "text/plain; charset=utf-8", "unhealthy\n")
        elif path == "/statusz":
            if self._status_fn is None:
                handler._send(404, "text/plain; charset=utf-8",
                              "no status endpoint\n")
                return
            body = json.dumps(self._status_fn(), indent=2, sort_keys=True)
            handler._send(200, "application/json; charset=utf-8", body + "\n")
        else:
            handler._send(404, "text/plain; charset=utf-8", "not found\n")

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd = None
