"""Unified observability: metrics, timers and structured event logs.

The instrumentation substrate every execution environment reports
through — the in-process threaded runtime, the discrete-event
simulator and the TCP cluster all emit the *same* metric names (see
:mod:`repro.observability.conventions`) and the same JSONL event
schema, so schedule-quality telemetry is comparable across them.
Dependency-free by design; see ``docs/observability.md`` for the
naming contract and export formats.
"""

from .analysis import (
    ExecutionInterval,
    PETimeline,
    TraceAnalysis,
    analyze_events,
    diff_documents,
    format_diff,
    format_report,
)
from .conventions import (
    SPAN_END_REASONS,
    SPAN_NAMES,
    SPAN_STATUSES,
    TRACE_REPORT_METRICS,
    TRACE_REPORT_PE_FIELDS,
    TRACE_REPORT_SCHEMA,
    cache_instruments,
    cluster_server_instruments,
    cluster_worker_instruments,
    finalize_run_metrics,
    master_instruments,
    screen_instruments,
    service_instruments,
)
from .dashboard import render_status, run_top, status_from_snapshot
from .events import EventLog
from .exposition import (
    OPENMETRICS_CONTENT_TYPE,
    OpenMetricsParseError,
    openmetrics_text,
    parse_openmetrics,
)
from .httpd import MetricsHTTPServer
from .spans import (
    Span,
    SpanContext,
    derive_spans,
    execution_span_id,
    span_structure,
    task_trace_id,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_into,
    merge_snapshots,
)
from .telemetry import (
    TELEMETRY_SCHEMA,
    TelemetrySampler,
    TelemetryWriter,
    read_telemetry,
    replay_telemetry,
    snapshot_delta,
)
from .timer import Stopwatch, Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_into",
    "merge_snapshots",
    "OPENMETRICS_CONTENT_TYPE",
    "OpenMetricsParseError",
    "openmetrics_text",
    "parse_openmetrics",
    "TELEMETRY_SCHEMA",
    "TelemetryWriter",
    "TelemetrySampler",
    "snapshot_delta",
    "read_telemetry",
    "replay_telemetry",
    "MetricsHTTPServer",
    "status_from_snapshot",
    "render_status",
    "run_top",
    "EventLog",
    "Timer",
    "Stopwatch",
    "master_instruments",
    "cache_instruments",
    "screen_instruments",
    "cluster_server_instruments",
    "cluster_worker_instruments",
    "service_instruments",
    "finalize_run_metrics",
    "Span",
    "SpanContext",
    "task_trace_id",
    "execution_span_id",
    "derive_spans",
    "span_structure",
    "ExecutionInterval",
    "PETimeline",
    "TraceAnalysis",
    "analyze_events",
    "format_report",
    "diff_documents",
    "format_diff",
    "SPAN_NAMES",
    "SPAN_STATUSES",
    "SPAN_END_REASONS",
    "TRACE_REPORT_SCHEMA",
    "TRACE_REPORT_METRICS",
    "TRACE_REPORT_PE_FIELDS",
]
