"""Unified observability: metrics, timers and structured event logs.

The instrumentation substrate every execution environment reports
through — the in-process threaded runtime, the discrete-event
simulator and the TCP cluster all emit the *same* metric names (see
:mod:`repro.observability.conventions`) and the same JSONL event
schema, so schedule-quality telemetry is comparable across them.
Dependency-free by design; see ``docs/observability.md`` for the
naming contract and export formats.
"""

from .conventions import (
    cluster_server_instruments,
    cluster_worker_instruments,
    finalize_run_metrics,
    master_instruments,
)
from .events import EventLog
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    merge_snapshots,
)
from .timer import Stopwatch, Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "EventLog",
    "Timer",
    "Stopwatch",
    "master_instruments",
    "cluster_server_instruments",
    "cluster_worker_instruments",
    "finalize_run_metrics",
]
