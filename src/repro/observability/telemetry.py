"""Periodic telemetry sampling to a ``repro.telemetry.v1`` JSONL stream.

Post-mortem snapshots (``repro.metrics.v1``) tell you where a run
*ended*; the paper's evaluation (and any capacity question) needs the
trajectory — GCUPS over time, per-PE balance as the fleet churns.  This
module samples a :class:`~repro.observability.registry.MetricsRegistry`
on a fixed cadence and appends **interval deltas** to a JSONL stream.

Clock-agnosticism is the point.  :class:`TelemetryWriter` is pure — it
never reads a clock or starts a thread; callers hand it a ``clock``
callable and invoke :meth:`~TelemetryWriter.sample` themselves.  The
DES drives it from virtual-time events, so a simulated hour of
telemetry costs milliseconds; :class:`TelemetrySampler` is the
wall-clock thread driver for the threaded runtime and the cluster.

Stream layout (one JSON object per line, all tagged
``"schema": "repro.telemetry.v1"``):

* ``header`` — interval, environment, start time;
* ``sample`` — ``time`` plus a ``delta``: a ``repro.metrics.v1``-shaped
  dict whose counters and histogram buckets hold *increments* since the
  previous sample (gauges hold the current value), so
  :func:`~repro.observability.registry.merge_snapshots` folds samples
  back into cumulative totals;
* ``final`` — the full cumulative snapshot at close, byte-identical to
  the run's ``repro.metrics.v1`` snapshot.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, IO, Mapping

from .registry import merge_snapshots

__all__ = [
    "TELEMETRY_SCHEMA",
    "TelemetrySampler",
    "TelemetryWriter",
    "read_telemetry",
    "replay_telemetry",
    "snapshot_delta",
]

TELEMETRY_SCHEMA = "repro.telemetry.v1"

#: Default sampling cadence (seconds; virtual seconds in the DES).
DEFAULT_INTERVAL = 1.0


def snapshot_delta(previous: Mapping | None, current: Mapping) -> dict:
    """Increment between two ``repro.metrics.v1`` snapshots.

    Returns a snapshot-shaped dict (same schema tag, so
    :func:`merge_snapshots` accepts it) where counter values, histogram
    bucket counts, sums and counts are ``current - previous`` and
    gauges carry the current value.  Every family and series in
    ``current`` appears in the delta — zero increments included — so a
    fold over all samples reconstructs every metric *name*, not just
    the active ones.  ``previous=None`` means "delta since nothing",
    i.e. the full current snapshot.
    """
    if current.get("schema") != "repro.metrics.v1":
        raise ValueError(
            f"unrecognised metrics schema {current.get('schema')!r}"
        )
    prev_series: dict[tuple, Mapping] = {}
    if previous is not None:
        for family in previous.get("metrics", ()):
            for entry in family.get("series", ()):
                key = (
                    family["name"],
                    tuple(sorted(entry.get("labels", {}).items())),
                )
                prev_series[key] = entry
    families = []
    for family in current["metrics"]:
        series = []
        for entry in family.get("series", ()):
            key = (
                family["name"],
                tuple(sorted(entry.get("labels", {}).items())),
            )
            before = prev_series.get(key)
            out: dict = {"labels": dict(entry.get("labels", {}))}
            if family["type"] == "histogram":
                buckets = [list(pair) for pair in entry["buckets"]]
                total = float(entry["sum"])
                count = int(entry["count"])
                nan = int(entry.get("nan", 0))
                if before is not None and len(before["buckets"]) == len(buckets):
                    for pair, (_, prev_count) in zip(
                        buckets, before["buckets"]
                    ):
                        pair[1] -= int(prev_count)
                    total -= float(before["sum"])
                    count -= int(before["count"])
                    nan -= int(before.get("nan", 0))
                out["sum"] = total
                out["count"] = count
                out["buckets"] = buckets
                if nan:
                    out["nan"] = nan
            else:
                value = float(entry["value"])
                if family["type"] == "counter" and before is not None:
                    value -= float(before["value"])
                out["value"] = value
            series.append(out)
        families.append(
            {
                "name": family["name"],
                "type": family["type"],
                "help": family.get("help", ""),
                "labelnames": list(family.get("labelnames", ())),
                "series": series,
            }
        )
    return {"schema": "repro.metrics.v1", "metrics": families}


class TelemetryWriter:
    """Append telemetry records for one run to a JSONL stream.

    Pure and clock-free: ``snapshot_fn`` yields the cumulative
    ``repro.metrics.v1`` dict, ``clock`` the current time in whatever
    timebase the caller lives in.  The caller decides *when* to
    :meth:`sample`; :meth:`close` takes one last sample and writes the
    ``final`` record, and is idempotent.
    """

    def __init__(
        self,
        path: str | Path,
        snapshot_fn: Callable[[], Mapping],
        clock: Callable[[], float],
        interval: float = DEFAULT_INTERVAL,
        environment: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.path = Path(path)
        self.interval = float(interval)
        self._snapshot_fn = snapshot_fn
        self._clock = clock
        self._previous: Mapping | None = None
        self._lock = threading.Lock()
        self._stream: IO[str] | None = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "schema": TELEMETRY_SCHEMA,
                "record": "header",
                "environment": environment,
                "interval": self.interval,
                "time": float(clock()),
            }
        )

    def _write(self, record: dict) -> None:
        assert self._stream is not None
        self._stream.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._stream.flush()

    @property
    def closed(self) -> bool:
        return self._stream is None

    def sample(self) -> None:
        """Append one interval-delta sample (no-op after close)."""
        with self._lock:
            if self._stream is None:
                return
            current = self._snapshot_fn()
            self._write(
                {
                    "schema": TELEMETRY_SCHEMA,
                    "record": "sample",
                    "time": float(self._clock()),
                    "delta": snapshot_delta(self._previous, current),
                }
            )
            self._previous = current

    def close(self) -> None:
        """Take a last sample, write the ``final`` record, close the file.

        Call *after* end-of-run gauges are stamped (e.g.
        ``finalize_run_metrics``) so the final snapshot matches the
        run's ``repro.metrics.v1`` output byte for byte.
        """
        with self._lock:
            if self._stream is None:
                return
            current = self._snapshot_fn()
            self._write(
                {
                    "schema": TELEMETRY_SCHEMA,
                    "record": "sample",
                    "time": float(self._clock()),
                    "delta": snapshot_delta(self._previous, current),
                }
            )
            self._write(
                {
                    "schema": TELEMETRY_SCHEMA,
                    "record": "final",
                    "time": float(self._clock()),
                    "snapshot": current,
                }
            )
            self._stream.close()
            self._stream = None


class TelemetrySampler:
    """Wall-clock thread driving a :class:`TelemetryWriter`.

    ``stop()`` halts the thread without finalizing the stream (so the
    caller can stamp end-of-run gauges first); ``close()`` stops and
    writes the ``final`` record.
    """

    def __init__(self, writer: TelemetryWriter) -> None:
        self.writer = writer
        self._halt = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetrySampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._thread = threading.Thread(
            target=self._loop, name="telemetry-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._halt.wait(self.writer.interval):
            self.writer.sample()

    def stop(self) -> None:
        self._halt.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        self.stop()
        self.writer.close()


def read_telemetry(path: str | Path) -> list[dict]:
    """Load and validate a telemetry stream (schema-tag checked)."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("schema") != TELEMETRY_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: unrecognised telemetry schema "
                    f"{record.get('schema')!r}"
                )
            if record.get("record") not in ("header", "sample", "final"):
                raise ValueError(
                    f"{path}:{lineno}: unknown record kind "
                    f"{record.get('record')!r}"
                )
            records.append(record)
    return records


def replay_telemetry(records: list[dict]) -> dict:
    """Fold sample deltas back into a cumulative snapshot.

    Counters and histogram bucket counts reconstruct exactly (integer
    arithmetic); float ``sum`` fields may differ from the ``final``
    record in the last ulp, which is why byte-match guarantees attach
    to ``final``, not to this fold.
    """
    deltas = [r["delta"] for r in records if r.get("record") == "sample"]
    return merge_snapshots(*deltas)
