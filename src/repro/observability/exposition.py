"""OpenMetrics text exposition and a strict validating parser.

:meth:`MetricsRegistry.prometheus_text` renders the classic Prometheus
0.0.4 format, which is fine for eyeballs but predates a written spec.
This module renders the same data as `OpenMetrics 1.0
<https://github.com/OpenObservability/OpenMetrics>`_ — the format the
``/metrics`` endpoint serves — and ships a deliberately strict parser
so CI can *prove* a scrape is well-formed rather than hoping.

The two OpenMetrics quirks worth knowing:

* a counter's *family* name drops the ``_total`` suffix in the
  ``# TYPE`` line while its *samples* keep it (``# TYPE foo counter``
  / ``foo_total 3``);
* the stream must end with a literal ``# EOF`` line, so a truncated
  scrape is detectable.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

from .registry import (
    MetricsRegistry,
    _escape_help,
    _format_float,
    _format_labels,
)

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "OpenMetricsParseError",
    "openmetrics_text",
    "parse_openmetrics",
]

#: Content-Type the ``/metrics`` endpoint advertises.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


class OpenMetricsParseError(ValueError):
    """Raised by :func:`parse_openmetrics` on any spec violation."""


def _family_name(name: str, kind: str) -> str:
    """OpenMetrics family name: counters drop the ``_total`` suffix."""
    if kind == "counter" and name.endswith("_total"):
        return name[: -len("_total")]
    return name


def openmetrics_text(source: MetricsRegistry | Mapping) -> str:
    """Render a registry or ``repro.metrics.v1`` snapshot as OpenMetrics.

    Output is deterministic: families sorted by name, series sorted by
    label values (both inherited from the registry), terminated by the
    mandatory ``# EOF`` line.
    """
    if isinstance(source, MetricsRegistry):
        registry = source
    else:
        registry = MetricsRegistry.from_snapshot(source)
    lines: list[str] = []
    for name in registry.names():
        family = registry.get(name)
        assert family is not None
        fam = _family_name(name, family.kind)
        lines.append(f"# TYPE {fam} {family.kind}")
        if family.help:
            lines.append(f"# HELP {fam} {_escape_help(family.help)}")
        for labels, child in family.series():
            if family.kind == "histogram":
                for le, count in child.cumulative():  # type: ignore[union-attr]
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_float(le)
                    lines.append(
                        f"{fam}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{fam}_sum{_format_labels(labels)}"
                    f" {_format_float(child.sum)}"  # type: ignore[union-attr]
                )
                lines.append(
                    f"{fam}_count{_format_labels(labels)}"
                    f" {child.count}"  # type: ignore[union-attr]
                )
            elif family.kind == "counter":
                lines.append(
                    f"{fam}_total{_format_labels(labels)}"
                    f" {_format_float(child.value)}"  # type: ignore[union-attr]
                )
            else:
                lines.append(
                    f"{fam}{_format_labels(labels)}"
                    f" {_format_float(child.value)}"  # type: ignore[union-attr]
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict parser
# ----------------------------------------------------------------------

#: Sample-name suffixes each metric type may emit.
_ALLOWED_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_sum", "_count"),
}


def _parse_value(token: str, where: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise OpenMetricsParseError(f"{where}: bad value {token!r}") from None


def _parse_labels(text: str, where: str) -> dict[str, str]:
    """Parse the interior of a ``{...}`` label block (escape-aware)."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        match = _LABEL_NAME_RE.match(text, i)
        if match is None:
            raise OpenMetricsParseError(f"{where}: bad label name at {text[i:]!r}")
        name = match.group(0)
        i = match.end()
        if i >= len(text) or text[i] != "=":
            raise OpenMetricsParseError(f"{where}: expected '=' after {name!r}")
        i += 1
        if i >= len(text) or text[i] != '"':
            raise OpenMetricsParseError(f"{where}: label value must be quoted")
        i += 1
        out: list[str] = []
        while True:
            if i >= len(text):
                raise OpenMetricsParseError(f"{where}: unterminated label value")
            ch = text[i]
            if ch == "\\":
                if i + 1 >= len(text):
                    raise OpenMetricsParseError(f"{where}: dangling escape")
                esc = text[i + 1]
                if esc == "n":
                    out.append("\n")
                elif esc in ('"', "\\"):
                    out.append(esc)
                else:
                    raise OpenMetricsParseError(
                        f"{where}: bad escape \\{esc}"
                    )
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            out.append(ch)
            i += 1
        if name in labels:
            raise OpenMetricsParseError(f"{where}: duplicate label {name!r}")
        labels[name] = "".join(out)
        if i < len(text):
            if text[i] != ",":
                raise OpenMetricsParseError(
                    f"{where}: expected ',' between labels"
                )
            i += 1
    return labels


def _split_sample(line: str, where: str) -> tuple[str, dict[str, str], float]:
    """Split ``name{labels} value`` into its three parts."""
    brace = line.find("{")
    if brace >= 0:
        close = line.find("}", brace)
        if close < 0:
            raise OpenMetricsParseError(f"{where}: unterminated label block")
        name = line[:brace]
        labels = _parse_labels(line[brace + 1 : close], where)
        rest = line[close + 1 :]
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise OpenMetricsParseError(f"{where}: expected 'name value'")
        name, rest = parts
        labels = {}
    if not _METRIC_NAME_RE.match(name):
        raise OpenMetricsParseError(f"{where}: bad metric name {name!r}")
    tokens = rest.split()
    if len(tokens) != 1:
        raise OpenMetricsParseError(
            f"{where}: expected exactly one value, got {rest!r}"
        )
    return name, labels, _parse_value(tokens[0], where)


def _resolve_family(
    name: str, families: Mapping[str, dict], where: str
) -> tuple[str, str]:
    """Map a sample name to its (family, suffix) under the declared types."""
    for suffix in ("_bucket", "_sum", "_count", "_total", ""):
        if suffix and not name.endswith(suffix):
            continue
        base = name[: len(name) - len(suffix)] if suffix else name
        family = families.get(base)
        if family is None:
            continue
        if suffix in _ALLOWED_SUFFIXES[family["type"]]:
            return base, suffix
    raise OpenMetricsParseError(
        f"{where}: sample {name!r} has no preceding # TYPE declaration"
    )


def _check_histogram_series(family: str, parsed: dict) -> None:
    """Bucket monotonicity, +Inf terminal, and count/sum consistency."""
    by_series: dict[tuple, dict] = {}
    for name, labels, value in parsed["samples"]:
        base_labels = {k: v for k, v in labels.items() if k != "le"}
        key = tuple(sorted(base_labels.items()))
        series = by_series.setdefault(
            key, {"buckets": [], "sum": None, "count": None}
        )
        if name.endswith("_bucket"):
            if "le" not in labels:
                raise OpenMetricsParseError(
                    f"{family}: _bucket sample missing 'le' label"
                )
            series["buckets"].append(
                (_parse_value(labels["le"], family), value)
            )
        elif name.endswith("_sum"):
            series["sum"] = value
        elif name.endswith("_count"):
            series["count"] = value
    for key, series in by_series.items():
        buckets = series["buckets"]
        if not buckets:
            raise OpenMetricsParseError(
                f"{family}{dict(key)}: histogram series has no buckets"
            )
        previous = -1.0
        for le, count in buckets:
            if count < previous:
                raise OpenMetricsParseError(
                    f"{family}{dict(key)}: bucket counts not cumulative"
                )
            previous = count
        if buckets[-1][0] != math.inf:
            raise OpenMetricsParseError(
                f"{family}{dict(key)}: missing terminal +Inf bucket"
            )
        if series["count"] is None or series["sum"] is None:
            raise OpenMetricsParseError(
                f"{family}{dict(key)}: missing _count or _sum sample"
            )
        if buckets[-1][1] != series["count"]:
            raise OpenMetricsParseError(
                f"{family}{dict(key)}: +Inf bucket != _count"
            )


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse and validate an OpenMetrics exposition.

    Returns ``{family_name: {"type", "help", "samples"}}`` where
    ``samples`` is a list of ``(sample_name, labels, value)`` tuples.
    Raises :class:`OpenMetricsParseError` on: missing ``# EOF``,
    samples before their ``# TYPE``, duplicate metadata or samples,
    malformed names/labels/values, negative counters, non-cumulative
    histogram buckets, or a ``+Inf`` bucket disagreeing with
    ``_count``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsParseError("missing '# EOF' terminator")
    families: dict[str, dict] = {}
    seen: set[tuple] = set()
    for lineno, line in enumerate(lines[:-1], start=1):
        where = f"line {lineno}"
        if not line:
            raise OpenMetricsParseError(f"{where}: blank line")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                raise OpenMetricsParseError(f"{where}: bad comment {line!r}")
            keyword, name = parts[1], parts[2]
            if keyword == "TYPE":
                if len(parts) != 4:
                    raise OpenMetricsParseError(f"{where}: bad TYPE line")
                kind = parts[3]
                if kind not in _ALLOWED_SUFFIXES:
                    raise OpenMetricsParseError(
                        f"{where}: unsupported type {kind!r}"
                    )
                if name in families:
                    raise OpenMetricsParseError(
                        f"{where}: duplicate TYPE for {name!r}"
                    )
                if not _METRIC_NAME_RE.match(name):
                    raise OpenMetricsParseError(
                        f"{where}: bad metric name {name!r}"
                    )
                families[name] = {"type": kind, "help": None, "samples": []}
            elif keyword == "HELP":
                family = families.get(name)
                if family is None:
                    raise OpenMetricsParseError(
                        f"{where}: HELP before TYPE for {name!r}"
                    )
                if family["help"] is not None:
                    raise OpenMetricsParseError(
                        f"{where}: duplicate HELP for {name!r}"
                    )
                family["help"] = parts[3] if len(parts) == 4 else ""
            else:
                raise OpenMetricsParseError(
                    f"{where}: unknown comment keyword {keyword!r}"
                )
            continue
        name, labels, value = _split_sample(line, where)
        base, suffix = _resolve_family(name, families, where)
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            raise OpenMetricsParseError(f"{where}: duplicate sample {name!r}")
        seen.add(key)
        kind = families[base]["type"]
        if kind == "counter" and value < 0:
            raise OpenMetricsParseError(
                f"{where}: counter {name!r} is negative"
            )
        if suffix != "_bucket" and "le" in labels:
            raise OpenMetricsParseError(
                f"{where}: 'le' label outside a _bucket sample"
            )
        families[base]["samples"].append((name, labels, value))
    for base, family in families.items():
        if family["type"] == "histogram":
            _check_histogram_series(base, family)
    return families
