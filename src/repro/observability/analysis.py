"""Pure-function trace analysis: per-PE timelines and diagnostics.

Reconstructs what the paper's figures show — who ran what, when, and
how well the load balanced — from nothing but a structured event log
(a live :class:`~repro.observability.events.EventLog` or one parsed
back from a ``--events-out`` JSONL file).  The computed diagnostics
are the ones the paper's evaluation argues with:

* per-PE busy/idle occupancy and utilization;
* the load-balancing factor (sigma/mu of per-PE busy seconds);
* the replica-waste ratio (execution seconds spent on losing or
  cancelled attempts, over all execution seconds);
* the assignment-latency distribution (seconds a granted task waited
  in its PE's queue before executing);
* the Omega-window rate reconstruction per PE (replaying the PSS
  estimator over the logged progress notifications);
* the critical path (the longest causal chain of executions ending at
  the makespan);
* the fault/recovery summary (``fault_*`` events injected by
  :mod:`repro.faults`, heartbeat reaps, and the reap -> release ->
  reassign -> recover chain of every released task).

Timeline reconstruction replays each PE's FIFO queue: a granted task
starts executing at ``max(assignment time, previous execution's end)``
on its PE, and a task cancelled before that point never ran at all —
exactly the serial-slave semantics every execution environment
implements, so the analyzer needs no environment-specific input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .conventions import TRACE_REPORT_METRICS, TRACE_REPORT_SCHEMA
from .events import EventLog
from .spans import Span, derive_spans, span_structure

__all__ = [
    "ExecutionInterval",
    "PETimeline",
    "TraceAnalysis",
    "analyze_events",
    "format_report",
    "diff_documents",
    "format_diff",
]

#: Default Omega window for the rate reconstruction (matches
#: :data:`repro.core.history.DEFAULT_OMEGA` without importing it —
#: observability sits below core in the layering).
DEFAULT_OMEGA = 8


@dataclass(frozen=True)
class ExecutionInterval:
    """One reconstructed (task, PE) execution on a PE's timeline."""

    pe_id: str
    task_id: int
    assigned: float  # when the master granted the task
    start: float  # when the PE actually began executing it
    end: float
    status: str  # "won" | "stale" | "released" | "open"
    end_reason: str  # "complete" | "cancelled" | "released" | "open"
    kind: str  # "task" | "replica"

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    @property
    def queue_wait(self) -> float:
        """Assignment latency: grant-to-execution queueing delay."""
        return max(self.start - self.assigned, 0.0)

    @property
    def outcome(self) -> str:
        """Gantt-renderer vocabulary (mirrors ``TaskInterval.outcome``)."""
        if self.status == "won":
            return "won"
        if self.end_reason == "complete":
            return "lost"
        return "cancelled"


@dataclass
class PETimeline:
    """One PE's reconstructed schedule and occupancy summary."""

    pe_id: str
    intervals: list[ExecutionInterval] = field(default_factory=list)
    registered_at: float = 0.0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    utilization: float = 0.0
    tasks_won: int = 0
    tasks_lost: int = 0
    estimated_rate: float | None = None  # final Omega-window estimate
    rate_samples: int = 0

    def as_dict(self) -> dict:
        return {
            "busy_seconds": self.busy_seconds,
            "idle_seconds": self.idle_seconds,
            "utilization": self.utilization,
            "tasks_won": self.tasks_won,
            "tasks_lost": self.tasks_lost,
            "estimated_rate_cells_per_second": self.estimated_rate,
            "rate_samples": self.rate_samples,
        }


class _OmegaEstimator:
    """Minimal replay of the PSS weighted-mean estimator.

    Mirrors :class:`repro.core.history.RateEstimator` (newest of k
    samples weight k, oldest weight 1, mean clamped into the sample
    range) without importing core — the analyzer must stay a leaf.
    """

    def __init__(self, omega: int):
        if omega < 1:
            raise ValueError("omega must be at least 1")
        self._omega = omega
        self._rates: list[float] = []

    def observe(self, cells: float, interval: float) -> None:
        if interval <= 0:
            return
        self._rates.append(cells / interval)
        if len(self._rates) > self._omega:
            self._rates.pop(0)

    def rate(self) -> float | None:
        if not self._rates:
            return None
        k = len(self._rates)
        total = math.fsum(
            rank * rate for rank, rate in enumerate(self._rates, start=1)
        )
        mean = total / (k * (k + 1) / 2.0)
        return min(max(mean, min(self._rates)), max(self._rates))


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_events` reconstructs from one log."""

    makespan: float
    horizon: float
    omega: int
    timelines: dict[str, PETimeline]
    spans: list[Span]
    balancing_factor: float
    replica_waste_ratio: float
    total_busy_seconds: float
    wasted_seconds: float
    assignment_latency: dict[str, float]
    critical_path_seconds: float
    critical_path: list[tuple[str, int]]
    rate_series: dict[str, list[tuple[float, float]]]
    events_by_kind: dict[str, int]
    #: Injected-fault and recovery diagnostics (see ``_fault_summary``);
    #: all zeros/empty on a fault-free run.
    faults: dict = field(default_factory=dict)
    #: Checkpoint-resume diagnostics: how many tasks this run restored
    #: from a journal (``recovery_*`` events) versus recomputed.
    recovery: dict = field(default_factory=dict)

    @property
    def intervals(self) -> list[ExecutionInterval]:
        """Every execution interval, Gantt-render order."""
        out = [
            interval
            for timeline in self.timelines.values()
            for interval in timeline.intervals
        ]
        return sorted(out, key=lambda iv: (iv.start, iv.pe_id, iv.task_id))

    def to_document(self) -> dict:
        """The ``repro.trace_report.v1`` JSON document."""
        return {
            "schema": TRACE_REPORT_SCHEMA,
            "omega": self.omega,
            "metrics": {
                "makespan_seconds": self.makespan,
                "balancing_factor": self.balancing_factor,
                "replica_waste_ratio": self.replica_waste_ratio,
                "assignment_latency_seconds": dict(self.assignment_latency),
                "critical_path_seconds": self.critical_path_seconds,
                "total_busy_seconds": self.total_busy_seconds,
            },
            "pes": {
                pe: timeline.as_dict()
                for pe, timeline in sorted(self.timelines.items())
            },
            "critical_path": [
                {"pe": pe, "task": task} for pe, task in self.critical_path
            ],
            "span_structure": span_structure(self.spans),
            "spans": [span.as_dict() for span in self.spans],
            "events_by_kind": dict(sorted(self.events_by_kind.items())),
            "faults": self.faults,
            "recovery": self.recovery,
        }

    def metric_names(self) -> tuple[str, ...]:
        """Top-level metric keys (the cross-environment parity set)."""
        return tuple(sorted(self.to_document()["metrics"]))


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        int(fraction * len(sorted_values)), len(sorted_values) - 1
    )
    return sorted_values[index]


def analyze_events(
    events: EventLog | list[dict], omega: int = DEFAULT_OMEGA
) -> TraceAnalysis:
    """Reconstruct timelines and diagnostics from an event log."""
    ordered = sorted(
        enumerate(events), key=lambda item: (float(item[1]["time"]), item[0])
    )

    class _Pending:
        __slots__ = ("task", "assigned", "kind", "end", "status", "reason")

        def __init__(self, task: int, assigned: float, kind: str):
            self.task = task
            self.assigned = assigned
            self.kind = kind
            self.end: float | None = None
            self.status = "open"
            self.reason = "open"

    per_pe: dict[str, list[_Pending]] = {}
    open_by_key: dict[tuple[str, int], list[_Pending]] = {}
    registered: dict[str, float] = {}
    estimators: dict[str, _OmegaEstimator] = {}
    rate_series: dict[str, list[tuple[float, float]]] = {}
    events_by_kind: dict[str, int] = {}
    fault_counts: dict[str, int] = {}
    reap_count = 0
    recovery_chains: list[dict] = []
    #: task id -> the newest recovery chain still watching it.
    release_watch: dict[int, dict] = {}
    horizon = 0.0
    makespan = 0.0

    for _, event in ordered:
        kind = event["kind"]
        time = float(event["time"])
        horizon = max(horizon, time)
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
        pe = str(event.get("pe", ""))
        task = int(event.get("task", -1))
        if kind.startswith("fault_"):
            name = kind[len("fault_"):]
            fault_counts[name] = fault_counts.get(name, 0) + 1
        if kind == "register":
            registered.setdefault(pe, time)
            per_pe.setdefault(pe, [])
        elif kind in ("assign", "replica"):
            record = _Pending(task, time, kind)
            per_pe.setdefault(pe, []).append(record)
            open_by_key.setdefault((pe, task), []).append(record)
            chain = release_watch.get(task)
            if chain is not None and task not in chain["reassigned"]:
                chain["reassigned"].append(task)
        elif kind == "complete":
            pending = open_by_key.get((pe, task))
            if pending:
                record = pending.pop(0)
                record.end = time
                won = bool(event.get("value", 0.0))
                record.status = "won" if won else "stale"
                record.reason = "complete"
                if won:
                    makespan = max(makespan, time)
            if bool(event.get("value", 0.0)):
                chain = release_watch.pop(task, None)
                if chain is not None and task not in chain["recovered"]:
                    chain["recovered"].append(task)
        elif kind == "cancelled":
            pending = open_by_key.get((pe, task))
            if pending:
                record = pending.pop(0)
                record.end = time
                record.status = "stale"
                record.reason = "cancelled"
        elif kind == "deregister":
            for (open_pe, _), pending in list(open_by_key.items()):
                if open_pe != pe:
                    continue
                for record in pending:
                    record.end = time
                    record.status = "released"
                    record.reason = "released"
                pending.clear()
            reason = str(event.get("reason", "leave"))
            if reason == "reap":
                reap_count += 1
            released = [int(t) for t in event.get("released", ())]
            if released:
                # One reap/leave -> release -> reassign -> recover chain.
                chain = {
                    "pe": pe,
                    "time": time,
                    "reason": reason,
                    "tasks": released,
                    "reassigned": [],
                    "recovered": [],
                }
                recovery_chains.append(chain)
                for task_id in released:
                    release_watch[task_id] = chain
        elif kind == "progress":
            estimator = estimators.get(pe)
            if estimator is None:
                estimator = estimators[pe] = _OmegaEstimator(omega)
            cells = float(event.get("cells", event.get("value", 0.0)))
            interval = float(event.get("interval", 1.0))
            estimator.observe(cells, interval)
            estimate = estimator.rate()
            if estimate is not None:
                rate_series.setdefault(pe, []).append((time, estimate))

    if makespan <= 0:
        makespan = horizon

    # Replay each PE's FIFO queue into actual execution intervals.
    timelines: dict[str, PETimeline] = {}
    for pe, records in per_pe.items():
        timeline = PETimeline(pe_id=pe, registered_at=registered.get(pe, 0.0))
        previous_end = timeline.registered_at
        for record in records:
            end = record.end if record.end is not None else horizon
            start = max(record.assigned, previous_end)
            if end < start:
                start = end  # cancelled while queued: never ran
            else:
                previous_end = end
            timeline.intervals.append(
                ExecutionInterval(
                    pe_id=pe,
                    task_id=record.task,
                    assigned=record.assigned,
                    start=start,
                    end=end,
                    status=record.status if record.end is not None else "open",
                    end_reason=record.reason,
                    kind=record.kind,
                )
            )
        timeline.busy_seconds = math.fsum(
            interval.duration for interval in timeline.intervals
        )
        timeline.idle_seconds = max(horizon - timeline.busy_seconds, 0.0)
        timeline.utilization = (
            timeline.busy_seconds / makespan if makespan > 0 else 0.0
        )
        timeline.tasks_won = sum(
            1 for interval in timeline.intervals if interval.status == "won"
        )
        timeline.tasks_lost = sum(
            1
            for interval in timeline.intervals
            if interval.status in ("stale", "released")
        )
        estimator = estimators.get(pe)
        timeline.estimated_rate = estimator.rate() if estimator else None
        timeline.rate_samples = len(rate_series.get(pe, []))
        timelines[pe] = timeline

    busy = [timeline.busy_seconds for timeline in timelines.values()]
    total_busy = math.fsum(busy)
    mean_busy = total_busy / len(busy) if busy else 0.0
    if mean_busy > 0:
        variance = math.fsum((b - mean_busy) ** 2 for b in busy) / len(busy)
        balancing_factor = math.sqrt(variance) / mean_busy
    else:
        balancing_factor = 0.0
    wasted = math.fsum(
        interval.duration
        for timeline in timelines.values()
        for interval in timeline.intervals
        if interval.status != "won"
    )
    waste_ratio = wasted / total_busy if total_busy > 0 else 0.0

    waits = sorted(
        interval.queue_wait
        for timeline in timelines.values()
        for interval in timeline.intervals
        if interval.duration > 0
    )
    latency = {
        "count": float(len(waits)),
        "mean": math.fsum(waits) / len(waits) if waits else 0.0,
        "p50": _percentile(waits, 0.50),
        "p95": _percentile(waits, 0.95),
        "max": waits[-1] if waits else 0.0,
    }

    critical_seconds, critical_path = _critical_path(timelines)

    faults = {
        "injected": dict(sorted(fault_counts.items())),
        "total_injected": sum(fault_counts.values()),
        "reaps": reap_count,
        "released_tasks": sum(len(c["tasks"]) for c in recovery_chains),
        "reassigned_tasks": sum(
            len(c["reassigned"]) for c in recovery_chains
        ),
        "recovered_tasks": sum(
            len(c["recovered"]) for c in recovery_chains
        ),
        "recoveries": recovery_chains,
    }

    recovery = {
        "resumes": events_by_kind.get("recovery_resume", 0),
        "recovered_tasks": events_by_kind.get("recovery_task", 0),
        "recomputed_tasks": sum(
            t.tasks_won for t in timelines.values()
        ),
        "master_crashes": fault_counts.get("master_crash", 0),
    }

    return TraceAnalysis(
        makespan=makespan,
        horizon=horizon,
        omega=omega,
        timelines=timelines,
        spans=derive_spans(events),
        balancing_factor=balancing_factor,
        replica_waste_ratio=waste_ratio,
        total_busy_seconds=total_busy,
        wasted_seconds=wasted,
        assignment_latency=latency,
        critical_path_seconds=critical_seconds,
        critical_path=critical_path,
        rate_series=rate_series,
        events_by_kind=events_by_kind,
        faults=faults,
        recovery=recovery,
    )


def _critical_path(
    timelines: dict[str, PETimeline],
) -> tuple[float, list[tuple[str, int]]]:
    """Back-walk the chain of executions that ends at the makespan.

    Starting from the latest-ending execution, each hop follows the
    queue dependency that delayed the current execution's start: if it
    began later than its assignment, it was waiting for the previous
    execution on the same PE (whose end equals its start, exactly, by
    reconstruction).  The chain ends at an execution that started the
    moment it was assigned — from there the master, not a predecessor,
    explains the timing.
    """
    started = [
        interval
        for timeline in timelines.values()
        for interval in timeline.intervals
        if interval.duration > 0
    ]
    if not started:
        return 0.0, []
    by_pe_end: dict[tuple[str, float], ExecutionInterval] = {
        (interval.pe_id, interval.end): interval for interval in started
    }
    current = max(started, key=lambda interval: interval.end)
    chain = [current]
    while current.start > current.assigned:
        predecessor = by_pe_end.get((current.pe_id, current.start))
        if predecessor is None or predecessor in chain:
            break
        chain.append(predecessor)
        current = predecessor
    chain.reverse()
    length = math.fsum(interval.duration for interval in chain)
    return length, [(interval.pe_id, interval.task_id) for interval in chain]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def format_report(analysis: TraceAnalysis) -> str:
    """Human-readable text rendering of one trace report."""
    latency = analysis.assignment_latency
    path = analysis.critical_path
    lines = [
        f"trace report ({TRACE_REPORT_SCHEMA})",
        f"  makespan            {analysis.makespan:12.3f} s",
        f"  busy (all PEs)      {analysis.total_busy_seconds:12.3f} s",
        f"  balancing factor    {analysis.balancing_factor:12.3f}"
        "  (sigma/mu of per-PE busy seconds)",
        f"  replica waste       {100 * analysis.replica_waste_ratio:11.2f} %"
        f"  ({analysis.wasted_seconds:.3f} s stale/cancelled)",
        f"  assignment latency  mean {latency['mean']:.4f} s"
        f"  p50 {latency['p50']:.4f}  p95 {latency['p95']:.4f}"
        f"  max {latency['max']:.4f}"
        f"  (n={int(latency['count'])})",
        f"  critical path       {analysis.critical_path_seconds:12.3f} s"
        f"  over {len(path)} execution(s)",
    ]
    faults = analysis.faults
    if faults.get("total_injected") or faults.get("reaps"):
        injected = ", ".join(
            f"{name}={count}"
            for name, count in faults.get("injected", {}).items()
        )
        lines.append(
            f"  faults injected     {faults.get('total_injected', 0):8d}"
            + (f"  ({injected})" if injected else "")
        )
        lines.append(
            f"  recovery            reaps={faults.get('reaps', 0)}"
            f"  released={faults.get('released_tasks', 0)}"
            f"  reassigned={faults.get('reassigned_tasks', 0)}"
            f"  recovered={faults.get('recovered_tasks', 0)}"
        )
        for chain in faults.get("recoveries", []):
            lines.append(
                f"    {chain['reason']} {chain['pe']} @ "
                f"{chain['time']:.3f}s released {chain['tasks']} -> "
                f"reassigned {chain['reassigned']} -> "
                f"recovered {chain['recovered']}"
            )
    recovery = analysis.recovery
    if recovery.get("resumes") or recovery.get("master_crashes"):
        lines.append(
            f"  checkpoint resume   "
            f"resumes={recovery.get('resumes', 0)}"
            f"  restored={recovery.get('recovered_tasks', 0)}"
            f"  recomputed={recovery.get('recomputed_tasks', 0)}"
            f"  master_crashes={recovery.get('master_crashes', 0)}"
        )
    lines += [
        "",
        f"  {'pe':<10} {'busy s':>10} {'idle s':>10} {'util':>6} "
        f"{'won':>5} {'lost':>5} {'Omega-rate':>12}",
    ]
    for pe, timeline in sorted(analysis.timelines.items()):
        rate = (
            f"{timeline.estimated_rate:.3g}"
            if timeline.estimated_rate is not None
            else "-"
        )
        lines.append(
            f"  {pe:<10} {timeline.busy_seconds:>10.3f} "
            f"{timeline.idle_seconds:>10.3f} "
            f"{timeline.utilization:>6.2f} {timeline.tasks_won:>5} "
            f"{timeline.tasks_lost:>5} {rate:>12}"
        )
    return "\n".join(lines)


def diff_documents(a: dict, b: dict) -> dict:
    """Compare two ``repro.trace_report.v1`` documents metric by metric.

    The canonical use is SS-vs-PSS: the paper's argument is exactly the
    delta in balancing factor, waste and occupancy between two
    schedules of the same workload.
    """
    for name, document in (("first", a), ("second", b)):
        if document.get("schema") != TRACE_REPORT_SCHEMA:
            raise ValueError(
                f"{name} document is not a {TRACE_REPORT_SCHEMA} report"
            )
    metrics = {}
    for key in TRACE_REPORT_METRICS:
        left = a["metrics"].get(key)
        right = b["metrics"].get(key)
        if isinstance(left, dict) or isinstance(right, dict):
            left = (left or {}).get("mean", 0.0)
            right = (right or {}).get("mean", 0.0)
        left = float(left or 0.0)
        right = float(right or 0.0)
        metrics[key] = {"a": left, "b": right, "delta": right - left}
    pes = {}
    for pe in sorted(set(a.get("pes", {})) | set(b.get("pes", {}))):
        left = a.get("pes", {}).get(pe, {})
        right = b.get("pes", {}).get(pe, {})
        pes[pe] = {
            "busy_seconds": {
                "a": float(left.get("busy_seconds", 0.0)),
                "b": float(right.get("busy_seconds", 0.0)),
            },
            "utilization": {
                "a": float(left.get("utilization", 0.0)),
                "b": float(right.get("utilization", 0.0)),
            },
        }
    return {"schema": TRACE_REPORT_SCHEMA + "+diff", "metrics": metrics,
            "pes": pes}


def format_diff(diff: dict, labels: tuple[str, str] = ("A", "B")) -> str:
    """Text rendering of :func:`diff_documents` output."""
    a_label, b_label = labels
    lines = [
        "trace diff",
        f"  {'metric':<30} {a_label:>14} {b_label:>14} {'delta':>14}",
    ]
    for key, row in diff["metrics"].items():
        lines.append(
            f"  {key:<30} {row['a']:>14.4f} {row['b']:>14.4f} "
            f"{row['delta']:>+14.4f}"
        )
    lines.append("")
    lines.append(
        f"  {'pe occupancy':<30} {a_label:>14} {b_label:>14} {'delta':>14}"
    )
    for pe, row in diff["pes"].items():
        busy = row["busy_seconds"]
        lines.append(
            f"  {pe + ' busy s':<30} {busy['a']:>14.3f} {busy['b']:>14.3f} "
            f"{busy['b'] - busy['a']:>+14.3f}"
        )
    return "\n".join(lines)
