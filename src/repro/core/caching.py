"""Process-wide pack/profile caches for the serving hot path.

The paper's task model is one query × whole database, so a naive engine
re-packs the database and rebuilds the query profile for every task.
CUDASW++ 2.0 and SWAPHI amortize exactly this conversion cost across
queries; this module gives the numpy engines the same lever:

* :class:`KeyedLRU` — a small thread-safe LRU with hit/miss/eviction
  accounting, optionally bound to the run's
  :class:`~repro.observability.MetricsRegistry` (``cache_*`` families,
  labelled by cache name);
* :class:`PackCache` — memoizes the length-sorted :class:`LanePack`
  batches of a database conversion, keyed by database identity and
  shape (see ``docs/robustness.md`` for the key-semantics discussion);
* :class:`ProfileCache` — memoizes query profiles (striped or padded),
  content-addressed by the query's residue codes so equal sequences
  share an entry regardless of object identity.

Both caches key on :attr:`SubstitutionMatrix.digest` — a content hash
of the score table — never on ``matrix.name``, so two distinct customs
sharing a display name cannot alias one entry and return wrong scores.

Either cache can be backed by a :class:`~repro.store.PackStore` disk
tier (``store=``): an LRU miss consults the store before rebuilding, so
a warm-started process memory-maps previously serialized packs instead
of re-packing.  The store is a read-only tier here — population happens
explicitly via ``repro db build`` — and a corrupt store entry raises
rather than falling back, so disk rot is loud.

Cached arrays are frozen (``setflags(write=False)``) so a buggy kernel
that tries to mutate shared state trips immediately instead of
corrupting later searches — the cache-correctness tests rely on this.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from ..align.intersequence import LanePack, pack_database
from ..align.screening import LengthBinnedPack, pack_database_binned
from ..align.scoring import SubstitutionMatrix
from ..sequences.database import SequenceDatabase

__all__ = [
    "KeyedLRU",
    "PackCache",
    "ProfileCache",
    "default_pack_cache",
    "default_profile_cache",
]

V = TypeVar("V")


class KeyedLRU:
    """Thread-safe keyed LRU with hit/miss/eviction accounting.

    Counts are always kept locally (so tests can assert without a
    registry); :meth:`bind` additionally mirrors every increment into
    the supplied registry's ``cache_*`` metric families.
    """

    def __init__(self, capacity: int, name: str = "lru") -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._instruments = None

    def bind(self, registry) -> None:
        """Mirror future hits/misses/evictions into *registry*."""
        from ..observability.conventions import cache_instruments

        with self._lock:
            self._instruments = cache_instruments(registry)
            self._instruments.entries.labels(cache=self.name).set(
                len(self._entries)
            )

    def unbind(self) -> None:
        with self._lock:
            self._instruments = None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            if self._instruments is not None:
                self._instruments.entries.labels(cache=self.name).set(0)

    def get_or_build(self, key: Hashable, builder: Callable[[], V]) -> V:
        """Return the cached value for *key*, building it on a miss.

        The builder runs outside the lock (conversions are slow); two
        threads may race to build the same entry, in which case the
        first insert wins and the loser's work is discarded.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                if self._instruments is not None:
                    self._instruments.hits.labels(cache=self.name).inc()
                return value  # type: ignore[return-value]
            self.misses += 1
            if self._instruments is not None:
                self._instruments.misses.labels(cache=self.name).inc()
        value = builder()
        with self._lock:
            if key not in self._entries:
                self._entries[key] = value
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
                    if self._instruments is not None:
                        self._instruments.evictions.labels(
                            cache=self.name
                        ).inc()
            else:
                value = self._entries[key]  # a racing build won
                self._entries.move_to_end(key)
            if self._instruments is not None:
                self._instruments.entries.labels(cache=self.name).set(
                    len(self._entries)
                )
        return value  # type: ignore[return-value]


def _freeze_pack(pack: LanePack) -> LanePack:
    """Make a pack's arrays read-only before sharing across searches."""
    for array in (pack.residues, pack.lengths, pack.order):
        array.setflags(write=False)
    return pack


class PackCache:
    """Memoized database → :class:`LanePack` conversions.

    Keyed by database identity *and* shape — ``(id(database),
    len(database), total_residues, matrix.digest, lanes)`` — with a
    strong reference to the database held in the entry so the ``id()``
    can never be recycled while its packs are resident.  A database
    mutated in place would defeat the key; :class:`SequenceDatabase`
    fixes its records at construction, which is what makes this safe.
    The matrix enters the key by content digest, not display name.
    """

    def __init__(
        self, capacity: int = 8, name: str = "pack", store=None
    ) -> None:
        self._lru = KeyedLRU(capacity, name=name)
        self.store = store

    @property
    def lru(self) -> KeyedLRU:
        return self._lru

    def bind(self, registry) -> None:
        self._lru.bind(registry)

    def unbind(self) -> None:
        self._lru.unbind()

    def clear(self) -> None:
        self._lru.clear()

    def packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int,
    ) -> tuple[LanePack, ...]:
        key = (
            id(database),
            len(database),
            database.total_residues,
            matrix.digest,
            int(lanes),
        )

        def build() -> tuple[SequenceDatabase, tuple[LanePack, ...]]:
            packs = None
            if self.store is not None:
                # Disk tier: mmap previously serialized packs.  The
                # store returns None only when the entry is absent; a
                # corrupt entry raises instead of rebuilding silently.
                packs = self.store.get_packs(database, matrix, lanes)
            if packs is None:
                packs = tuple(
                    _freeze_pack(p)
                    for p in pack_database(database, matrix, lanes=lanes)
                )
            # Keep the database alive alongside its packs: the id() in
            # the key stays valid exactly as long as the entry does.
            return (database, packs)

        return self._lru.get_or_build(key, build)[1]

    def binned_packs(
        self,
        database: SequenceDatabase,
        matrix: SubstitutionMatrix,
        lanes: int,
        bin_width: int,
    ) -> tuple[LengthBinnedPack, ...]:
        """Length-binned screening packs, same tiering as :meth:`packs`.

        The ``"binned"`` tag keeps these entries disjoint from the
        plain packs of the same database even at equal lane counts.
        """
        key = (
            "binned",
            id(database),
            len(database),
            database.total_residues,
            matrix.digest,
            int(lanes),
            int(bin_width),
        )

        def build() -> tuple[
            SequenceDatabase, tuple[LengthBinnedPack, ...]
        ]:
            packs = None
            if self.store is not None:
                packs = self.store.get_binned_packs(
                    database, matrix, lanes, bin_width
                )
            if packs is None:
                packs = tuple(
                    _freeze_pack(p)
                    for p in pack_database_binned(
                        database, matrix, lanes=lanes, bin_width=bin_width
                    )
                )
            return (database, packs)

        return self._lru.get_or_build(key, build)[1]


class ProfileCache:
    """Memoized query profiles, content-addressed by residue codes.

    The key embeds the query's coded residues (``codes.tobytes()``),
    the matrix's content digest and every shape parameter of the
    profile, so two :class:`~repro.sequences.records.Sequence` objects
    with equal residues share one entry and a near-miss (different
    matrix, lane count or cap) can never alias.
    """

    def __init__(
        self, capacity: int = 256, name: str = "profile", store=None
    ) -> None:
        self._lru = KeyedLRU(capacity, name=name)
        self.store = store

    @property
    def lru(self) -> KeyedLRU:
        return self._lru

    def bind(self, registry) -> None:
        self._lru.bind(registry)

    def unbind(self) -> None:
        self._lru.unbind()

    def clear(self) -> None:
        self._lru.clear()

    def get_or_build(
        self,
        kind: str,
        codes_key: bytes,
        matrix: SubstitutionMatrix,
        params: tuple,
        builder: Callable[[], V],
    ) -> V:
        key = (kind, codes_key, matrix.digest, params)
        if self.store is None or not isinstance(codes_key, bytes):
            # "multi" profiles key on tuples of codes; those composites
            # stay in-memory only.
            return self._lru.get_or_build(key, builder)

        def tiered():
            value = self.store.get_profile(kind, codes_key, matrix, params)
            return value if value is not None else builder()

        return self._lru.get_or_build(key, tiered)


_DEFAULT_PACK_CACHE = PackCache()
_DEFAULT_PROFILE_CACHE = ProfileCache()


def default_pack_cache() -> PackCache:
    """The process-wide pack cache shared by cache-enabled engines."""
    return _DEFAULT_PACK_CACHE


def default_profile_cache() -> ProfileCache:
    """The process-wide profile cache shared by cache-enabled engines."""
    return _DEFAULT_PROFILE_CACHE
