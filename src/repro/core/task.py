"""Task model and task pool — the heart of Section IV.

The paper defines a task as *the comparison of one query sequence to one
genomic database* (very coarse-grained, Fig. 3c) and gives each task one
of three states: **ready**, **executing**, **finished** (Section
IV-A-3).  The workload-adjustment mechanism follows directly from the
state machine: an idle PE that finds no *ready* task receives a
**replica** of an *executing* one; the first executor to finish wins and
the others are cancelled.

:class:`TaskPool` owns that state machine and its invariants.  It is
deliberately free of any notion of time or transport so that the
threaded runtime (:mod:`repro.core.runtime`) and the discrete-event
simulator (:mod:`repro.simulate`) drive the *same* scheduling logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "TaskState",
    "Task",
    "TaskBatch",
    "TaskResult",
    "TaskPool",
    "group_into_batches",
]


class TaskState(enum.Enum):
    """The paper's three task states."""

    READY = "ready"
    EXECUTING = "executing"
    FINISHED = "finished"


@dataclass(frozen=True)
class Task:
    """One unit of work: one query against one whole database.

    ``cells`` (query length x database residues) is the task's exact
    cost in DP-cell updates; every performance model and GCUPS figure is
    derived from it.  ``query_index`` points into the indexed query file
    so slaves can fetch the sequence with one seek (Section IV-B).

    ``chunk_index`` identifies the database chunk for the coarse-grained
    (Fig. 3b) decomposition; the paper's very coarse tasks always use
    chunk 0 of a single-chunk database.
    """

    task_id: int
    query_id: str
    query_length: int
    cells: int
    query_index: int = -1
    chunk_index: int = 0

    def __post_init__(self) -> None:
        if self.query_length < 0 or self.cells < 0:
            raise ValueError("task sizes must be non-negative")


@dataclass(frozen=True)
class TaskBatch:
    """Several compatible tasks one slave executes in a single sweep.

    A batch is a *worker-side* grouping of an assignment: the master
    still tracks, journals and replicates the member tasks individually
    (batch → per-task fan-out on completion), so scheduling semantics
    are untouched.  Compatibility means the tasks share one database
    chunk (``chunk_index``), which is what lets one multi-query kernel
    sweep serve them all.
    """

    tasks: tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a batch needs at least one task")
        chunks = {t.chunk_index for t in self.tasks}
        if len(chunks) != 1:
            raise ValueError(
                f"batch spans database chunks {sorted(chunks)}; "
                "members must share one chunk"
            )

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def chunk_index(self) -> int:
        return self.tasks[0].chunk_index

    @property
    def cells(self) -> int:
        return sum(t.cells for t in self.tasks)


def group_into_batches(
    tasks: Iterable[Task], max_batch: int
) -> list[TaskBatch]:
    """Group an assignment into compatible batches of at most *max_batch*.

    Tasks are grouped by database chunk in arrival order — assignment
    order is preserved within and across batches, so per-task effects
    (progress, completion fan-out) happen in the same order a singleton
    worker would produce them.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be at least 1")
    batches: list[TaskBatch] = []
    current: list[Task] = []
    for task in tasks:
        if current and (
            task.chunk_index != current[0].chunk_index
            or len(current) >= max_batch
        ):
            batches.append(TaskBatch(tasks=tuple(current)))
            current = []
        current.append(task)
    if current:
        batches.append(TaskBatch(tasks=tuple(current)))
    return batches


@dataclass(frozen=True)
class TaskResult:
    """What a slave hands back for one finished task."""

    task_id: int
    pe_id: str
    elapsed: float
    cells: int
    payload: object = None  # e.g. a tuple of SearchHit from a real engine

    @property
    def gcups(self) -> float:
        return self.cells / self.elapsed / 1e9 if self.elapsed > 0 else 0.0


class TaskPoolError(RuntimeError):
    """Raised on an illegal task-state transition."""


@dataclass
class _TaskRecord:
    task: Task
    state: TaskState = TaskState.READY
    executors: set[str] = field(default_factory=set)
    finished_by: str | None = None


class TaskPool:
    """State machine over a set of tasks, with replication.

    The pool starts from the workload given at construction; the
    always-on service grows it with :meth:`add` as admitted requests
    are dispatched (the state machine per task is unchanged).

    Invariants maintained (and asserted by the test suite):

    * a task is FINISHED at most once — by exactly one PE, or by nobody
      when it was abandoned (deadline expiry / client cancellation);
    * a READY task has no executors; an EXECUTING task has >= 1;
    * replicas are only created for EXECUTING tasks and never handed to
      a PE that is already executing the same task;
    * FINISHED is absorbing — no transition leaves it.
    """

    def __init__(self, tasks: Iterable[Task]):
        self._records: dict[int, _TaskRecord] = {}
        self._ready: list[int] = []
        for task in tasks:
            if task.task_id in self._records:
                raise ValueError(f"duplicate task id {task.task_id}")
            self._records[task.task_id] = _TaskRecord(task)
            self._ready.append(task.task_id)
        self._ready.reverse()  # pop() from the end = FIFO by insertion

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._records

    def task(self, task_id: int) -> Task:
        return self._records[task_id].task

    def task_ids(self) -> tuple[int, ...]:
        """Every task id in the pool (any state), unordered."""
        return tuple(self._records)

    def state(self, task_id: int) -> TaskState:
        return self._records[task_id].state

    def executors(self, task_id: int) -> frozenset[str]:
        return frozenset(self._records[task_id].executors)

    def finished_by(self, task_id: int) -> str | None:
        return self._records[task_id].finished_by

    @property
    def num_ready(self) -> int:
        return len(self._ready)

    @property
    def num_executing(self) -> int:
        return sum(
            1
            for r in self._records.values()
            if r.state is TaskState.EXECUTING
        )

    @property
    def num_finished(self) -> int:
        return sum(
            1 for r in self._records.values() if r.state is TaskState.FINISHED
        )

    @property
    def all_finished(self) -> bool:
        return self.num_finished == len(self._records)

    def unfinished_ids(self) -> list[int]:
        """Task ids not yet FINISHED, in id order (for diagnostics)."""
        return sorted(
            task_id
            for task_id, r in self._records.items()
            if r.state is not TaskState.FINISHED
        )

    def executing_tasks(self) -> list[Task]:
        return [
            r.task
            for r in self._records.values()
            if r.state is TaskState.EXECUTING
        ]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def add(self, task: Task) -> None:
        """Append a new READY task (service-admitted work).

        The task joins the back of the FIFO, behind every task already
        waiting, so admitted requests never overtake the preloaded
        workload or each other.
        """
        if task.task_id in self._records:
            raise ValueError(f"duplicate task id {task.task_id}")
        self._records[task.task_id] = _TaskRecord(task)
        self._ready.insert(0, task.task_id)  # back of the FIFO

    def abandon(self, task_id: int) -> frozenset[str] | None:
        """Retire *task_id* without a result (deadline expiry / cancel).

        The task transitions straight to FINISHED with ``finished_by``
        ``None`` — FINISHED is absorbing, so a late completion from a
        still-running executor is stale and its result is dropped,
        exactly like losing a replica race.  Returns the executors that
        must now be told to stop, or ``None`` when the task already
        finished (the completion beat the deadline: its result stands).
        """
        record = self._records[task_id]
        if record.state is TaskState.FINISHED:
            return None
        executors = frozenset(record.executors)
        if record.state is TaskState.READY:
            self._ready.remove(task_id)
        record.state = TaskState.FINISHED
        record.finished_by = None
        record.executors = set()
        return executors

    def acquire(self, pe_id: str, count: int) -> list[Task]:
        """Hand up to *count* READY tasks to *pe_id* (FIFO order)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        granted: list[Task] = []
        while self._ready and len(granted) < count:
            task_id = self._ready.pop()
            record = self._records[task_id]
            record.state = TaskState.EXECUTING
            record.executors.add(pe_id)
            granted.append(record.task)
        return granted

    def replica_candidates(self, pe_id: str) -> list[Task]:
        """EXECUTING tasks that *pe_id* is not already working on."""
        return [
            r.task
            for r in self._records.values()
            if r.state is TaskState.EXECUTING and pe_id not in r.executors
        ]

    def assign_replica(self, pe_id: str, task_id: int) -> Task:
        """Give *pe_id* a replica of an EXECUTING task (the adjustment)."""
        record = self._records[task_id]
        if record.state is not TaskState.EXECUTING:
            raise TaskPoolError(
                f"cannot replicate task {task_id} in state {record.state}"
            )
        if pe_id in record.executors:
            raise TaskPoolError(
                f"PE {pe_id!r} already executes task {task_id}"
            )
        record.executors.add(pe_id)
        return record.task

    def complete(
        self, task_id: int, pe_id: str, adopt: bool = False
    ) -> tuple[bool, frozenset[str]]:
        """Record that *pe_id* finished *task_id*.

        Returns ``(first, losers)``: *first* is False for a stale
        completion (another executor won the race — the result must be
        discarded), and *losers* is the set of other PEs whose replicas
        should now be cancelled.

        With ``adopt=True`` a completion from a PE that is *not* a
        registered executor of an unfinished task is accepted instead
        of rejected.  That is the at-least-once path: a reaped or
        re-registered worker whose queue was released may still hand in
        real finished work, and discarding it would waste the
        computation.  First-winner semantics are unchanged — if the
        task already FINISHED the adoption is stale.
        """
        record = self._records[task_id]
        if record.state is TaskState.FINISHED:
            return False, frozenset()
        if pe_id not in record.executors:
            if not adopt:
                raise TaskPoolError(
                    f"PE {pe_id!r} completed task {task_id} it never acquired"
                )
            if record.state is TaskState.READY:
                self._ready.remove(task_id)
            record.executors.add(pe_id)
        record.state = TaskState.FINISHED
        record.finished_by = pe_id
        losers = frozenset(record.executors - {pe_id})
        record.executors = {pe_id}
        return True, losers

    def restore_finished(self, task_id: int, pe_id: str) -> bool:
        """Mark *task_id* FINISHED by *pe_id* during journal recovery.

        Only valid on a READY task of a freshly built pool (recovery
        replays the journal before any scheduling happens).  Returns
        False if the task is already FINISHED — snapshot and journal
        legitimately overlap, so restoring twice is a no-op — and
        raises :class:`TaskPoolError` on an EXECUTING task, which would
        mean recovery raced live scheduling.
        """
        record = self._records[task_id]
        if record.state is TaskState.FINISHED:
            return False
        if record.state is not TaskState.READY:
            raise TaskPoolError(
                f"cannot restore task {task_id} in state {record.state}"
            )
        self._ready.remove(task_id)
        record.state = TaskState.FINISHED
        record.finished_by = pe_id
        record.executors = {pe_id}
        return True

    def release(self, task_id: int, pe_id: str) -> None:
        """*pe_id* stops executing *task_id* (cancellation or failure).

        If this removed the last executor of a still-unfinished task,
        the task transitions back to READY so no work is ever lost —
        the robustness property the paper's future-work section asks for
        (nodes leaving the platform mid-run).
        """
        record = self._records[task_id]
        if record.state is TaskState.FINISHED:
            return  # post-finish cancellation: nothing to do
        record.executors.discard(pe_id)
        if not record.executors and record.state is not TaskState.READY:
            # The READY guard makes release idempotent: an at-least-once
            # transport may deliver the same cancellation twice, and the
            # task must not be enqueued twice.
            record.state = TaskState.READY
            self._ready.insert(0, task_id)  # back of the FIFO
