"""Threaded master/slave runtime with real kernels.

This is the execution environment of Fig. 4 running for real: one
worker thread per PE, each driving its engine over actual sequence
data, with the shared :class:`~repro.core.master.Master` arbitrating
behind a lock (the lock plays the role of the Gigabit Ethernet link —
every interaction slaves have with the master goes through it).

The same master also runs under virtual time in :mod:`repro.simulate`;
this runtime exists so that correctness-scale workloads exercise the
full stack end to end: indexed files, engines, policies, adjustment,
cancellation, merging.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..align.api import SearchHit
from ..observability import EventLog, MetricsRegistry, finalize_run_metrics
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .engines import ChunkProgress, Engine
from .master import Master, TraceEvent
from .policies import AllocationPolicy, PackageWeightedSelfScheduling
from .results import merge_hits, offset_hits
from .task import Task, TaskResult

__all__ = ["RunReport", "HybridRuntime", "build_tasks"]

#: Idle slaves poll the master at this period when told to wait.
_WAIT_POLL_SECONDS = 0.002


def build_tasks(
    queries: list[Sequence],
    database: SequenceDatabase,
    chunks: list[SequenceDatabase] | None = None,
) -> list[Task]:
    """Build the task list for a workload.

    With the default single chunk this is the paper's very
    coarse-grained decomposition (one task per query x whole database);
    passing the output of :meth:`SequenceDatabase.chunks` produces the
    coarse-grained (Fig. 3b) variant, one task per (query, chunk).
    """
    if chunks is None:
        chunks = [database]
    tasks = []
    for q_index, query in enumerate(queries):
        for c_index, chunk in enumerate(chunks):
            tasks.append(
                Task(
                    task_id=q_index * len(chunks) + c_index,
                    query_id=query.id,
                    query_length=len(query),
                    cells=len(query) * chunk.total_residues,
                    query_index=q_index,
                    chunk_index=c_index,
                )
            )
    return tasks


@dataclass
class RunReport:
    """Outcome of one full workload execution."""

    makespan: float
    total_cells: int
    results: dict[str, tuple[SearchHit, ...]]  # query_id -> ranked hits
    trace: list[TraceEvent]
    tasks_by_pe: dict[str, int] = field(default_factory=dict)
    #: Metrics snapshot (``repro.metrics.v1``) of the run's registry.
    metrics: dict = field(default_factory=dict)
    #: The unified structured event log backing :attr:`trace`.
    events: EventLog = field(default_factory=EventLog)

    @property
    def gcups(self) -> float:
        return self.total_cells / self.makespan / 1e9 if self.makespan else 0.0


class _SharedMaster:
    """Lock-guarded facade over :class:`Master` (the 'network')."""

    def __init__(self, master: Master):
        self._master = master
        self._lock = threading.Lock()

    def register(self, pe_id: str, now: float):
        with self._lock:
            self._master.register(pe_id, now)

    def request(self, pe_id: str, now: float):
        with self._lock:
            return self._master.on_request(pe_id, now)

    def progress(self, pe_id: str, now: float, cells: float, interval: float):
        with self._lock:
            self._master.on_progress(pe_id, now, cells, interval)

    def complete(self, pe_id: str, result: TaskResult, now: float):
        with self._lock:
            return self._master.on_complete(pe_id, result, now)

    def cancelled(self, pe_id: str, task_id: int, now: float):
        with self._lock:
            self._master.on_cancelled(pe_id, task_id, now)


class _Worker(threading.Thread):
    """One slave PE: request -> execute -> notify, until done."""

    def __init__(
        self,
        pe_id: str,
        engine: Engine,
        shared: _SharedMaster,
        queries: list[Sequence],
        chunks: list[SequenceDatabase],
        chunk_offsets: list[int],
        cancel_flags: dict[str, set[int]],
        cancel_lock: threading.Lock,
        clock,
    ):
        super().__init__(name=pe_id, daemon=True)
        self.pe_id = pe_id
        self.engine = engine
        self.shared = shared
        self.queries = queries
        self.chunks = chunks
        self.chunk_offsets = chunk_offsets
        self.cancel_flags = cancel_flags
        self.cancel_lock = cancel_lock
        self.clock = clock
        self.tasks_done = 0
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:  # surfaced by the runtime
            self.error = exc

    def _cancelled(self, task_id: int) -> bool:
        with self.cancel_lock:
            return task_id in self.cancel_flags[self.pe_id]

    def _serve(self) -> None:
        while True:
            assignment = self.shared.request(self.pe_id, self.clock())
            if assignment.done:
                return
            if assignment.empty:
                time.sleep(_WAIT_POLL_SECONDS)
                continue
            for task in (*assignment.tasks, *assignment.replicas):
                self._execute(task)

    def _execute(self, task: Task) -> None:
        query = self.queries[task.query_index]
        database = self.chunks[task.chunk_index]
        started = self.clock()
        last_notify = started
        state = {"last": last_notify}

        def progress(chunk: ChunkProgress) -> bool:
            now = self.clock()
            interval = now - state["last"]
            state["last"] = now
            self.shared.progress(self.pe_id, now, chunk.cells, interval)
            return not self._cancelled(task.task_id)

        hits = self.engine.search(query, database, progress=progress)
        now = self.clock()
        if hits is None:  # aborted by cancellation
            self.shared.cancelled(self.pe_id, task.task_id, now)
            return
        result = TaskResult(
            task_id=task.task_id,
            pe_id=self.pe_id,
            elapsed=max(now - started, 1e-9),
            cells=task.cells,
            payload=offset_hits(hits, self.chunk_offsets[task.chunk_index]),
        )
        losers = self.shared.complete(self.pe_id, result, now)
        self.tasks_done += 1
        with self.cancel_lock:
            for loser in losers:
                self.cancel_flags[loser].add(task.task_id)


class HybridRuntime:
    """Run a whole workload on a set of engine-backed worker threads.

    ``engines`` maps PE ids to :class:`Engine` instances, e.g. two
    GPU-analogues and four SSE-analogues for a miniature of the paper's
    platform.
    """

    def __init__(
        self,
        engines: dict[str, Engine],
        policy: AllocationPolicy | None = None,
        adjustment: bool = True,
        omega: int = 8,
    ):
        if not engines:
            raise ValueError("at least one engine is required")
        self.engines = dict(engines)
        self.policy = policy or PackageWeightedSelfScheduling()
        self.adjustment = adjustment
        self.omega = omega

    def run(
        self,
        queries: list[Sequence],
        database: SequenceDatabase,
        chunks_per_query: int = 1,
        top: int = 10,
    ) -> RunReport:
        """Execute the workload; returns merged per-query hit lists.

        ``chunks_per_query > 1`` switches to the coarse-grained
        decomposition: the database is split into that many contiguous
        chunks and every (query, chunk) pair becomes a task; the master
        merges the per-chunk hit lists (Fig. 4's *merge results*).
        """
        if chunks_per_query < 1:
            raise ValueError("chunks_per_query must be at least 1")
        if chunks_per_query == 1:
            chunks = [database]
        else:
            chunk_size = -(-len(database) // chunks_per_query)
            chunks = list(database.chunks(chunk_size))
        offsets = []
        position = 0
        for chunk in chunks:
            offsets.append(position)
            position += len(chunk)

        tasks = build_tasks(queries, database, chunks=chunks)
        metrics = MetricsRegistry()
        events = EventLog()
        master = Master(
            tasks,
            policy=self.policy,
            adjustment=self.adjustment,
            omega=self.omega,
            metrics=metrics,
            events=events,
        )
        shared = _SharedMaster(master)
        start = time.perf_counter()

        def clock() -> float:
            return time.perf_counter() - start

        cancel_lock = threading.Lock()
        cancel_flags: dict[str, set[int]] = {pe: set() for pe in self.engines}
        workers = [
            _Worker(
                pe_id,
                engine,
                shared,
                queries,
                chunks,
                offsets,
                cancel_flags,
                cancel_lock,
                clock,
            )
            for pe_id, engine in self.engines.items()
        ]
        for worker in workers:
            shared.register(worker.pe_id, clock())
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        for worker in workers:
            if worker.error is not None:
                raise worker.error
        makespan = clock()

        by_query: dict[str, list[tuple[SearchHit, ...]]] = {}
        for task_result in master.merged_results():
            task = master.pool.task(task_result.task_id)
            by_query.setdefault(task.query_id, []).append(
                task_result.payload  # type: ignore[arg-type]
            )
        results = {
            query_id: merge_hits(hit_lists, top=top)
            for query_id, hit_lists in by_query.items()
        }
        total_cells = sum(t.cells for t in tasks)
        finalize_run_metrics(metrics, makespan, total_cells)
        return RunReport(
            makespan=makespan,
            total_cells=total_cells,
            results=results,
            trace=list(master.trace),
            tasks_by_pe={w.pe_id: w.tasks_done for w in workers},
            metrics=metrics.snapshot(),
            events=events,
        )
