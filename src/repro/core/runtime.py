"""Threaded master/slave runtime with real kernels.

This is the execution environment of Fig. 4 running for real: one
worker thread per PE, each driving its engine over actual sequence
data, with the shared :class:`~repro.core.master.Master` arbitrating
behind a lock (the lock plays the role of the Gigabit Ethernet link —
every interaction slaves have with the master goes through it).

The same master also runs under virtual time in :mod:`repro.simulate`;
this runtime exists so that correctness-scale workloads exercise the
full stack end to end: indexed files, engines, policies, adjustment,
cancellation, merging.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..align.api import SearchHit
from ..durability import CheckpointStore, restore_into, workload_fingerprint
from ..faults import FaultInjector, FaultPlan, InjectedCrash, MasterCrashed
from ..observability import EventLog, MetricsRegistry, finalize_run_metrics
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .engines import ChunkProgress, Engine
from .master import Assignment, Master, TraceEvent
from .policies import AllocationPolicy, PackageWeightedSelfScheduling
from .results import merge_hits, offset_hits
from .task import Task, TaskBatch, TaskResult, group_into_batches

__all__ = ["RunReport", "HybridRuntime", "build_tasks"]

#: Idle slaves poll the master at this period when told to wait.
_WAIT_POLL_SECONDS = 0.002

#: Heartbeat reap timeout used when faults are injected but no explicit
#: ``heartbeat_timeout`` was given — generous against progress
#: notifications that arrive every few milliseconds.
_DEFAULT_HEARTBEAT_SECONDS = 1.0

#: Pause before a dropped-but-required message is retransmitted.
_RETRANSMIT_SECONDS = 0.005


def build_tasks(
    queries: list[Sequence],
    database: SequenceDatabase,
    chunks: list[SequenceDatabase] | None = None,
) -> list[Task]:
    """Build the task list for a workload.

    With the default single chunk this is the paper's very
    coarse-grained decomposition (one task per query x whole database);
    passing the output of :meth:`SequenceDatabase.chunks` produces the
    coarse-grained (Fig. 3b) variant, one task per (query, chunk).
    """
    if chunks is None:
        chunks = [database]
    tasks = []
    for q_index, query in enumerate(queries):
        for c_index, chunk in enumerate(chunks):
            tasks.append(
                Task(
                    task_id=q_index * len(chunks) + c_index,
                    query_id=query.id,
                    query_length=len(query),
                    cells=len(query) * chunk.total_residues,
                    query_index=q_index,
                    chunk_index=c_index,
                )
            )
    return tasks


@dataclass
class RunReport:
    """Outcome of one full workload execution."""

    makespan: float
    total_cells: int
    results: dict[str, tuple[SearchHit, ...]]  # query_id -> ranked hits
    trace: list[TraceEvent]
    tasks_by_pe: dict[str, int] = field(default_factory=dict)
    #: Metrics snapshot (``repro.metrics.v1``) of the run's registry.
    metrics: dict = field(default_factory=dict)
    #: The unified structured event log backing :attr:`trace`.
    events: EventLog = field(default_factory=EventLog)

    @property
    def gcups(self) -> float:
        return self.total_cells / self.makespan / 1e9 if self.makespan else 0.0


class _SharedMaster:
    """Lock-guarded facade over :class:`Master` (the 'network').

    ``crash_at`` arms the plan's master-crash fault: once the clock
    passes it, every interaction with the master raises
    :class:`MasterCrashed` — from the slaves' point of view the master
    simply stops answering, exactly like a killed process.  Only the
    journal (written before the crash fired) survives.
    """

    def __init__(
        self,
        master: Master,
        crash_at: float | None = None,
        injector: FaultInjector | None = None,
    ):
        self._master = master
        self._lock = threading.Lock()
        self._attempts: dict[str, int] = {}
        self._crash_at = crash_at
        self._injector = injector
        self.crashed = False

    def _check_crash(self, now: float) -> None:
        """Caller holds the lock."""
        if self._crash_at is None:
            return
        if not self.crashed and now >= self._crash_at:
            self.crashed = True
            if self._injector is not None:
                self._injector.record("master_crash", time=now)
        if self.crashed:
            raise MasterCrashed(self._crash_at)

    def _ensure(self, pe_id: str, now: float) -> None:
        """Re-register a PE the master reaped while it was still alive.

        Caller holds the lock.  Mirrors the cluster server: a slave
        that was deregistered (heartbeat reap) but keeps talking simply
        rejoins under a fresh attempt id; its released tasks are
        already back in the ready queue.
        """
        if not self._master.is_registered(pe_id):
            attempt = self._attempts.get(pe_id, 0) + 1
            self._attempts[pe_id] = attempt
            self._master.register(pe_id, now, attempt=attempt)

    def register(self, pe_id: str, now: float):
        with self._lock:
            self._master.register(pe_id, now)

    def request(self, pe_id: str, now: float):
        with self._lock:
            self._check_crash(now)
            self._ensure(pe_id, now)
            return self._master.on_request(pe_id, now)

    def progress(self, pe_id: str, now: float, cells: float, interval: float):
        with self._lock:
            self._check_crash(now)
            self._ensure(pe_id, now)
            self._master.on_progress(pe_id, now, cells, interval)

    def complete(self, pe_id: str, result: TaskResult, now: float):
        with self._lock:
            self._check_crash(now)
            self._ensure(pe_id, now)
            return self._master.on_complete(pe_id, result, now)

    def cancelled(self, pe_id: str, task_id: int, now: float):
        with self._lock:
            self._check_crash(now)
            self._ensure(pe_id, now)
            self._master.on_cancelled(pe_id, task_id, now)

    def reap(self, now: float, timeout: float) -> tuple[str, ...]:
        with self._lock:
            self._check_crash(now)
            if self._master.finished:
                return ()
            return self._master.reap_silent(now, timeout)

    @property
    def finished(self) -> bool:
        with self._lock:
            return self._master.finished

    def with_lock(self, fn):
        """Run ``fn(master)`` under the master lock.

        The always-on service front-end uses this for admission and
        deadline ticks, which must not interleave with slave traffic.
        """
        with self._lock:
            return fn(self._master)


class _FaultyChannel:
    """Transport-fault decorator over :class:`_SharedMaster`.

    Models the worker-master link as at-least-once: messages the
    protocol cannot afford to lose (``complete``/``cancelled``) are
    retransmitted after a short pause instead of vanishing, while
    ``request`` polls and ``progress`` samples are genuinely lossy (the
    worker polls again / the next sample subsumes the lost one).
    Partitioned PEs stall: their deliveries block until the window
    heals, which is exactly what lets the heartbeat reaper fire.
    """

    def __init__(self, shared: _SharedMaster, injector: FaultInjector, clock):
        self._shared = shared
        self._injector = injector
        self._clock = clock

    def register(self, pe_id: str, now: float):
        self._shared.register(pe_id, now)

    def request(self, pe_id: str, now: float):
        if self._injector.partition_remaining(pe_id, now) > 0:
            time.sleep(_WAIT_POLL_SECONDS)
            return Assignment()
        action = self._injector.message_action(
            pe_id, "request", now, allow=("drop", "delay")
        )
        if action == "drop":
            return Assignment()  # lost poll: the worker asks again
        if action == "delay":
            time.sleep(self._injector.delay_seconds)
        return self._shared.request(pe_id, self._clock())

    def progress(self, pe_id: str, now: float, cells: float, interval: float):
        if self._injector.partition_remaining(pe_id, now) > 0:
            return  # sample lost in the partition
        action = self._injector.message_action(
            pe_id, "progress", now, allow=("drop", "duplicate", "delay")
        )
        if action == "drop":
            return
        if action == "delay":
            time.sleep(self._injector.delay_seconds)
            now = self._clock()
        self._shared.progress(pe_id, now, cells, interval)
        if action == "duplicate":
            self._shared.progress(pe_id, now, cells, interval)

    def complete(self, pe_id: str, result: TaskResult, now: float):
        wait = self._injector.partition_remaining(pe_id, now)
        if wait > 0:
            time.sleep(wait)
            now = self._clock()
        action = self._injector.message_action(
            pe_id, "complete", now, allow=("drop", "duplicate", "delay")
        )
        if action == "drop":
            time.sleep(_RETRANSMIT_SECONDS)  # retransmission pause
            now = self._clock()
        elif action == "delay":
            time.sleep(self._injector.delay_seconds)
            now = self._clock()
        losers = self._shared.complete(pe_id, result, now)
        if action == "duplicate":
            # The duplicate is stale by definition; the master dedupes.
            self._shared.complete(pe_id, result, self._clock())
        return losers

    def cancelled(self, pe_id: str, task_id: int, now: float):
        wait = self._injector.partition_remaining(pe_id, now)
        if wait > 0:
            time.sleep(wait)
            now = self._clock()
        action = self._injector.message_action(
            pe_id, "cancelled", now, allow=("drop", "duplicate", "delay")
        )
        if action == "drop":
            time.sleep(_RETRANSMIT_SECONDS)
            now = self._clock()
        elif action == "delay":
            time.sleep(self._injector.delay_seconds)
            now = self._clock()
        self._shared.cancelled(pe_id, task_id, now)
        if action == "duplicate":
            self._shared.cancelled(pe_id, task_id, self._clock())


class _Worker(threading.Thread):
    """One slave PE: request -> execute -> notify, until done."""

    def __init__(
        self,
        pe_id: str,
        engine: Engine,
        shared: _SharedMaster,
        queries: list[Sequence],
        chunks: list[SequenceDatabase],
        chunk_offsets: list[int],
        cancel_flags: dict[str, set[int]],
        cancel_lock: threading.Lock,
        clock,
        injector: FaultInjector | None = None,
        batch: int = 1,
    ):
        super().__init__(name=pe_id, daemon=True)
        self.pe_id = pe_id
        self.engine = engine
        self.shared = shared
        self.queries = queries
        self.chunks = chunks
        self.chunk_offsets = chunk_offsets
        self.cancel_flags = cancel_flags
        self.cancel_lock = cancel_lock
        self.clock = clock
        self.injector = injector
        self.batch = batch
        self.tasks_done = 0
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self._serve()
        except BaseException as exc:  # surfaced by the runtime
            self.error = exc

    def _cancelled(self, task_id: int) -> bool:
        with self.cancel_lock:
            return task_id in self.cancel_flags[self.pe_id]

    def _check_crash(self) -> None:
        """Die silently if the fault plan says this PE crashes now."""
        if self.injector is None:
            return
        now = self.clock()
        if self.injector.crash_due(self.pe_id, now, self.tasks_done):
            self.injector.mark_crashed(self.pe_id, now)
            raise InjectedCrash(self.pe_id)

    def _serve(self) -> None:
        while True:
            self._check_crash()
            assignment = self.shared.request(self.pe_id, self.clock())
            if assignment.done:
                return
            if assignment.empty:
                time.sleep(_WAIT_POLL_SECONDS)
                continue
            with self.cancel_lock:
                # A fresh grant supersedes any cancel flag left over
                # from a previous attempt at the same task (reap,
                # release, re-assign back to this PE).
                for task in (*assignment.tasks, *assignment.replicas):
                    self.cancel_flags[self.pe_id].discard(task.task_id)
            if self.batch > 1 and len(assignment.tasks) > 1:
                for group in group_into_batches(assignment.tasks, self.batch):
                    if len(group) == 1:
                        self._execute(group.tasks[0])
                    else:
                        self._execute_batch(group)
            else:
                for task in assignment.tasks:
                    self._execute(task)
            # Replicas always execute singly: a replica races another
            # PE's in-flight copy, so coalescing it would only delay
            # the first completion the mechanism is trying to speed up.
            for task in assignment.replicas:
                self._execute(task)

    def _execute(self, task: Task) -> None:
        query = self.queries[task.query_index]
        database = self.chunks[task.chunk_index]
        started = self.clock()
        last_notify = started
        state = {"last": last_notify}

        def progress(chunk: ChunkProgress) -> bool:
            self._check_crash()  # crashes can fire mid-task
            now = self.clock()
            interval = now - state["last"]
            state["last"] = now
            if self.injector is not None:
                pause = self.injector.straggle_sleep(
                    self.pe_id, now, interval
                )
                if pause > 0:
                    time.sleep(pause)
                    now = self.clock()
            self.shared.progress(self.pe_id, now, chunk.cells, interval)
            return not self._cancelled(task.task_id)

        hits = self.engine.search(query, database, progress=progress)
        now = self.clock()
        if hits is None:  # aborted by cancellation
            self.shared.cancelled(self.pe_id, task.task_id, now)
            return
        result = TaskResult(
            task_id=task.task_id,
            pe_id=self.pe_id,
            elapsed=max(now - started, 1e-9),
            cells=task.cells,
            payload=offset_hits(hits, self.chunk_offsets[task.chunk_index]),
        )
        losers = self.shared.complete(self.pe_id, result, now)
        self.tasks_done += 1
        with self.cancel_lock:
            for loser in losers:
                self.cancel_flags[loser].add(task.task_id)

    def _execute_batch(self, group: TaskBatch) -> None:
        """One multi-query sweep, fanned back out to per-task messages.

        The engine scores every member of *group* in one call; each
        task still completes (or acknowledges cancellation)
        individually, so the master's bookkeeping, the journal and any
        replica race see exactly the per-task protocol they would under
        singleton execution.  The batch's wall-clock time is
        apportioned to members by their cell share.
        """
        tasks = group.tasks
        queries = [self.queries[t.query_index] for t in tasks]
        database = self.chunks[group.chunk_index]
        started = self.clock()
        state = {"last": started}

        def progress(position: int, chunk: ChunkProgress) -> bool:
            self._check_crash()
            now = self.clock()
            interval = now - state["last"]
            state["last"] = now
            if self.injector is not None:
                pause = self.injector.straggle_sleep(
                    self.pe_id, now, interval
                )
                if pause > 0:
                    time.sleep(pause)
                    now = self.clock()
            self.shared.progress(self.pe_id, now, chunk.cells, interval)
            return not self._cancelled(tasks[position].task_id)

        def cancelled(position: int) -> bool:
            return self._cancelled(tasks[position].task_id)

        hit_lists = self.engine.search_batch(
            queries, database, progress=progress, cancelled=cancelled
        )
        now = self.clock()
        total_elapsed = max(now - started, 1e-9)
        total_cells = group.cells
        for task, hits in zip(tasks, hit_lists):
            if hits is None:  # aborted by cancellation
                self.shared.cancelled(self.pe_id, task.task_id, self.clock())
                continue
            share = task.cells / total_cells if total_cells else 1.0
            result = TaskResult(
                task_id=task.task_id,
                pe_id=self.pe_id,
                elapsed=max(total_elapsed * share, 1e-9),
                cells=task.cells,
                payload=offset_hits(
                    hits, self.chunk_offsets[task.chunk_index]
                ),
            )
            losers = self.shared.complete(self.pe_id, result, self.clock())
            self.tasks_done += 1
            with self.cancel_lock:
                for loser in losers:
                    self.cancel_flags[loser].add(task.task_id)


class HybridRuntime:
    """Run a whole workload on a set of engine-backed worker threads.

    ``engines`` maps PE ids to :class:`Engine` instances, e.g. two
    GPU-analogues and four SSE-analogues for a miniature of the paper's
    platform.
    """

    def __init__(
        self,
        engines: dict[str, Engine],
        policy: AllocationPolicy | None = None,
        adjustment: bool = True,
        omega: int = 8,
        faults: FaultPlan | None = None,
        heartbeat_timeout: float | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_sync_every: int = 1,
        checkpoint_compact_every: int = 0,
        batch: int = 1,
        telemetry_path: str | None = None,
        telemetry_interval: float = 1.0,
    ):
        if not engines:
            raise ValueError("at least one engine is required")
        if batch < 1:
            raise ValueError("batch must be at least 1")
        if telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        self.engines = dict(engines)
        self.policy = policy or PackageWeightedSelfScheduling()
        self.adjustment = adjustment
        self.omega = omega
        #: Optional fault plan injected at the worker/master boundary.
        self.faults = faults
        #: Reap slaves silent for this long.  ``None`` enables a safe
        #: default whenever faults are injected; ``0`` disables reaping.
        self.heartbeat_timeout = heartbeat_timeout
        #: Journal master state under this directory; a directory left
        #: behind by a crashed run is recovered before workers start,
        #: so finished tasks are never recomputed.
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_sync_every = checkpoint_sync_every
        self.checkpoint_compact_every = checkpoint_compact_every
        #: Coalesce up to this many compatible tasks per assignment into
        #: one multi-query engine sweep (1 = the paper's behaviour).
        self.batch = batch
        #: Append a ``repro.telemetry.v1`` JSONL stream of interval
        #: deltas sampled by a wall-clock thread every
        #: ``telemetry_interval`` seconds.
        self.telemetry_path = telemetry_path
        self.telemetry_interval = telemetry_interval

    def run(
        self,
        queries: list[Sequence],
        database: SequenceDatabase,
        chunks_per_query: int = 1,
        top: int = 10,
    ) -> RunReport:
        """Execute the workload; returns merged per-query hit lists.

        ``chunks_per_query > 1`` switches to the coarse-grained
        decomposition: the database is split into that many contiguous
        chunks and every (query, chunk) pair becomes a task; the master
        merges the per-chunk hit lists (Fig. 4's *merge results*).
        """
        if chunks_per_query < 1:
            raise ValueError("chunks_per_query must be at least 1")
        if chunks_per_query == 1:
            chunks = [database]
        else:
            chunk_size = -(-len(database) // chunks_per_query)
            chunks = list(database.chunks(chunk_size))
        offsets = []
        position = 0
        for chunk in chunks:
            offsets.append(position)
            position += len(chunk)

        tasks = build_tasks(queries, database, chunks=chunks)
        metrics = MetricsRegistry()
        events = EventLog()
        start = time.perf_counter()

        def clock() -> float:
            return time.perf_counter() - start

        sampler: "TelemetrySampler | None" = None
        if self.telemetry_path is not None:
            from ..observability import TelemetrySampler, TelemetryWriter

            sampler = TelemetrySampler(
                TelemetryWriter(
                    self.telemetry_path,
                    metrics.snapshot,
                    clock,
                    interval=self.telemetry_interval,
                    environment="threaded",
                )
            ).start()

        store: CheckpointStore | None = None
        if self.checkpoint_dir is not None:
            store = CheckpointStore(
                self.checkpoint_dir,
                sync_every=self.checkpoint_sync_every,
                compact_every=self.checkpoint_compact_every,
            )
            recovered = store.open(workload_fingerprint(tasks))
        master = Master(
            tasks,
            policy=self.policy,
            adjustment=self.adjustment,
            omega=self.omega,
            metrics=metrics,
            events=events,
            journal=store,
            batch=self.batch,
        )
        for engine in self.engines.values():
            engine.bind_caches(metrics)
        if store is not None and not recovered.empty:
            restore_into(master, recovered, now=clock())
        injector = (
            FaultInjector(self.faults, events=events, clock=clock)
            if self.faults is not None
            else None
        )
        crash_at = (
            self.faults.master_crash.at_time
            if self.faults is not None and self.faults.master_crash
            else None
        )
        shared = _SharedMaster(master, crash_at=crash_at, injector=injector)
        channel = (
            _FaultyChannel(shared, injector, clock)
            if injector is not None
            else shared
        )
        heartbeat = self.heartbeat_timeout
        if heartbeat is None and self.faults is not None:
            heartbeat = _DEFAULT_HEARTBEAT_SECONDS

        cancel_lock = threading.Lock()
        cancel_flags: dict[str, set[int]] = {pe: set() for pe in self.engines}
        workers = [
            _Worker(
                pe_id,
                engine,
                channel,
                queries,
                chunks,
                offsets,
                cancel_flags,
                cancel_lock,
                clock,
                injector,
                batch=self.batch,
            )
            for pe_id, engine in self.engines.items()
        ]
        for worker in workers:
            shared.register(worker.pe_id, clock())

        reaper_stop = threading.Event()
        reaper: threading.Thread | None = None
        if heartbeat:
            def _reap_loop() -> None:
                while not reaper_stop.wait(heartbeat / 4):
                    if shared.finished:
                        return
                    try:
                        shared.reap(clock(), heartbeat)
                    except MasterCrashed:
                        return

            reaper = threading.Thread(
                target=_reap_loop, name="reaper", daemon=True
            )
            reaper.start()

        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            reaper_stop.set()
            if reaper is not None:
                reaper.join()
            if store is not None:
                store.close()
            if sampler is not None:
                # Stop the sampling thread here; the stream is
                # finalized only after end-of-run gauges are stamped
                # (so ``final`` matches the report snapshot), or on the
                # failure paths below.
                sampler.stop()
        for worker in workers:
            if worker.error is not None and not isinstance(
                worker.error, (InjectedCrash, MasterCrashed)
            ):
                if sampler is not None:
                    sampler.close()
                raise worker.error
        if shared.crashed:
            # The journal holds everything completed before the crash;
            # running again with the same checkpoint_dir resumes there.
            if sampler is not None:
                sampler.close()
            raise MasterCrashed(crash_at)
        makespan = clock()

        by_query: dict[str, list[tuple[SearchHit, ...]]] = {}
        for task_result in master.merged_results():
            task = master.pool.task(task_result.task_id)
            by_query.setdefault(task.query_id, []).append(
                task_result.payload  # type: ignore[arg-type]
            )
        results = {
            query_id: merge_hits(hit_lists, top=top)
            for query_id, hit_lists in by_query.items()
        }
        total_cells = sum(t.cells for t in tasks)
        finalize_run_metrics(metrics, makespan, total_cells)
        if sampler is not None:
            sampler.close()
        return RunReport(
            makespan=makespan,
            total_cells=total_cells,
            results=results,
            trace=list(master.trace),
            tasks_by_pe={w.pe_id: w.tasks_done for w in workers},
            metrics=metrics.snapshot(),
            events=events,
        )
