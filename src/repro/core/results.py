"""Result merging: combine per-task hit lists at the master.

With the paper's very coarse decomposition each query maps to exactly
one task and merging is trivial.  With the chunked (coarse-grained,
Fig. 3b) decomposition a query's hits arrive as one ranked list per
database chunk; the master must merge them into a single ranked list —
``merge_hits`` is that reduction, with the same deterministic tie
breaking as :func:`repro.align.api.database_search`.
"""

from __future__ import annotations

from typing import Iterable, Sequence as TypingSequence

from ..align.api import SearchHit

__all__ = ["merge_hits", "offset_hits"]


def offset_hits(
    hits: TypingSequence[SearchHit], subject_offset: int
) -> tuple[SearchHit, ...]:
    """Rebase chunk-relative subject indices to whole-database indices."""
    if subject_offset < 0:
        raise ValueError("subject_offset must be non-negative")
    if subject_offset == 0:
        return tuple(hits)
    return tuple(
        SearchHit(
            subject_id=hit.subject_id,
            subject_index=hit.subject_index + subject_offset,
            score=hit.score,
            subject_length=hit.subject_length,
            evalue=hit.evalue,
            bit_score=hit.bit_score,
            strand=hit.strand,
        )
        for hit in hits
    )


def merge_hits(
    hit_lists: Iterable[TypingSequence[SearchHit]], top: int = 10
) -> tuple[SearchHit, ...]:
    """Merge ranked hit lists into one, best-first.

    Duplicate subject indices (a subject scored by several replicas)
    keep their best-scoring entry.  Ordering matches a single-pass
    search: descending score, then ascending database index.
    """
    best_by_subject: dict[int, SearchHit] = {}
    for hits in hit_lists:
        for hit in hits:
            current = best_by_subject.get(hit.subject_index)
            if current is None or hit.score > current.score:
                best_by_subject[hit.subject_index] = hit
    ranked = sorted(
        best_by_subject.values(),
        key=lambda hit: (-hit.score, hit.subject_index),
    )
    if top <= 0:
        return tuple(ranked)
    return tuple(ranked[:top])
