"""Per-PE progress histories and rate estimation (the PSS input).

Section IV-A-2: *"the master analyzes periodic notifications sent by the
slave PEs, reporting the progress in processing tasks.  It then
calculates the weighted mean from the last Ω notifications sent by each
p_i slave PE.  A small Ω indicates that only very recent histories will
be considered ...; high values for Ω indicate that not only recent
histories will be considered but also older ones."*

A notification carries the cells processed since the previous
notification and the elapsed interval; the estimator keeps the last Ω
samples and combines them with linearly decaying weights (newest sample
weight Ω, oldest weight 1), which is the behaviour the quote describes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["RateSample", "RateEstimator", "HistoryBook"]

#: Default notification-window length (the paper leaves Ω free; the
#: ablation benchmark sweeps it).
DEFAULT_OMEGA = 8


@dataclass(frozen=True)
class RateSample:
    """One progress notification: *cells* processed over *interval* s."""

    time: float
    cells: float
    interval: float

    @property
    def rate(self) -> float:
        """Observed throughput in cells/second."""
        return self.cells / self.interval if self.interval > 0 else 0.0


class RateEstimator:
    """Ω-window weighted-mean throughput estimator for one PE."""

    def __init__(self, omega: int = DEFAULT_OMEGA):
        if omega < 1:
            raise ValueError("omega must be at least 1")
        self._omega = omega
        self._samples: deque[RateSample] = deque(maxlen=omega)

    @property
    def omega(self) -> int:
        return self._omega

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def observe(self, sample: RateSample) -> None:
        if sample.interval < 0 or sample.cells < 0:
            raise ValueError("samples must be non-negative")
        if sample.interval == 0:
            return  # zero-length interval carries no rate information
        self._samples.append(sample)

    def rate(self) -> float | None:
        """Weighted mean rate, or ``None`` before any notification.

        The newest of the k retained samples gets weight k, the oldest
        weight 1 — a linear decay over the Ω window.
        """
        if not self._samples:
            return None
        rates = [sample.rate for sample in self._samples]
        k = len(rates)
        total = math.fsum(
            age_rank * rate for age_rank, rate in enumerate(rates, start=1)
        )
        weight_sum = k * (k + 1) / 2.0
        mean = total / weight_sum
        # A weighted mean must lie within the sample range; clamp away
        # the residual division rounding so the invariant holds exactly
        # (and constant inputs reproduce the constant bit-for-bit).
        return min(max(mean, min(rates)), max(rates))

    def clear(self) -> None:
        self._samples.clear()


class HistoryBook:
    """Rate estimators for every registered PE."""

    def __init__(self, omega: int = DEFAULT_OMEGA):
        self._omega = omega
        self._estimators: dict[str, RateEstimator] = {}

    def register(self, pe_id: str) -> None:
        self._estimators.setdefault(pe_id, RateEstimator(self._omega))

    def remove(self, pe_id: str) -> None:
        """Forget a departed PE (its rate must not skew Phi for others)."""
        self._estimators.pop(pe_id, None)

    def observe(self, pe_id: str, sample: RateSample) -> None:
        if pe_id not in self._estimators:
            raise KeyError(f"unregistered PE {pe_id!r}")
        self._estimators[pe_id].observe(sample)

    def rate(self, pe_id: str) -> float | None:
        return self._estimators[pe_id].rate()

    def rates(self) -> dict[str, float | None]:
        return {pe: est.rate() for pe, est in self._estimators.items()}

    def known_rates(self) -> dict[str, float]:
        """Rates of PEs that have reported at least once."""
        return {
            pe: rate
            for pe, rate in self.rates().items()
            if rate is not None and rate > 0
        }

    def __contains__(self, pe_id: str) -> bool:
        return pe_id in self._estimators

    def __len__(self) -> int:
        return len(self._estimators)
