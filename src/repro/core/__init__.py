"""Core contribution: tasks, policies, adjustment, master/slave runtime."""

from .engines import (
    Engine,
    InterSequenceEngine,
    ScanEngine,
    StripedSSEEngine,
    ThrottledEngine,
)
from .history import DEFAULT_OMEGA, HistoryBook, RateEstimator, RateSample
from .master import Assignment, Master, TraceEvent
from .policies import (
    AllocationPolicy,
    FixedSplit,
    PackageWeightedSelfScheduling,
    PolicyContext,
    SelfScheduling,
    WeightedFixed,
    make_policy,
)
from .results import merge_hits, offset_hits
from .runtime import HybridRuntime, RunReport, build_tasks
from .task import Task, TaskPool, TaskResult, TaskState

__all__ = [
    "Engine",
    "StripedSSEEngine",
    "InterSequenceEngine",
    "ScanEngine",
    "ThrottledEngine",
    "HistoryBook",
    "RateEstimator",
    "RateSample",
    "DEFAULT_OMEGA",
    "Assignment",
    "Master",
    "TraceEvent",
    "AllocationPolicy",
    "PolicyContext",
    "SelfScheduling",
    "PackageWeightedSelfScheduling",
    "FixedSplit",
    "WeightedFixed",
    "make_policy",
    "HybridRuntime",
    "RunReport",
    "build_tasks",
    "merge_hits",
    "offset_hits",
    "Task",
    "TaskPool",
    "TaskResult",
    "TaskState",
]
