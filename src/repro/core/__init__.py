"""Core contribution: tasks, policies, adjustment, master/slave runtime."""

from .caching import (
    KeyedLRU,
    PackCache,
    ProfileCache,
    default_pack_cache,
    default_profile_cache,
)
from .engines import (
    BatchedEngine,
    Engine,
    InterSequenceEngine,
    ScanEngine,
    StripedSSEEngine,
    ThrottledEngine,
)
from .history import DEFAULT_OMEGA, HistoryBook, RateEstimator, RateSample
from .master import Assignment, Master, TraceEvent
from .policies import (
    AllocationPolicy,
    FixedSplit,
    PackageWeightedSelfScheduling,
    PolicyContext,
    SelfScheduling,
    WeightedFixed,
    make_policy,
)
from .results import merge_hits, offset_hits
from .runtime import HybridRuntime, RunReport, build_tasks
from .task import (
    Task,
    TaskBatch,
    TaskPool,
    TaskResult,
    TaskState,
    group_into_batches,
)

__all__ = [
    "Engine",
    "StripedSSEEngine",
    "InterSequenceEngine",
    "ScanEngine",
    "ThrottledEngine",
    "BatchedEngine",
    "KeyedLRU",
    "PackCache",
    "ProfileCache",
    "default_pack_cache",
    "default_profile_cache",
    "HistoryBook",
    "RateEstimator",
    "RateSample",
    "DEFAULT_OMEGA",
    "Assignment",
    "Master",
    "TraceEvent",
    "AllocationPolicy",
    "PolicyContext",
    "SelfScheduling",
    "PackageWeightedSelfScheduling",
    "FixedSplit",
    "WeightedFixed",
    "make_policy",
    "HybridRuntime",
    "RunReport",
    "build_tasks",
    "merge_hits",
    "offset_hits",
    "Task",
    "TaskBatch",
    "TaskPool",
    "TaskResult",
    "TaskState",
    "group_into_batches",
]
