"""The master process: registration, allocation, adjustment, merging.

Fig. 4 of the paper: the master acquires and converts the sequence
files, waits for slaves to register, allocates tasks according to the
user-selected policy, applies the workload-adjustment mechanism when the
ready queue drains, and merges the results the slaves send back.

:class:`Master` is *pure scheduling logic* — it has no threads, sockets
or clocks of its own.  The threaded runtime and the discrete-event
simulator both drive it through the same four entry points
(:meth:`register`, :meth:`on_request`, :meth:`on_progress`,
:meth:`on_complete`), which is what lets the simulator make paper-scale
claims about exactly the code that also runs for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..observability import (
    EventLog,
    MetricsRegistry,
    SpanContext,
    execution_span_id,
    master_instruments,
    task_trace_id,
)
from .history import DEFAULT_OMEGA, HistoryBook, RateSample
from .policies import AllocationPolicy, PolicyContext
from .task import Task, TaskPool, TaskResult

__all__ = ["Assignment", "TraceEvent", "Master"]


@dataclass(frozen=True)
class Assignment:
    """Master's reply to one task request."""

    tasks: tuple[Task, ...] = ()
    replicas: tuple[Task, ...] = ()
    done: bool = False

    @property
    def empty(self) -> bool:
        """True when the slave got nothing and should wait (not exit)."""
        return not self.tasks and not self.replicas and not self.done


@dataclass(frozen=True)
class TraceEvent:
    """One entry of the master's execution trace (feeds Figs. 5-8)."""

    kind: str  # "register" | "assign" | "replica" | "complete" | "progress" | "cancel" | "cancelled" | ...
    time: float
    pe_id: str
    task_id: int = -1
    value: float = 0.0  # rate for progress events; 1.0 for winning completes


@dataclass
class _PEState:
    """Master-side bookkeeping for one slave."""

    queue: list[int] = field(default_factory=list)  # pending task ids, FIFO
    granted: int = 0  # ready tasks ever granted (drives Fixed/WFixed)
    last_contact: float = 0.0  # time of the slave's latest message


class Master:
    """Scheduling brain of the execution environment.

    Parameters
    ----------
    tasks:
        The full workload (already converted to :class:`Task` records).
    policy:
        The user-selected allocation policy (Section IV-A).
    adjustment:
        Enables the workload-adjustment mechanism (Section IV-A-3).
        Benchmarks toggle this to regenerate Fig. 6.
    omega:
        PSS notification-window length.
    metrics:
        Shared :class:`~repro.observability.MetricsRegistry`; created
        fresh when omitted.  Every scheduling decision is counted here
        under the canonical names, so the DES and the threaded runtime
        (which both drive this class) report identical telemetry.
    events:
        Shared :class:`~repro.observability.EventLog`; every legacy
        :class:`TraceEvent` is mirrored into it as a structured record.
    spans:
        Allocate span contexts (``trace``/``span``/``parent`` fields on
        the emitted events) for every granted execution, so one task's
        lifecycle is a single causal trace.  Span ids are deterministic
        functions of the schedule, identical in every environment.  The
        overhead benchmark toggles this off to price the mechanism.
    journal:
        Optional durability sink (duck-typed to
        :class:`~repro.durability.CheckpointStore`): every registration,
        retirement, assignment, winning completion and cancellation is
        journaled through it, so a crashed master can be rebuilt from
        disk.  ``None`` (the default) journals nothing.
    batch:
        Minimum tasks granted per non-empty assignment (default 1 =
        the paper's behaviour).  With ``batch=K`` a request that the
        policy would satisfy with fewer tasks is widened to up to K, so
        a slave can coalesce compatible queries into one multi-query
        sweep.  Widening never shrinks a policy grant, every task is
        still journaled/traced individually, and replicas are unaffected
        — so results, recovery sets and replica semantics are identical
        to singleton assignment.
    """

    def __init__(
        self,
        tasks: list[Task],
        policy: AllocationPolicy,
        adjustment: bool = True,
        omega: int = DEFAULT_OMEGA,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        spans: bool = True,
        journal: object | None = None,
        batch: int = 1,
    ):
        if batch < 1:
            raise ValueError("batch must be at least 1")
        self.pool = TaskPool(tasks)
        self.policy = policy
        self.adjustment = adjustment
        self.history = HistoryBook(omega)
        self.results: dict[int, TaskResult] = {}
        self.trace: list[TraceEvent] = []
        self._pes: dict[str, _PEState] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self._inst = master_instruments(self.metrics)
        self.spans = spans
        self.journal = journal
        self.batch = batch
        #: Always-on service mode: while True the master never reports
        #: ``done`` to its slaves — an empty pool means *wait*, because
        #: the admission layer may dispatch more work at any moment.
        #: The service front-end (:mod:`repro.service`) sets this on
        #: attach and clears it once a drain has retired every admitted
        #: request, which is what finally releases the slaves.
        self.serving = False
        #: Attempt counter per (task, pe) — keeps replica span ids
        #: unique when a task revisits a PE after a release.
        self._span_attempts: dict[tuple[int, str], int] = {}
        #: Open execution-span contexts keyed by (pe, task).
        self._active_spans: dict[tuple[str, int], SpanContext] = {}
        self._sync_pool_gauges()

    # ------------------------------------------------------------------
    # Instrumentation plumbing
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        now: float,
        pe_id: str,
        task_id: int = -1,
        value: float = 0.0,
        **extra: object,
    ) -> None:
        """Append to the legacy trace and mirror into the event log.

        ``extra`` fields (span context, progress payloads) go only to
        the structured log — the legacy :class:`TraceEvent` tuple stays
        exactly the five fields it always was.
        """
        self.trace.append(TraceEvent(kind, now, pe_id, task_id, value))
        self.events.emit(
            kind, now, pe=pe_id, task=task_id, value=value, **extra
        )
        self._inst.events.labels(kind=kind).inc()

    def _open_span(self, pe_id: str, task_id: int) -> dict:
        """Allocate the span context for a freshly granted execution."""
        if not self.spans:
            return {}
        attempt = self._span_attempts.get((task_id, pe_id), 0)
        self._span_attempts[(task_id, pe_id)] = attempt + 1
        trace = task_trace_id(task_id)
        context = SpanContext(
            trace_id=trace,
            span_id=execution_span_id(task_id, pe_id, attempt),
            parent_id=trace,
        )
        self._active_spans[(pe_id, task_id)] = context
        return context.as_fields()

    def _span_fields(
        self, pe_id: str, task_id: int, close: bool = False
    ) -> dict:
        """Context fields of the open execution span, if any."""
        key = (pe_id, task_id)
        context = (
            self._active_spans.pop(key, None)
            if close
            else self._active_spans.get(key)
        )
        return context.as_fields() if context is not None else {}

    def execution_span(
        self, pe_id: str, task_id: int
    ) -> SpanContext | None:
        """The open span context of one granted execution.

        The cluster server forwards this over the wire so worker-side
        events join the same causal trace.
        """
        return self._active_spans.get((pe_id, task_id))

    def _sync_pool_gauges(self) -> None:
        self._inst.ready_tasks.set(self.pool.num_ready)
        self._inst.executing_tasks.set(self.pool.num_executing)
        self._inst.registered_pes.set(len(self._pes))

    def _sync_queue_gauge(self, pe_id: str) -> None:
        state = self._pes.get(pe_id)
        depth = len(state.queue) if state is not None else 0
        self._inst.queue_depth.labels(pe=pe_id).set(depth)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return len(self._pes)

    @property
    def finished(self) -> bool:
        return self.pool.all_finished and not self.serving

    def pending_of(self, pe_id: str) -> tuple[int, ...]:
        return tuple(self._pes[pe_id].queue)

    def is_registered(self, pe_id: str) -> bool:
        return pe_id in self._pes

    def registered_pes(self) -> tuple[str, ...]:
        return tuple(self._pes)

    def merged_results(self) -> list[TaskResult]:
        """Winning result of every task, in task-id order (Fig. 4 merge)."""
        if not self.pool.all_finished:
            raise RuntimeError("cannot merge: tasks still outstanding")
        return [self.results[task_id] for task_id in sorted(self.results)]

    # ------------------------------------------------------------------
    # Slave-facing protocol
    # ------------------------------------------------------------------
    def register(self, pe_id: str, now: float = 0.0, attempt: int = 0) -> None:
        """A slave announces itself (Fig. 4, *register with master*).

        ``attempt`` is the slave's reconnect attempt id — ``0`` for the
        first registration of a run, incremented by the resilient
        cluster transport each time the worker re-registers after a
        reconnect.  It only annotates the event log; re-registration
        itself is deregister-then-register at the call site.
        """
        if pe_id in self._pes:
            raise ValueError(f"PE {pe_id!r} registered twice")
        self._pes[pe_id] = _PEState(last_contact=now)
        self.history.register(pe_id)
        extra = {"attempt": attempt} if attempt else {}
        self._record("register", now, pe_id, **extra)
        if self.journal is not None:
            self.journal.on_register(pe_id, now, attempt)
        self._sync_pool_gauges()
        self._sync_queue_gauge(pe_id)

    def last_contact(self, pe_id: str) -> float:
        """Time of the slave's most recent message."""
        return self._pes[pe_id].last_contact

    def reap_silent(self, now: float, timeout: float) -> tuple[str, ...]:
        """Deregister every slave silent for longer than *timeout*.

        Failure detection for the distributed runtime: a crashed worker
        process stops sending progress notifications; reaping it
        releases its tasks back to the ready queue so the remaining
        slaves finish the workload.  Returns the reaped PE ids.
        """
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        silent = [
            pe_id
            for pe_id, state in self._pes.items()
            if now - state.last_contact > timeout
        ]
        for pe_id in silent:
            self.deregister(pe_id, now, reason="reap")
        return tuple(silent)

    def deregister(
        self, pe_id: str, now: float = 0.0, reason: str = "leave"
    ) -> tuple[int, ...]:
        """A slave leaves the platform (churn or failure).

        Every task the slave still held is released; tasks it was the
        sole executor of transition back to READY, so no work is lost —
        the robustness the paper's future-work section asks for.
        Returns the released task ids.
        """
        state = self._pes.pop(pe_id, None)
        if state is None:
            raise KeyError(f"PE {pe_id!r} is not registered")
        released = tuple(state.queue)
        for task_id in released:
            self.pool.release(task_id, pe_id)
        for key in [k for k in self._active_spans if k[0] == pe_id]:
            del self._active_spans[key]
        self.history.remove(pe_id)
        self._record(
            "deregister", now, pe_id,
            released=list(released), reason=reason,
        )
        if self.journal is not None:
            self.journal.on_deregister(pe_id, now, reason, released)
        self._sync_pool_gauges()
        self._sync_queue_gauge(pe_id)
        return released

    def on_progress(
        self, pe_id: str, now: float, cells: float, interval: float
    ) -> None:
        """Periodic progress notification (the PSS input stream).

        Notifications from PEs that are not (or no longer) registered —
        e.g. a reaped slave whose messages were in flight — are dropped
        silently; the slave re-registers on its next request.
        """
        state = self._pes.get(pe_id)
        if state is None:
            return
        state.last_contact = now
        sample = RateSample(time=now, cells=cells, interval=interval)
        self.history.observe(pe_id, sample)
        # The queue head is the task the PE is currently executing, so
        # its span context annotates the notification.
        span = (
            self._span_fields(pe_id, state.queue[0]) if state.queue else {}
        )
        self._record(
            "progress", now, pe_id, value=sample.rate,
            cells=cells, interval=interval, **span,
        )
        self._inst.progress_notifications.labels(pe=pe_id).inc()
        estimated = self.history.rate(pe_id)
        if estimated is not None:
            self._inst.estimated_rate.labels(pe=pe_id).set(estimated)

    def on_request(self, pe_id: str, now: float) -> Assignment:
        """An idle slave asks for work.

        Ready tasks are granted according to the policy; once the ready
        queue is empty the workload-adjustment mechanism hands out a
        replica of an executing task instead.  An :class:`Assignment`
        with ``done=True`` tells the slave the whole workload finished.
        """
        state = self._pes[pe_id]
        state.last_contact = now
        self._record("request", now, pe_id)
        if self.pool.all_finished:
            # In service mode an empty pool means "wait for the front
            # door", not "the run is over".
            return Assignment(done=self.finished)

        ctx = PolicyContext(
            pe_id=pe_id,
            num_pes=len(self._pes),
            total_tasks=len(self.pool),
            ready_tasks=self.pool.num_ready,
            tasks_already_assigned={
                pe: st.granted for pe, st in self._pes.items()
            },
            history=self.history,
        )
        count = self.policy.batch_size(ctx)
        if count > 0 and self.batch > 1:
            # Widen (never shrink) the grant so the slave can coalesce
            # the tasks into one multi-query sweep.
            count = max(count, self.batch)
        tasks = self.pool.acquire(pe_id, count) if count > 0 else []
        if tasks:
            if len(tasks) > 1 and self.batch > 1:
                self._record("batch", now, pe_id, value=float(len(tasks)))
            state.granted += len(tasks)
            state.queue.extend(t.task_id for t in tasks)
            for t in tasks:
                self._record(
                    "assign", now, pe_id, t.task_id,
                    **self._open_span(pe_id, t.task_id),
                )
                if self.journal is not None:
                    self.journal.on_assign(pe_id, t.task_id, now, "assign")
            self._inst.tasks_assigned.labels(pe=pe_id).inc(len(tasks))
            self._sync_pool_gauges()
            self._sync_queue_gauge(pe_id)
            return Assignment(tasks=tuple(tasks))

        if self.adjustment:
            candidates = self.pool.replica_candidates(pe_id)
            if candidates:
                chosen = self._pick_replica(candidates)
                replica = self.pool.assign_replica(pe_id, chosen.task_id)
                state.queue.append(replica.task_id)
                self._record(
                    "replica", now, pe_id, replica.task_id,
                    **self._open_span(pe_id, replica.task_id),
                )
                if self.journal is not None:
                    self.journal.on_assign(
                        pe_id, replica.task_id, now, "replica"
                    )
                self._inst.replicas_assigned.labels(pe=pe_id).inc()
                self._sync_pool_gauges()
                self._sync_queue_gauge(pe_id)
                return Assignment(replicas=(replica,))
        if not self.pool.all_finished:
            self._inst.wait_polls.labels(pe=pe_id).inc()
        return Assignment(done=self.finished)

    def on_complete(
        self, pe_id: str, result: TaskResult, now: float
    ) -> frozenset[str]:
        """A slave finished a task; returns the PEs to cancel.

        The first completion wins and its result is merged; a stale
        completion (the task already finished elsewhere, or the same
        result delivered twice by an at-least-once transport) is
        dropped, as the mechanism prescribes.  Completions from PEs
        that were reaped or re-registered meanwhile are *adopted*: the
        work is real, so if the task is still unfinished this result
        wins and any replicas are cancelled.
        """
        state = self._pes.get(pe_id)
        if state is not None:
            state.last_contact = now
            if result.task_id in state.queue:
                state.queue.remove(result.task_id)
        if result.task_id not in self.pool:
            # A completion for a task this master never created: a
            # cold-restarted service master re-queued the request in its
            # fair queue, so the old execution's task id is not in the
            # pool (yet).  Drop it as stale — the re-dispatch reuses the
            # same task id, and a later redelivery will be adopted.
            self._record(
                "complete", now, pe_id, result.task_id, value=0.0
            )
            self._inst.tasks_completed.labels(
                pe=pe_id, outcome="unknown"
            ).inc()
            return frozenset()
        first, losers = self.pool.complete(
            result.task_id, pe_id, adopt=True
        )
        if first:
            self.results[result.task_id] = result
        if self.journal is not None:
            self.journal.on_complete(result, first, losers, now)
        self._record(
            "complete", now, pe_id, result.task_id,
            value=1.0 if first else 0.0,
            **self._span_fields(pe_id, result.task_id, close=True),
        )
        outcome = "won" if first else "stale"
        self._inst.tasks_completed.labels(pe=pe_id, outcome=outcome).inc()
        if result.elapsed > 0:
            self._inst.task_latency.labels(pe=pe_id).observe(result.elapsed)
            self._inst.busy_seconds.labels(pe=pe_id).inc(result.elapsed)
            self._inst.realized_rate.labels(pe=pe_id).set(
                result.cells / result.elapsed
            )
        self._inst.cells_completed.labels(pe=pe_id).inc(result.cells)
        for loser in losers:
            self._record(
                "cancel", now, loser, result.task_id,
                **self._span_fields(loser, result.task_id),
            )
            self._inst.tasks_cancelled.labels(pe=loser).inc()
        self._sync_pool_gauges()
        self._sync_queue_gauge(pe_id)
        return losers

    def on_cancelled(
        self, pe_id: str, task_id: int, now: float = 0.0
    ) -> None:
        """A slave acknowledges dropping a cancelled (or failed) task.

        Tolerates acknowledgements from PEs that already deregistered
        (their tasks were released at departure).
        """
        state = self._pes.get(pe_id)
        if state is None:
            return
        state.last_contact = max(state.last_contact, now)
        if task_id in state.queue:
            state.queue.remove(task_id)
        if task_id not in self.pool:
            return  # ack for a task a cold-restarted master never made
        self._record(
            "cancelled", now, pe_id, task_id,
            **self._span_fields(pe_id, task_id, close=True),
        )
        if self.journal is not None:
            self.journal.on_cancelled(pe_id, task_id, now)
        self.pool.release(task_id, pe_id)
        self._sync_pool_gauges()
        self._sync_queue_gauge(pe_id)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def restore_result(self, result: TaskResult, now: float = 0.0) -> bool:
        """Adopt a journaled winning result during crash recovery.

        The task transitions straight to FINISHED (without re-executing)
        and the result rejoins :attr:`results` so the final merge is
        identical to the fault-free run.  Emits a ``recovery_task``
        event; deliberately does *not* re-journal — the record being
        restored is already durable.  Returns False when the task is
        already finished (snapshot/journal overlap).
        """
        if not self.pool.restore_finished(result.task_id, result.pe_id):
            return False
        self.results[result.task_id] = result
        self._record(
            "recovery_task", now, result.pe_id, result.task_id, value=1.0
        )
        self._sync_pool_gauges()
        return True

    # ------------------------------------------------------------------
    # Service admission (dynamic workload)
    # ------------------------------------------------------------------
    def add_tasks(
        self,
        tasks: list[Task],
        now: float = 0.0,
        tenant: str = "",
    ) -> None:
        """Dispatch admitted service work into the ready queue.

        The admission layer (:mod:`repro.service`) holds requests in
        per-tenant queues and releases them here in weighted-fair
        order; from this point on they are ordinary tasks — assigned,
        replicated, journaled and merged exactly like the preloaded
        workload.  Dynamic tasks are not part of the checkpoint's
        workload fingerprint (it covers only the preloaded set); their
        identity and lifecycle live in the sibling service journal
        (``repro.service_journal.v1``), which is what lets a cold
        restart recover the admitted queue from disk.
        """
        for task in tasks:
            self.pool.add(task)
            extra = {"tenant": tenant} if tenant else {}
            self._record("dispatch", now, "service", task.task_id, **extra)
        self._sync_pool_gauges()

    def abandon(
        self, task_id: int, now: float = 0.0, reason: str = "deadline"
    ) -> frozenset[str]:
        """Retire a task without computing it (expiry / client cancel).

        The scheduler half of deadline propagation: a READY task is
        removed before any PE ever sees it, an EXECUTING task's
        executors are returned so the caller can flag cancellations
        (piggybacked exactly like replica-race losers), and a FINISHED
        task is left alone — its result beat the deadline and stands.
        Late completions from cancelled executors arrive stale and are
        dropped by the usual first-winner rule.
        """
        executors = self.pool.abandon(task_id)
        if executors is None:
            return frozenset()
        self._record("abandon", now, "service", task_id, reason=reason)
        for pe_id in executors:
            self._record(
                "cancel", now, pe_id, task_id,
                **self._span_fields(pe_id, task_id),
            )
            self._inst.tasks_cancelled.labels(pe=pe_id).inc()
        self._sync_pool_gauges()
        return executors

    # ------------------------------------------------------------------
    # Replica selection
    # ------------------------------------------------------------------
    def _pick_replica(self, candidates: list[Task]) -> Task:
        """Choose the executing task most worth duplicating.

        Heuristic: the task whose earliest estimated completion (over
        its current executors, from the master's queue bookkeeping and
        the Ω-window rates) is the *latest* — i.e. the task most likely
        to retard the end of the computation, the exact situation the
        mechanism exists for.  Ties fall back to fewest executors, then
        task id, keeping the choice deterministic.
        """
        rates = self.history.known_rates()

        def earliest_finish(task: Task) -> float:
            best = float("inf")
            for pe in self.pool.executors(task.task_id):
                rate = rates.get(pe)
                if rate is None or rate <= 0:
                    continue
                queue = self._pes[pe].queue
                pending_cells = 0
                for queued_id in queue:
                    pending_cells += self.pool.task(queued_id).cells
                    if queued_id == task.task_id:
                        break
                best = min(best, pending_cells / rate)
            return best

        return max(
            candidates,
            key=lambda t: (
                earliest_finish(t),
                -len(self.pool.executors(t.task_id)),
                -t.task_id,
            ),
        )
