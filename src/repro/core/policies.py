"""Task allocation policies (Section IV-A).

The paper's environment is explicitly *multi-policy*: "we claim that the
user must be able to select the allocation policy which is more
appropriate for his/her platform and sequence files".  Implemented here:

* :class:`SelfScheduling` (SS) — one task per request.  Used by most
  related work (Table I rows [12], [14], [15], [17], [16]).
* :class:`PackageWeightedSelfScheduling` (PSS) — the paper's adaptive
  policy: ``PSS(p_i, N, P) = Allocate(N, p_i) * Phi(p_i, P)`` (Eq. 2)
  with ``Allocate`` being SS (1 task) and ``Phi`` a weight derived from
  the Ω-window weighted-mean rates.
* :class:`FixedSplit` — even static split (Singh & Aruni [10], who
  "assumed that the performance of the CPU and the GPU are the same").
* :class:`WeightedFixed` (WFixed) — static proportional split from a
  configuration file (Meng & Chaudhary [13]).

A policy answers one question: *how many ready tasks should this
requesting PE receive right now?*  Everything else (states, replicas,
merging) lives in the master.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .history import HistoryBook

__all__ = [
    "PolicyContext",
    "AllocationPolicy",
    "SelfScheduling",
    "PackageWeightedSelfScheduling",
    "FixedSplit",
    "WeightedFixed",
    "make_policy",
]


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may consult when sizing an allocation."""

    pe_id: str
    num_pes: int
    total_tasks: int
    ready_tasks: int
    tasks_already_assigned: dict[str, int]
    history: HistoryBook


class AllocationPolicy(abc.ABC):
    """Strategy interface: size the batch for one task request."""

    name: str = "abstract"

    @abc.abstractmethod
    def batch_size(self, ctx: PolicyContext) -> int:
        """Number of ready tasks to grant (>= 0; master clamps to ready)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SelfScheduling(AllocationPolicy):
    """SS: every request gets exactly one task.

    Bounds any PE's final idle wait by one task's duration on the
    slowest PE, at the cost of one master round-trip per task.
    """

    name = "ss"

    def batch_size(self, ctx: PolicyContext) -> int:
        return 1 if ctx.ready_tasks > 0 else 0


class PackageWeightedSelfScheduling(AllocationPolicy):
    """PSS: SS scaled by the observed-throughput weight Phi (Eq. 2).

    ``Phi(p_i, P)`` is the ratio of p_i's Ω-window weighted-mean rate to
    the slowest known rate in the platform, so the slowest PE always
    receives SS-sized batches while a 6x-faster GPU receives 6 tasks at
    a time (the Fig. 5 walk-through).  PEs with no history yet are
    treated as slowest (Phi = 1) — exactly the paper's bootstrap, where
    "in the first allocation, the master assigns one work unit for each
    slave".
    """

    name = "pss"

    def __init__(self, max_batch: int | None = None):
        #: Optional ceiling on one grant, guarding against a wildly
        #: optimistic rate estimate starving the other PEs.
        self.max_batch = max_batch

    def phi(self, ctx: PolicyContext) -> float:
        rates = ctx.history.known_rates()
        mine = rates.get(ctx.pe_id)
        if mine is None or not rates:
            return 1.0
        slowest = min(rates.values())
        if slowest <= 0:
            return 1.0
        return mine / slowest

    def batch_size(self, ctx: PolicyContext) -> int:
        if ctx.ready_tasks <= 0:
            return 0
        base = 1  # Allocate(N, p_i) = SS
        size = max(1, round(base * self.phi(ctx)))
        if self.max_batch is not None:
            size = min(size, self.max_batch)
        return min(size, ctx.ready_tasks)


class FixedSplit(AllocationPolicy):
    """Fixed: the whole pool split evenly across PEs, once.

    Models [10]'s assumption of equal CPU/GPU power: the first request
    from each PE receives ``ceil(total / num_pes)`` tasks and later
    requests receive nothing (the PE is done with its share).

    ``num_pes`` optionally pins the fleet size used for the split.  PEs
    register with the master one by one, so a PE that requests work
    before the fleet is complete would otherwise see a partial
    ``ctx.num_pes`` and take far more than its share; a launcher that
    knows the fleet size should pass it here.
    """

    name = "fixed"

    def __init__(self, num_pes: int | None = None):
        if num_pes is not None and num_pes <= 0:
            raise ValueError("num_pes must be positive when given")
        self.num_pes = num_pes

    def batch_size(self, ctx: PolicyContext) -> int:
        fleet = self.num_pes if self.num_pes is not None else ctx.num_pes
        share = -(-ctx.total_tasks // max(1, fleet))
        already = ctx.tasks_already_assigned.get(ctx.pe_id, 0)
        return max(0, min(share - already, ctx.ready_tasks))


class WeightedFixed(AllocationPolicy):
    """WFixed: static proportional split from configured weights ([13]).

    ``weights`` maps PE ids to their *theoretical* relative computing
    power (e.g. ``{"gpu0": 6, "sse0": 1}``).  Unknown PEs get weight 1.
    The gap between this and PSS — theoretical versus *observed*
    performance — is precisely the paper's motivation.

    Shares are sized against the *configured* weight map, not against
    whichever PEs happen to be registered when a request arrives:
    registration is staggered (workers connect one by one), so sizing
    against the registered set would let an early requester compute its
    share over a partial fleet and drain nearly the whole pool.  PEs
    that appear at runtime without a configured weight join the
    denominator at weight 1; with no weights configured at all, the
    registered set is all we know and the split degrades to even.
    """

    name = "wfixed"

    def __init__(self, weights: dict[str, float] | None = None):
        self.weights = dict(weights or {})

    def batch_size(self, ctx: PolicyContext) -> int:
        weight = self.weights.get(ctx.pe_id, 1.0)
        fleet = set(self.weights) | set(ctx.tasks_already_assigned)
        total_weight = sum(self.weights.get(pe, 1.0) for pe in fleet)
        if total_weight <= 0:
            return min(1, ctx.ready_tasks)
        share = int(-(-(ctx.total_tasks * weight) // total_weight))  # ceil
        already = ctx.tasks_already_assigned.get(ctx.pe_id, 0)
        return max(0, min(share - already, ctx.ready_tasks))


def make_policy(name: str, **kwargs: object) -> AllocationPolicy:
    """Policy factory used by the CLI and the benchmarks."""
    registry = {
        "ss": SelfScheduling,
        "pss": PackageWeightedSelfScheduling,
        "fixed": FixedSplit,
        "wfixed": WeightedFixed,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
