"""Slave execution engines: how a PE actually runs one task.

Section IV-C of the paper: GPUs run CUDASW++ 2.0 ("encapsulated and
easily integrated"), multicores run the adapted Farrar SSE kernel.  The
engines here wrap this project's equivalents of those two codes behind
one interface, plus the plain scan kernel as a baseline:

* :class:`StripedSSEEngine` — the adapted-Farrar striped kernel, one
  subject at a time (what one SSE core does);
* :class:`InterSequenceEngine` — the CUDASW++-style lane-packed kernel
  (what one GPU does);
* :class:`ScanEngine` — the column-scan kernel (reference-grade slave).

Engines process the database in chunks so the worker loop can emit
progress notifications and honour cancellations between chunks — a task
is abortable at chunk granularity, which is what makes post-finish
replica cancellation cheap.
"""

from __future__ import annotations

import abc
import heapq
from typing import Callable, Iterator

import numpy as np

from ..align.api import SearchHit
from ..align.gaps import DEFAULT_GAPS, GapModel
from ..align.intersequence import pack_database, sw_score_batch, _padded_profile
from ..align.columnwise import sw_score_scan
from ..align.scoring import SubstitutionMatrix
from ..align.striped import (
    SCORE_CAP_8BIT,
    SCORE_CAP_16BIT,
    SaturationOverflow,
    StripedProfile,
    sw_score_striped_once,
)
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence

__all__ = [
    "ChunkProgress",
    "Engine",
    "StripedSSEEngine",
    "InterSequenceEngine",
    "ScanEngine",
    "ThrottledEngine",
]


class ChunkProgress:
    """Progress callback payload: cells just processed in one chunk."""

    __slots__ = ("cells",)

    def __init__(self, cells: int):
        self.cells = cells


ProgressCallback = Callable[[ChunkProgress], bool]
"""Called between chunks; returning ``False`` aborts the task."""


class Engine(abc.ABC):
    """One PE's compute capability."""

    #: Class of processing element this engine models ("sse" or "gpu");
    #: used for display and by the platform builders.
    pe_class: str = "generic"

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        gaps: GapModel = DEFAULT_GAPS,
        top: int = 10,
        chunk_size: int = 64,
    ):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.matrix = matrix
        self.gaps = gaps
        self.top = top
        self.chunk_size = chunk_size

    def search(
        self,
        query: Sequence,
        database: SequenceDatabase,
        progress: ProgressCallback | None = None,
    ) -> tuple[SearchHit, ...] | None:
        """Run one task; ``None`` means the task was aborted mid-flight."""
        best: list[tuple[int, int]] = []  # min-heap of (score, -index)
        for index, score, cells in self._score_chunks(query, database):
            entry = (score, -index)
            if len(best) < self.top:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            if progress is not None and not progress(ChunkProgress(cells)):
                return None
        ranked = sorted(best, key=lambda e: (-e[0], -e[1]))
        return tuple(
            SearchHit(
                subject_id=database[-neg_index].id,
                subject_index=-neg_index,
                score=score,
                subject_length=len(database[-neg_index]),
            )
            for score, neg_index in ranked
        )

    @abc.abstractmethod
    def _score_chunks(
        self, query: Sequence, database: SequenceDatabase
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(subject_index, score, chunk_cells)`` triples.

        ``chunk_cells`` is non-zero only on the last subject of each
        chunk, carrying the whole chunk's cell count (progress is
        reported at chunk granularity).
        """


class StripedSSEEngine(Engine):
    """One SSE core running the adapted Farrar kernel (Section IV-C).

    The striped query profile — Farrar's most expensive setup step — is
    built once per (query, precision) and reused across every database
    subject, as the real SSE code does.
    """

    pe_class = "sse"

    def __init__(self, *args, lanes: int = 16, **kwargs):
        super().__init__(*args, **kwargs)
        self.lanes = lanes

    def _score_one(
        self,
        profiles: dict[int, StripedProfile],
        query_codes,
        subject_codes,
    ) -> int:
        plans = (
            (SCORE_CAP_8BIT, self.lanes),
            (SCORE_CAP_16BIT, max(1, self.lanes // 2)),
            (int(1 << 40), max(1, self.lanes // 2)),
        )
        for cap, lanes in plans:
            profile = profiles.get(cap)
            if profile is None:
                profile = StripedProfile.build(
                    query_codes, self.matrix, lanes=lanes
                )
                profiles[cap] = profile
            try:
                score, _ = sw_score_striped_once(
                    profile, subject_codes, self.gaps, cap
                )
                return score
            except SaturationOverflow:
                continue
        raise AssertionError("unreachable: uncapped pass cannot saturate")

    def _score_chunks(self, query, database):
        from ..align.reference import _codes

        query_codes = _codes(query, self.matrix)
        profiles: dict[int, StripedProfile] = {}
        pending_cells = 0
        for index, subject in enumerate(database):
            subject_codes = _codes(subject, self.matrix)
            if len(query_codes) == 0 or len(subject_codes) == 0:
                score = 0
            else:
                score = self._score_one(profiles, query_codes, subject_codes)
            pending_cells += len(query_codes) * len(subject_codes)
            last_of_chunk = (index + 1) % self.chunk_size == 0
            last_overall = index + 1 == len(database)
            if last_of_chunk or last_overall:
                yield index, score, pending_cells
                pending_cells = 0
            else:
                yield index, score, 0


class InterSequenceEngine(Engine):
    """One GPU-analogue running the lane-packed CUDASW++-style kernel.

    ``dual_precision=True`` enables the capped-first-pass pipeline
    (CUDASW++'s limited-precision kernel + exact recompute of the rare
    saturating subjects); scores are bit-identical either way.
    """

    pe_class = "gpu"

    def __init__(
        self, *args, lanes: int = 32, dual_precision: bool = False, **kwargs
    ):
        super().__init__(*args, **kwargs)
        self.lanes = lanes
        self.dual_precision = dual_precision

    def _score_chunks(self, query, database):
        from ..align.intersequence import sw_score_batch_capped
        from ..align.reference import _codes
        from ..sequences.database import SequenceDatabase as _DB

        query_codes = _codes(query, self.matrix)
        profile = _padded_profile(query_codes, self.matrix)
        for pack in pack_database(database, self.matrix, lanes=self.lanes):
            if self.dual_precision:
                scores, saturated = sw_score_batch_capped(
                    query_codes, pack, self.matrix, self.gaps,
                    profile=profile,
                )
                for lane in np.flatnonzero(saturated):
                    redo = next(
                        pack_database(
                            _DB([database[int(pack.order[lane])]],
                                name="redo"),
                            self.matrix,
                            lanes=1,
                        )
                    )
                    scores[lane] = sw_score_batch(
                        query_codes, redo, self.matrix, self.gaps,
                        profile=profile,
                    )[0]
            else:
                scores = sw_score_batch(
                    query_codes, pack, self.matrix, self.gaps,
                    profile=profile,
                )
            chunk_cells = len(query_codes) * pack.cells_per_query_residue
            for lane, db_index in enumerate(pack.order):
                is_last = lane + 1 == len(pack.order)
                yield int(db_index), int(scores[lane]), (
                    chunk_cells if is_last else 0
                )


class ScanEngine(Engine):
    """Baseline slave running the column-scan kernel pair by pair."""

    pe_class = "scan"

    def _score_chunks(self, query, database):
        pending_cells = 0
        for index, subject in enumerate(database):
            result = sw_score_scan(query, subject, self.matrix, self.gaps)
            pending_cells += result.cells
            last_of_chunk = (index + 1) % self.chunk_size == 0
            last_overall = index + 1 == len(database)
            if last_of_chunk or last_overall:
                yield index, result.score, pending_cells
                pending_cells = 0
            else:
                yield index, result.score, 0


class ThrottledEngine(Engine):
    """Wrap an engine with an artificial per-chunk delay.

    Test/demonstration harness: makes a PE deterministically slow (or
    slow *from a given wall-clock moment*, emulating the superpi
    experiment on the real runtime) so that replication and PSS
    adaptation can be exercised reproducibly with real kernels.
    """

    pe_class = "throttled"

    def __init__(
        self,
        inner: Engine,
        delay_per_chunk: float,
        start_after: float = 0.0,
    ):
        if delay_per_chunk < 0 or start_after < 0:
            raise ValueError("delays must be non-negative")
        # Note: deliberately *not* calling super().__init__; all search
        # behaviour is delegated to the wrapped engine.
        self.inner = inner
        self.delay_per_chunk = delay_per_chunk
        self.start_after = start_after
        self._started = None  # lazily bound on first use

    @property
    def matrix(self):  # type: ignore[override]
        return self.inner.matrix

    @property
    def gaps(self):  # type: ignore[override]
        return self.inner.gaps

    @property
    def top(self):  # type: ignore[override]
        return self.inner.top

    @property
    def chunk_size(self):  # type: ignore[override]
        return self.inner.chunk_size

    def search(self, query, database, progress=None):
        import time

        if self._started is None:
            self._started = time.perf_counter()

        def throttled_progress(chunk: ChunkProgress) -> bool:
            elapsed = time.perf_counter() - self._started
            if elapsed >= self.start_after and self.delay_per_chunk > 0:
                time.sleep(self.delay_per_chunk)
            if progress is None:
                return True
            return progress(chunk)

        return self.inner.search(query, database, progress=throttled_progress)

    def _score_chunks(self, query, database):  # pragma: no cover
        raise NotImplementedError("ThrottledEngine delegates search()")
