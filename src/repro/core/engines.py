"""Slave execution engines: how a PE actually runs one task.

Section IV-C of the paper: GPUs run CUDASW++ 2.0 ("encapsulated and
easily integrated"), multicores run the adapted Farrar SSE kernel.  The
engines here wrap this project's equivalents of those two codes behind
one interface, plus the plain scan kernel as a baseline:

* :class:`StripedSSEEngine` — the adapted-Farrar striped kernel, one
  subject at a time (what one SSE core does);
* :class:`InterSequenceEngine` — the CUDASW++-style lane-packed kernel
  (what one GPU does);
* :class:`ScanEngine` — the column-scan kernel (reference-grade slave).

Engines process the database in chunks so the worker loop can emit
progress notifications and honour cancellations between chunks — a task
is abortable at chunk granularity, which is what makes post-finish
replica cancellation cheap.
"""

from __future__ import annotations

import abc
import heapq
from typing import Callable, Iterator

import numpy as np

from ..align.api import SearchHit
from ..align.gaps import DEFAULT_GAPS, GapModel
from ..align.intersequence import pack_database, sw_score_batch, _padded_profile
from ..align.columnwise import sw_score_scan
from ..align.multiquery import build_multi_profile, sw_score_batch_multi
from ..align.screening import (
    DEFAULT_BIN_WIDTH,
    DEFAULT_SCREEN_LANES,
    ScreenStats,
    build_screen_multi_profile,
    build_screen_profile,
    pack_database_binned,
    rescore_screened,
    rescore_screened_multi,
    sw_screen_batch,
    sw_screen_batch_multi,
)
from ..align.scoring import SubstitutionMatrix
from ..align.striped import (
    SCORE_CAP_8BIT,
    SCORE_CAP_16BIT,
    SaturationOverflow,
    StripedProfile,
    sw_score_striped_once,
)
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .caching import default_pack_cache, default_profile_cache

__all__ = [
    "ChunkProgress",
    "Engine",
    "StripedSSEEngine",
    "InterSequenceEngine",
    "ScanEngine",
    "ThrottledEngine",
    "BatchedEngine",
]


class ChunkProgress:
    """Progress callback payload: cells just processed in one chunk."""

    __slots__ = ("cells",)

    def __init__(self, cells: int):
        self.cells = cells


ProgressCallback = Callable[[ChunkProgress], bool]
"""Called between chunks; returning ``False`` aborts the task."""

BatchProgressCallback = Callable[[int, ChunkProgress], bool]
"""Batch variant: ``(query_position, chunk)``; ``False`` aborts that query."""

CancelledCallback = Callable[[int], bool]
"""Polled between chunks: has the batch's ``query_position`` been cancelled?"""


class Engine(abc.ABC):
    """One PE's compute capability."""

    #: Class of processing element this engine models ("sse" or "gpu");
    #: used for display and by the platform builders.
    pe_class: str = "generic"

    #: Pack/profile caches (bound when constructed with ``cache=True``);
    #: class-level ``None`` so wrappers that skip ``__init__`` stay inert.
    pack_cache = None
    profile_cache = None

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        gaps: GapModel = DEFAULT_GAPS,
        top: int = 10,
        chunk_size: int = 64,
        cache: bool = False,
        store=None,
    ):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.matrix = matrix
        self.gaps = gaps
        self.top = top
        self.chunk_size = chunk_size
        if store is not None:
            # Warm start: private caches backed by the on-disk pack
            # store (private, not the process-wide singletons, so one
            # engine's store choice never leaks into another's).
            from .caching import PackCache, ProfileCache
            from ..store import PackStore

            if not isinstance(store, PackStore):
                store = PackStore(store)
            self.pack_cache = PackCache(store=store)
            self.profile_cache = ProfileCache(store=store)
        elif cache:
            self.pack_cache = default_pack_cache()
            self.profile_cache = default_profile_cache()

    def bind_caches(self, registry) -> None:
        """Mirror this engine's cache/screen accounting into *registry*."""
        for cache in (self.pack_cache, self.profile_cache):
            if cache is not None:
                cache.bind(registry)
        stats = getattr(self, "screen_stats", None)
        if stats is not None:
            stats.bind(registry)

    def search(
        self,
        query: Sequence,
        database: SequenceDatabase,
        progress: ProgressCallback | None = None,
    ) -> tuple[SearchHit, ...] | None:
        """Run one task; ``None`` means the task was aborted mid-flight."""
        best: list[tuple[int, int]] = []  # min-heap of (score, -index)
        for index, score, cells in self._score_chunks(query, database):
            entry = (score, -index)
            if len(best) < self.top:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            if progress is not None and not progress(ChunkProgress(cells)):
                return None
        ranked = sorted(best, key=lambda e: (-e[0], -e[1]))
        return tuple(
            SearchHit(
                subject_id=database[-neg_index].id,
                subject_index=-neg_index,
                score=score,
                subject_length=len(database[-neg_index]),
            )
            for score, neg_index in ranked
        )

    def search_batch(
        self,
        queries: list[Sequence],
        database: SequenceDatabase,
        progress: BatchProgressCallback | None = None,
        cancelled: CancelledCallback | None = None,
    ) -> list[tuple[SearchHit, ...] | None]:
        """Run several tasks against one database in a single call.

        The generic implementation just loops :meth:`search`; engines
        with a native multi-query kernel override it.  Results align
        with *queries*; a ``None`` slot means that query was aborted
        (its progress callback returned ``False`` or *cancelled* said
        so).  Per-query outputs are bit-identical to singleton calls.
        """
        results: list[tuple[SearchHit, ...] | None] = []
        for position, query in enumerate(queries):
            if cancelled is not None and cancelled(position):
                results.append(None)
                continue
            per_query = None
            if progress is not None:
                def per_query(chunk, _position=position):
                    return progress(_position, chunk)
            results.append(self.search(query, database, progress=per_query))
        return results

    def _hits_from_scores(
        self, scores: np.ndarray, database: SequenceDatabase
    ) -> tuple[SearchHit, ...]:
        """Top-k hits from a full score vector, matching :meth:`search`.

        A stable sort on descending score reproduces the heap's exact
        ordering contract (score desc, database index asc on ties), so
        batch-path hits are byte-identical to the singleton path.
        """
        order = np.argsort(-scores, kind="stable")[: self.top]
        return tuple(
            SearchHit(
                subject_id=database[int(index)].id,
                subject_index=int(index),
                score=int(scores[int(index)]),
                subject_length=len(database[int(index)]),
            )
            for index in order
        )

    @abc.abstractmethod
    def _score_chunks(
        self, query: Sequence, database: SequenceDatabase
    ) -> Iterator[tuple[int, int, int]]:
        """Yield ``(subject_index, score, chunk_cells)`` triples.

        ``chunk_cells`` is non-zero only on the last subject of each
        chunk, carrying the whole chunk's cell count (progress is
        reported at chunk granularity).
        """


class StripedSSEEngine(Engine):
    """One SSE core running the adapted Farrar kernel (Section IV-C).

    The striped query profile — Farrar's most expensive setup step — is
    built once per (query, precision) and reused across every database
    subject, as the real SSE code does.
    """

    pe_class = "sse"

    def __init__(self, *args, lanes: int = 16, **kwargs):
        super().__init__(*args, **kwargs)
        self.lanes = lanes

    def _score_one(
        self,
        profiles: dict[int, StripedProfile],
        query_codes,
        subject_codes,
    ) -> int:
        plans = (
            (SCORE_CAP_8BIT, self.lanes),
            (SCORE_CAP_16BIT, max(1, self.lanes // 2)),
            (int(1 << 40), max(1, self.lanes // 2)),
        )
        for cap, lanes in plans:
            profile = profiles.get(cap)
            if profile is None:
                profile = self._striped_profile(query_codes, lanes)
                profiles[cap] = profile
            try:
                score, _ = sw_score_striped_once(
                    profile, subject_codes, self.gaps, cap
                )
                return score
            except SaturationOverflow:
                continue
        raise AssertionError("unreachable: uncapped pass cannot saturate")

    def _striped_profile(self, query_codes, lanes: int) -> StripedProfile:
        if self.profile_cache is None:
            return StripedProfile.build(query_codes, self.matrix, lanes=lanes)

        def build() -> StripedProfile:
            profile = StripedProfile.build(
                query_codes, self.matrix, lanes=lanes
            )
            profile.scores.setflags(write=False)
            return profile

        return self.profile_cache.get_or_build(
            "striped", query_codes.tobytes(), self.matrix, (int(lanes),), build
        )

    def _score_chunks(self, query, database):
        from ..align.reference import _codes

        query_codes = _codes(query, self.matrix)
        profiles: dict[int, StripedProfile] = {}
        pending_cells = 0
        for index, subject in enumerate(database):
            subject_codes = _codes(subject, self.matrix)
            if len(query_codes) == 0 or len(subject_codes) == 0:
                score = 0
            else:
                score = self._score_one(profiles, query_codes, subject_codes)
            pending_cells += len(query_codes) * len(subject_codes)
            last_of_chunk = (index + 1) % self.chunk_size == 0
            last_overall = index + 1 == len(database)
            if last_of_chunk or last_overall:
                yield index, score, pending_cells
                pending_cells = 0
            else:
                yield index, score, 0


class InterSequenceEngine(Engine):
    """One GPU-analogue running the lane-packed CUDASW++-style kernel.

    ``dual_precision=True`` enables the capped-first-pass pipeline
    (CUDASW++'s limited-precision kernel + exact recompute of the rare
    saturating subjects); scores are bit-identical either way.

    ``screen=True`` enables the two-stage screening pipeline instead:
    an 8-bit saturating sweep over tightly length-binned packs screens
    the whole database, and only sequences that saturated or cleared
    the (adaptive or explicit ``screen_threshold``) rescore bar re-run
    on the exact kernel — final hits stay byte-identical to every other
    engine.  Screening composes with the multi-query tensor: batched
    searches screen all queries in one int32 sweep per pack.
    """

    pe_class = "gpu"

    def __init__(
        self,
        *args,
        lanes: int = 32,
        dual_precision: bool = False,
        screen: bool = False,
        screen_threshold: int | None = None,
        screen_lanes: int = DEFAULT_SCREEN_LANES,
        screen_bin_width: int = DEFAULT_BIN_WIDTH,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.lanes = lanes
        self.dual_precision = dual_precision
        self.screen = screen
        self.screen_threshold = screen_threshold
        self.screen_lanes = screen_lanes
        self.screen_bin_width = screen_bin_width
        # Always constructed, so toggling ``engine.screen`` later (the
        # BatchedEngine wrapper does) needs no extra setup.
        self.screen_stats = ScreenStats()

    def _packs(self, database):
        """Lane packs for *database*: cached conversion when enabled."""
        if self.pack_cache is None:
            return pack_database(database, self.matrix, lanes=self.lanes)
        return self.pack_cache.packs(database, self.matrix, self.lanes)

    def _binned_packs(self, database):
        """Length-binned screening packs, cache/store-tiered like packs."""
        if self.pack_cache is None:
            return pack_database_binned(
                database,
                self.matrix,
                lanes=self.screen_lanes,
                bin_width=self.screen_bin_width,
            )
        return self.pack_cache.binned_packs(
            database, self.matrix, self.screen_lanes, self.screen_bin_width
        )

    def _screen_profile(self, query_codes):
        if self.profile_cache is None:
            return build_screen_profile(query_codes, self.matrix)

        def build():
            profile = build_screen_profile(query_codes, self.matrix)
            profile.setflags(write=False)
            return profile

        return self.profile_cache.get_or_build(
            "screen", query_codes.tobytes(), self.matrix, (), build
        )

    def _screen_multi_profile(self, queries_codes):
        if self.profile_cache is None:
            return build_screen_multi_profile(queries_codes, self.matrix)
        key = tuple(codes.tobytes() for codes in queries_codes)
        return self.profile_cache.get_or_build(
            "screen-multi",
            key,
            self.matrix,
            (),
            lambda: build_screen_multi_profile(queries_codes, self.matrix),
        )

    def search(self, query, database, progress=None):
        if not self.screen:
            return super().search(query, database, progress=progress)
        from ..align.reference import _codes

        query_codes = _codes(query, self.matrix)
        profile = self._screen_profile(query_codes)
        screened = np.zeros(len(database), dtype=np.int64)
        saturated = np.zeros(len(database), dtype=bool)
        for pack in self._binned_packs(database):
            batch, flags = sw_screen_batch(
                query_codes, pack, self.matrix, self.gaps, profile=profile
            )
            screened[pack.order] = batch
            saturated[pack.order] = flags
            if progress is not None:
                cells = len(query_codes) * pack.cells_per_query_residue
                if not progress(ChunkProgress(cells)):
                    return None
        result = rescore_screened(
            query_codes,
            database,
            self.matrix,
            self.gaps,
            screened,
            saturated,
            top=self.top,
            threshold=self.screen_threshold,
            stats=self.screen_stats,
        )
        return self._hits_from_scores(result.scores, database)

    def _query_profile(self, query_codes):
        if self.profile_cache is None:
            return _padded_profile(query_codes, self.matrix)

        def build():
            profile = _padded_profile(query_codes, self.matrix)
            profile.setflags(write=False)
            return profile

        return self.profile_cache.get_or_build(
            "padded", query_codes.tobytes(), self.matrix, (), build
        )

    def _multi_profile(self, queries_codes):
        if self.profile_cache is None:
            return build_multi_profile(queries_codes, self.matrix)
        key = tuple(codes.tobytes() for codes in queries_codes)
        return self.profile_cache.get_or_build(
            "multi",
            key,
            self.matrix,
            (),
            lambda: build_multi_profile(queries_codes, self.matrix),
        )

    def search_batch(self, queries, database, progress=None, cancelled=None):
        """Native multi-query sweep: all queries share each lane pack.

        One 3-D DP sweep (:func:`~repro.align.multiquery.sw_score_batch_multi`)
        advances every query over a pack simultaneously, so the pack
        loop, the profile gather and the lazy-F fixpoint are paid once
        per batch.  Abort/cancel granularity stays per pack, exactly as
        in the singleton path.
        """
        from ..align.reference import _codes

        if not queries:
            return []
        if self.screen:
            return self._search_batch_screened(
                queries, database, progress=progress, cancelled=cancelled
            )
        queries_codes = [_codes(q, self.matrix) for q in queries]
        mq = self._multi_profile(queries_codes)
        scores = np.zeros((len(queries), len(database)), dtype=np.int64)
        aborted = [False] * len(queries)
        for pack in self._packs(database):
            batch = sw_score_batch_multi(mq, pack, self.gaps)
            scores[:, pack.order] = batch
            for position in range(len(queries)):
                if aborted[position]:
                    continue
                if cancelled is not None and cancelled(position):
                    aborted[position] = True
                    continue
                if progress is not None:
                    cells = (
                        len(queries_codes[position])
                        * pack.cells_per_query_residue
                    )
                    if not progress(position, ChunkProgress(cells)):
                        aborted[position] = True
        return [
            None if aborted[position]
            else self._hits_from_scores(scores[position], database)
            for position in range(len(queries))
        ]

    def _search_batch_screened(
        self, queries, database, progress=None, cancelled=None
    ):
        """Screened batch path: one int32 screen sweep for all queries.

        Same per-pack progress/cancel contract as the exact batch path;
        the exact rescore of the survivor union runs once at the end
        for the queries that were not aborted.
        """
        from ..align.reference import _codes

        queries_codes = [_codes(q, self.matrix) for q in queries]
        mq = self._screen_multi_profile(queries_codes)
        screened = np.zeros((len(queries), len(database)), dtype=np.int64)
        saturated = np.zeros((len(queries), len(database)), dtype=bool)
        aborted = [False] * len(queries)
        for pack in self._binned_packs(database):
            batch, flags = sw_screen_batch_multi(mq, pack, self.gaps)
            screened[:, pack.order] = batch
            saturated[:, pack.order] = flags
            for position in range(len(queries)):
                if aborted[position]:
                    continue
                if cancelled is not None and cancelled(position):
                    aborted[position] = True
                    continue
                if progress is not None:
                    cells = (
                        len(queries_codes[position])
                        * pack.cells_per_query_residue
                    )
                    if not progress(position, ChunkProgress(cells)):
                        aborted[position] = True
        result = rescore_screened_multi(
            queries,
            database,
            self.matrix,
            self.gaps,
            screened,
            saturated,
            top=self.top,
            threshold=self.screen_threshold,
            stats=self.screen_stats,
        )
        return [
            None if aborted[position]
            else self._hits_from_scores(result.scores[position], database)
            for position in range(len(queries))
        ]

    def _score_chunks(self, query, database):
        from ..align.intersequence import sw_score_batch_capped
        from ..align.reference import _codes
        from ..sequences.database import SequenceDatabase as _DB

        query_codes = _codes(query, self.matrix)
        profile = self._query_profile(query_codes)
        for pack in self._packs(database):
            if self.dual_precision:
                scores, saturated = sw_score_batch_capped(
                    query_codes, pack, self.matrix, self.gaps,
                    profile=profile,
                )
                for lane in np.flatnonzero(saturated):
                    redo = next(
                        pack_database(
                            _DB([database[int(pack.order[lane])]],
                                name="redo"),
                            self.matrix,
                            lanes=1,
                        )
                    )
                    scores[lane] = sw_score_batch(
                        query_codes, redo, self.matrix, self.gaps,
                        profile=profile,
                    )[0]
            else:
                scores = sw_score_batch(
                    query_codes, pack, self.matrix, self.gaps,
                    profile=profile,
                )
            chunk_cells = len(query_codes) * pack.cells_per_query_residue
            for lane, db_index in enumerate(pack.order):
                is_last = lane + 1 == len(pack.order)
                yield int(db_index), int(scores[lane]), (
                    chunk_cells if is_last else 0
                )


class ScanEngine(Engine):
    """Baseline slave running the column-scan kernel pair by pair."""

    pe_class = "scan"

    def _score_chunks(self, query, database):
        pending_cells = 0
        for index, subject in enumerate(database):
            result = sw_score_scan(query, subject, self.matrix, self.gaps)
            pending_cells += result.cells
            last_of_chunk = (index + 1) % self.chunk_size == 0
            last_overall = index + 1 == len(database)
            if last_of_chunk or last_overall:
                yield index, result.score, pending_cells
                pending_cells = 0
            else:
                yield index, result.score, 0


class ThrottledEngine(Engine):
    """Wrap an engine with an artificial per-chunk delay.

    Test/demonstration harness: makes a PE deterministically slow (or
    slow *from a given wall-clock moment*, emulating the superpi
    experiment on the real runtime) so that replication and PSS
    adaptation can be exercised reproducibly with real kernels.
    """

    pe_class = "throttled"

    def __init__(
        self,
        inner: Engine,
        delay_per_chunk: float,
        start_after: float = 0.0,
    ):
        if delay_per_chunk < 0 or start_after < 0:
            raise ValueError("delays must be non-negative")
        # Note: deliberately *not* calling super().__init__; all search
        # behaviour is delegated to the wrapped engine.
        self.inner = inner
        self.delay_per_chunk = delay_per_chunk
        self.start_after = start_after
        self._started = None  # lazily bound on first use

    @property
    def matrix(self):  # type: ignore[override]
        return self.inner.matrix

    @property
    def gaps(self):  # type: ignore[override]
        return self.inner.gaps

    @property
    def top(self):  # type: ignore[override]
        return self.inner.top

    @property
    def chunk_size(self):  # type: ignore[override]
        return self.inner.chunk_size

    @property
    def pack_cache(self):  # type: ignore[override]
        return self.inner.pack_cache

    @property
    def profile_cache(self):  # type: ignore[override]
        return self.inner.profile_cache

    def bind_caches(self, registry):
        self.inner.bind_caches(registry)

    def search(self, query, database, progress=None):
        import time

        if self._started is None:
            self._started = time.perf_counter()

        def throttled_progress(chunk: ChunkProgress) -> bool:
            elapsed = time.perf_counter() - self._started
            if elapsed >= self.start_after and self.delay_per_chunk > 0:
                time.sleep(self.delay_per_chunk)
            if progress is None:
                return True
            return progress(chunk)

        return self.inner.search(query, database, progress=throttled_progress)

    def _score_chunks(self, query, database):  # pragma: no cover
        raise NotImplementedError("ThrottledEngine delegates search()")


class BatchedEngine(Engine):
    """Coalesce up to ``max_batch`` compatible queries per engine call.

    The wrapper is the policy half of query batching: it slices an
    incoming query list into groups of at most ``max_batch`` and hands
    each group to the wrapped engine's :meth:`~Engine.search_batch`
    (native 3-D sweep on the inter-sequence engine, a plain loop
    elsewhere).  "Compatible" means sharing this engine's matrix, gap
    model and database — exactly what one assignment batch guarantees.
    Singleton searches pass straight through.
    """

    pe_class = "batched"

    def __init__(
        self,
        inner: Engine,
        max_batch: int = 8,
        screen: bool | None = None,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        # Like ThrottledEngine: no super().__init__; behaviour delegates.
        self.inner = inner
        self.max_batch = max_batch
        if screen is not None:
            if not hasattr(inner, "screen"):
                raise ValueError(
                    "inner engine does not support screening; wrap an "
                    "InterSequenceEngine to use screen="
                )
            inner.screen = bool(screen)

    @property
    def screen(self):
        """Whether the wrapped engine screens (False if unsupported)."""
        return bool(getattr(self.inner, "screen", False))

    @property
    def screen_stats(self):  # type: ignore[override]
        return getattr(self.inner, "screen_stats", None)

    @property
    def matrix(self):  # type: ignore[override]
        return self.inner.matrix

    @property
    def gaps(self):  # type: ignore[override]
        return self.inner.gaps

    @property
    def top(self):  # type: ignore[override]
        return self.inner.top

    @property
    def chunk_size(self):  # type: ignore[override]
        return self.inner.chunk_size

    @property
    def pack_cache(self):  # type: ignore[override]
        return self.inner.pack_cache

    @property
    def profile_cache(self):  # type: ignore[override]
        return self.inner.profile_cache

    def bind_caches(self, registry):
        self.inner.bind_caches(registry)

    def search(self, query, database, progress=None):
        return self.inner.search(query, database, progress=progress)

    def search_batch(self, queries, database, progress=None, cancelled=None):
        results: list[tuple[SearchHit, ...] | None] = []
        for start in range(0, len(queries), self.max_batch):
            group = queries[start : start + self.max_batch]
            group_progress = None
            group_cancelled = None
            if progress is not None:
                def group_progress(position, chunk, _start=start):
                    return progress(_start + position, chunk)
            if cancelled is not None:
                def group_cancelled(position, _start=start):
                    return cancelled(_start + position)
            results.extend(
                self.inner.search_batch(
                    group,
                    database,
                    progress=group_progress,
                    cancelled=group_cancelled,
                )
            )
        return results

    def _score_chunks(self, query, database):  # pragma: no cover
        raise NotImplementedError("BatchedEngine delegates search()")
