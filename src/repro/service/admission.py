"""Per-tenant admission queues with weighted fair dequeue.

The always-on service front door keeps one bounded FIFO per tenant and
drains them by **stride scheduling**: each tenant carries a virtual
``pass`` value that advances by ``1 / weight`` per dequeued request, and
the next request always comes from the tenant with the smallest pass
(ties broken by tenant name, so the order is deterministic).  A tenant
with weight 2 therefore gets two dequeues for every one a weight-1
tenant gets, regardless of how bursty either one's arrivals are —
within a tenant, requests stay FIFO.

The queue is deliberately free of time, locks and transport: the
:class:`~repro.service.core.ServiceCore` supplies timestamps and the
environment (threads, DES events, TCP handlers) supplies concurrency
control, exactly the split :class:`~repro.core.task.TaskPool` uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["FairQueue"]


@dataclass
class _TenantLane:
    """One tenant's FIFO plus its stride-scheduling state."""

    weight: float
    queue: deque = field(default_factory=deque)
    #: Virtual time of this lane; advances by 1/weight per dequeue.
    pass_value: float = 0.0


class FairQueue:
    """Bounded per-tenant FIFOs drained by weighted stride scheduling.

    ``max_depth`` bounds each tenant's queue *individually* — one
    tenant flooding the front door fills only its own lane, and the
    admission layer sheds its overflow without starving anyone else.
    ``queued_cells`` is maintained incrementally so the backlog
    estimate never needs to scan queues that overload may have filled.
    """

    def __init__(self, max_depth: int, weights: dict[str, float] | None = None,
                 default_weight: float = 1.0):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ValueError(f"weight for tenant {tenant!r} must be positive")
        self.max_depth = max_depth
        self._weights = dict(weights or {})
        self._default_weight = default_weight
        self._lanes: dict[str, _TenantLane] = {}
        #: Sum of ``request.task.cells`` over every queued request.
        self.queued_cells = 0
        #: Global virtual time: the pass of the last dequeue.  A lane
        #: that was empty (or is new) restarts at max(own pass, gvt) so
        #: an idle tenant cannot bank credit and later monopolise the
        #: dequeue order.
        self._gvt = 0.0

    # ------------------------------------------------------------------
    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            weight = self._weights.get(tenant, self._default_weight)
            lane = _TenantLane(weight=weight)
            self._lanes[tenant] = lane
        return lane

    def __len__(self) -> int:
        return sum(len(lane.queue) for lane in self._lanes.values())

    def depth(self, tenant: str) -> int:
        lane = self._lanes.get(tenant)
        return len(lane.queue) if lane is not None else 0

    def tenants(self) -> tuple[str, ...]:
        """Every tenant ever seen, sorted (stable gauge label set)."""
        return tuple(sorted(self._lanes))

    def __iter__(self):
        """All queued requests, lane by lane (no particular fairness)."""
        for lane in self._lanes.values():
            yield from lane.queue

    # ------------------------------------------------------------------
    def offer(self, tenant: str, request, force: bool = False) -> bool:
        """Enqueue *request*; False when the tenant's lane is full.

        ``force=True`` bypasses the depth bound — used only by crash
        recovery, which re-queues requests that were *already* admitted
        (some of them formerly running, so queued + re-queued can
        legitimately exceed ``max_depth`` for a moment).
        """
        lane = self._lane(tenant)
        if not force and len(lane.queue) >= self.max_depth:
            return False
        if not lane.queue:
            # Re-sync an idle lane with global virtual time so a
            # long-quiet tenant does not drain everyone else dry.
            lane.pass_value = max(lane.pass_value, self._gvt)
        lane.queue.append(request)
        self.queued_cells += request.task.cells
        return True

    def pop(self):
        """Dequeue by stride scheduling; ``None`` when all lanes idle."""
        best: str | None = None
        for tenant, lane in self._lanes.items():
            if not lane.queue:
                continue
            if best is None or (
                (lane.pass_value, tenant)
                < (self._lanes[best].pass_value, best)
            ):
                best = tenant
        if best is None:
            return None
        lane = self._lanes[best]
        request = lane.queue.popleft()
        self._gvt = lane.pass_value
        lane.pass_value += 1.0 / lane.weight
        self.queued_cells -= request.task.cells
        return request

    def remove(self, request) -> bool:
        """Drop a queued request (deadline expiry or client cancel).

        No pass adjustment: the tenant did not consume a dequeue slot.
        Returns False when the request is not queued (already popped).
        """
        for lane in self._lanes.values():
            try:
                lane.queue.remove(request)
            except ValueError:
                continue
            self.queued_cells -= request.task.cells
            return True
        return False
