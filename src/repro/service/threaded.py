"""In-process always-on search service (threaded environment).

The service analogue of :class:`~repro.core.runtime.HybridRuntime`:
the same ``_Worker`` threads and lock-guarded master facade, but the
workload arrives over :meth:`ThreadedSearchService.submit` while the
workers run, instead of being preloaded.  A ticker thread drives
:meth:`ServiceCore.tick` so completions finalize, deadlines expire
(propagating cancel flags to executing workers, exactly the replica
cancellation path) and the dispatch window refills.

Results for admitted requests are byte-identical to the one-shot
:class:`~repro.core.runtime.HybridRuntime` path: one task per request
against the whole database, ranked by the same
:func:`~repro.core.results.merge_hits`.
"""

from __future__ import annotations

import threading
import time

from ..align.api import SearchHit
from ..core.engines import Engine
from ..core.master import Master
from ..core.policies import AllocationPolicy, PackageWeightedSelfScheduling
from ..core.results import merge_hits
from ..core.runtime import _SharedMaster, _Worker
from ..durability import CheckpointStore, restore_into, workload_fingerprint
from ..sequences.database import SequenceDatabase
from ..sequences.records import Sequence
from .core import ServiceConfig, ServiceCore, ServiceRequest, SubmitOutcome

__all__ = ["ThreadedSearchService"]

_TICK_SECONDS = 0.005
_WAIT_SECONDS = 0.002


class ThreadedSearchService:
    """A long-running search front door over worker threads.

    Usage::

        service = ThreadedSearchService(engines, database).start()
        outcome = service.submit("tenant-a", query, deadline=5.0)
        hits = service.wait(outcome.request_id)
        service.drain()
        service.close()
    """

    def __init__(
        self,
        engines: dict[str, Engine],
        database: SequenceDatabase,
        policy: AllocationPolicy | None = None,
        adjustment: bool = True,
        omega: int = 8,
        config: ServiceConfig | None = None,
        top: int = 10,
        tick_interval: float = _TICK_SECONDS,
        checkpoint_dir: str | None = None,
        checkpoint_sync_every: int = 1,
        checkpoint_compact_every: int = 0,
    ):
        if not engines:
            raise ValueError("at least one engine is required")
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        self.engines = dict(engines)
        self.database = database
        self.top = top
        self.tick_interval = tick_interval
        self._start_time = time.perf_counter()
        self._store: CheckpointStore | None = None
        recovered = None
        if checkpoint_dir is not None:
            self._store = CheckpointStore(
                checkpoint_dir,
                sync_every=checkpoint_sync_every,
                compact_every=checkpoint_compact_every,
            )
            recovered = self._store.open(workload_fingerprint([]))
        self.master = Master(
            [],
            policy=policy or PackageWeightedSelfScheduling(),
            adjustment=adjustment,
            omega=omega,
            journal=self._store,
        )
        #: Growing query catalog; task.query_index points into it.  New
        #: entries are appended *before* the task becomes visible (the
        #: submit happens under the master lock), so workers never see
        #: an index they cannot resolve.
        self.queries: list[Sequence] = []
        if self._store is not None:
            # Cold restart: master results first (so finished requests
            # can readopt their journaled hits), then the service
            # journal rebuilds queues and re-admits unfinished work.
            if recovered is not None and not recovered.empty:
                restore_into(self.master, recovered, now=0.0)
            results = (
                {r.task_id: r for r in recovered.results()}
                if recovered is not None
                else {}
            )
            self.core = ServiceCore.recover(
                self.master,
                self._store,
                config,
                now=0.0,
                results=results,
                query_index_of=self._recover_query,
                wall_now=time.time(),
            )
        else:
            self.core = ServiceCore(self.master, config)
        self.shared = _SharedMaster(self.master)
        self._cancel_lock = threading.Lock()
        self._cancel_flags: dict[str, set[int]] = {
            pe: set() for pe in self.engines
        }
        self._workers: list[_Worker] = []
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return time.perf_counter() - self._start_time

    def _recover_query(self, record: dict) -> int:
        """Re-register a journaled inline query payload; its new index.

        Called by :meth:`ServiceCore.recover` for every request that
        still needs (re-)execution.  A record admitted without a
        payload cannot be re-run and keeps index ``-1`` — workers would
        fail on it, so such admits only happen journal-less.
        """
        payload = record.get("query")
        if payload is None:
            return -1
        self.queries.append(
            Sequence(payload["id"], payload["residues"])
        )
        return len(self.queries) - 1

    def start(self) -> "ThreadedSearchService":
        if self._started:
            return self
        self._started = True
        self._workers = [
            _Worker(
                pe_id,
                engine,
                self.shared,
                self.queries,
                [self.database],
                [0],
                self._cancel_flags,
                self._cancel_lock,
                self._clock,
            )
            for pe_id, engine in self.engines.items()
        ]
        for worker in self._workers:
            self.shared.register(worker.pe_id, self._clock())
        for worker in self._workers:
            worker.start()
        self._ticker = threading.Thread(
            target=self._tick_loop, name="service-ticker", daemon=True
        )
        self._ticker.start()
        return self

    def _tick_loop(self) -> None:
        while not self._ticker_stop.wait(self.tick_interval):
            actions = self.shared.with_lock(
                lambda m: self.core.tick(self._clock())
            )
            self._apply_cancels(actions.cancels)
            if self.core.drained:
                return

    def _apply_cancels(self, cancels) -> None:
        if not cancels:
            return
        with self._cancel_lock:
            for pe_id, task_id in cancels:
                if pe_id in self._cancel_flags:
                    self._cancel_flags[pe_id].add(task_id)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        query: Sequence,
        deadline: float | None = None,
        request_id: str | None = None,
    ) -> SubmitOutcome:
        """Admit *query* for *tenant*; ``deadline`` is seconds from now.

        A client-supplied *request_id* makes the call idempotent —
        resubmitting an id the service already admitted (including one
        recovered from the journal after a restart) acknowledges the
        original admission instead of creating a duplicate.
        """
        if not self._started or self._closed:
            raise RuntimeError("service is not running")

        def _submit(master: Master) -> SubmitOutcome:
            if (
                request_id is not None
                and request_id in self.core.requests
            ):
                return SubmitOutcome(accepted=True, request_id=request_id)
            now = self._clock()
            self.queries.append(query)
            outcome = self.core.submit(
                tenant=tenant,
                query_id=query.id,
                query_length=len(query),
                cells=len(query) * self.database.total_residues,
                now=now,
                deadline=None if deadline is None else now + deadline,
                query_index=len(self.queries) - 1,
                request_id=request_id,
                query={"id": query.id, "residues": query.residues},
            )
            if not outcome.accepted:
                self.queries.pop()
            return outcome

        return self.shared.with_lock(_submit)

    def poll(self, request_id: str) -> ServiceRequest:
        return self.shared.with_lock(
            lambda m: self.core.poll(request_id)
        )

    def result(self, request_id: str) -> tuple[SearchHit, ...] | None:
        """Ranked hits of a ``done`` request (``None`` otherwise).

        Identical ranking to the one-shot runtime: the winning task's
        payload through :func:`merge_hits` with the service's ``top``.
        """
        hits = self.shared.with_lock(
            lambda m: self.core.results_for(request_id)
        )
        if hits is None:
            return None
        return merge_hits([hits], top=self.top)

    def wait(
        self, request_id: str, timeout: float = 60.0
    ) -> ServiceRequest:
        """Block until *request_id* reaches a terminal state."""
        limit = time.perf_counter() + timeout
        while True:
            request = self.poll(request_id)
            if request.state in ("done", "expired", "cancelled"):
                return request
            if time.perf_counter() >= limit:
                raise TimeoutError(
                    f"request {request_id} still {request.state!r} "
                    f"after {timeout}s"
                )
            time.sleep(_WAIT_SECONDS)

    def cancel(self, request_id: str) -> None:
        actions = self.shared.with_lock(
            lambda m: self.core.cancel(request_id, self._clock())
        )
        self._apply_cancels(actions.cancels)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> dict:
        """Stop admission, finish in-flight work, return a final record.

        Returns once every outstanding request has retired and the
        worker threads have exited (the drained master reports *done*
        to their next poll).
        """
        self.shared.with_lock(lambda m: self.core.drain(self._clock()))
        limit = time.perf_counter() + timeout
        while not self.core.drained:
            if time.perf_counter() >= limit:
                raise TimeoutError("drain did not complete in time")
            time.sleep(_WAIT_SECONDS)
        for worker in self._workers:
            worker.join(timeout=max(0.0, limit - time.perf_counter()))
        return self.shared.with_lock(
            lambda m: self.core.final_record(self._clock())
        )

    def crash(self) -> None:
        """Hard-kill simulation for chaos tests: no drain, no farewell.

        Arms the :class:`~repro.faults.MasterCrashed` fault on the
        shared facade — workers see a dead master and exit — then stops
        the ticker and closes the journal handles.  With the default
        ``sync_every=1`` every acknowledged admission is already on
        disk, so what remains is exactly the state a ``kill -9`` leaves
        behind; a new :class:`ThreadedSearchService` pointed at the
        same ``checkpoint_dir`` cold-restarts from it.
        """
        if self._closed:
            return
        self._closed = True
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join()

        def _arm(master: Master) -> None:
            self.shared._crash_at = -1.0
            self.shared.crashed = True

        self.shared.with_lock(_arm)
        for worker in self._workers:
            worker.join(timeout=5.0)
        if self._store is not None:
            self._store.close()
            self._store = None

    def close(self) -> None:
        """Drain (if not already) and stop the ticker."""
        if self._closed:
            return
        self._closed = True
        if self._started and not self.core.drained:
            self.drain()
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join()
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.error is not None:
                raise worker.error
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "ThreadedSearchService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
