"""Admission control, backpressure, deadlines and drain — pure logic.

:class:`ServiceCore` turns a one-shot :class:`~repro.core.master.Master`
into the brain of an always-on search service.  It owns the front-door
policy — *which* requests enter the system and *when* their tasks join
the scheduler's ready queue — while the master keeps owning everything
the paper describes: allocation, replication, first-completion-wins.

Like :class:`~repro.core.task.TaskPool`, this class knows nothing about
threads, sockets or wall clocks.  Every method takes ``now`` explicitly
and returns plain data; the threaded front-end
(:mod:`repro.service.threaded`), the DES model
(:class:`~repro.simulate.des.ServiceSimulator`) and the cluster server
(:mod:`repro.cluster.server`) drive the *same* admission semantics and
therefore export the same metrics and shed decisions.

Admission pipeline (per :meth:`submit`):

1. **drain gate** — a draining service admits nothing (reason
   ``draining``);
2. **backlog gate** — if the estimated backlog
   ``(queued + in-flight cells) / fleet rate`` exceeds
   ``max_backlog_seconds``, shed with reason ``backlog`` and a
   retry-after hint (the gate is skipped until the fleet has a rate
   estimate);
3. **queue gate** — the tenant's bounded FIFO
   (:class:`~repro.service.admission.FairQueue`); a full lane sheds
   with reason ``queue_full``.

Dispatch keeps at most ``dispatch_window`` tasks READY in the pool so
the weighted fair dequeue — not the scheduler's FIFO — decides
inter-tenant order under load.

Deadlines are absolute timestamps.  :meth:`tick` retires expired
requests: queued ones are dropped before ever becoming tasks, running
ones are abandoned in the pool and the returned
:class:`TickActions.cancels` tells the environment which PEs to
interrupt — computing a result nobody will read is the one waste the
paper's replica mechanism cannot see.

When the master journals into a
:class:`~repro.durability.CheckpointStore`, the service journals its
own admission lifecycle (``admit``/``dispatch``/``complete``/
``cancel``/``expire``/``drain``) into the sibling
``repro.service_journal.v1`` file, and :meth:`ServiceCore.recover`
cold-restarts a killed service master from disk alone: per-tenant
queues and in-flight sets are rebuilt, unfinished requests re-enter the
queue with their original deadlines (already-expired ones are cancelled
loudly), and finished requests keep their journaled hits — so results
are byte-identical to an uninterrupted run.

Admission can also run in SLO mode (``admission="slo"``): instead of
the static ``max_backlog_seconds`` knob, a request with a deadline is
shed when the predicted completion time — backlog over a service-rate
EWMA, inflated by the observed per-tenant prediction-error quantile —
would push its predicted p99 past the deadline (reason ``slo``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.master import Master
from ..core.task import Task, TaskResult
from ..durability.journal import JournalError
from ..observability import service_instruments
from .admission import FairQueue

__all__ = [
    "ServiceConfig",
    "ServiceRequest",
    "SubmitOutcome",
    "TickActions",
    "ServiceCore",
    "SHED_REASONS",
    "REQUEST_STATES",
    "ADMISSION_MODES",
]

#: Why admission may refuse a request (the wire error's ``reason``).
SHED_REASONS = ("queue_full", "backlog", "draining", "slo")

#: Admission gate flavours: ``static`` is the fixed
#: ``max_backlog_seconds`` bound; ``slo`` sheds on predicted-deadline
#: overshoot instead.
ADMISSION_MODES = ("static", "slo")

#: Lifecycle of an admitted request.
REQUEST_STATES = ("queued", "running", "done", "expired", "cancelled")


@dataclass(frozen=True)
class ServiceConfig:
    """Front-door policy knobs (defaults match ``repro serve``)."""

    #: Per-tenant admission queue bound (requests, not cells).
    max_queue_depth: int = 16
    #: Shed when estimated backlog exceeds this many seconds; ``0``
    #: disables the gate.
    max_backlog_seconds: float = 60.0
    #: Fleet rate (cells/s) to assume before any PE has a measured
    #: rate; ``0`` skips the backlog gate until rates exist.
    default_rate: float = 0.0
    #: Deadline applied to requests that do not carry one (seconds
    #: from submit); ``None`` means no implicit deadline.
    default_deadline: float | None = None
    #: Tenant -> fair-share weight; unlisted tenants get
    #: ``default_weight``.
    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: Keep at most this many admitted tasks READY in the pool; the
    #: rest wait in the fair queue where tenant weights apply.
    dispatch_window: int = 4
    #: Bounds of the retry-after hint attached to shed responses.
    min_retry_after: float = 0.1
    max_retry_after: float = 30.0
    #: Admission gate: ``static`` (fixed ``max_backlog_seconds``) or
    #: ``slo`` (shed when predicted completion overshoots the request
    #: deadline).  Requests without a deadline always fall back to the
    #: static gate.
    admission: str = "static"
    #: Smoothing factor of the fleet service-rate EWMA the SLO gate
    #: predicts from.
    ewma_alpha: float = 0.3
    #: Quantile of the observed actual/predicted latency ratios used
    #: to inflate the prediction into a p99 estimate.
    slo_quantile: float = 0.99
    #: Per-tenant window of prediction-error samples.
    error_window: int = 64

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_backlog_seconds < 0:
            raise ValueError("max_backlog_seconds must be non-negative")
        if self.dispatch_window < 1:
            raise ValueError("dispatch_window must be at least 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, "
                f"not {self.admission!r}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 < self.slo_quantile <= 1:
            raise ValueError("slo_quantile must be in (0, 1]")
        if self.error_window < 1:
            raise ValueError("error_window must be at least 1")


@dataclass
class ServiceRequest:
    """One admitted search request and its lifecycle record."""

    request_id: str
    tenant: str
    task: Task
    submitted_at: float
    deadline: float | None = None
    state: str = "queued"
    dispatched_at: float | None = None
    finished_at: float | None = None
    #: Winning task payload (tuple of SearchHit) once ``done``.
    hits: object = None

    @property
    def latency(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "deadline": self.deadline,
            "dispatched_at": self.dispatched_at,
            "finished_at": self.finished_at,
        }


@dataclass(frozen=True)
class SubmitOutcome:
    """What the front door tells the client about one submission."""

    accepted: bool
    request_id: str | None = None
    reason: str | None = None
    retry_after: float | None = None

    def to_dict(self) -> dict:
        if self.accepted:
            return {"accepted": True, "request_id": self.request_id}
        return {
            "accepted": False,
            "error": "overloaded",
            "reason": self.reason,
            "retry_after": self.retry_after,
        }


@dataclass(frozen=True)
class TickActions:
    """Side effects the environment must carry out after a tick.

    ``cancels`` are (pe_id, task_id) pairs whose execution should be
    interrupted (deadline expiry / client cancel); ``retired`` are task
    ids that left the system this tick (done, expired or cancelled) —
    the cluster server uses them to garbage-collect inline query
    payloads.
    """

    cancels: tuple[tuple[str, int], ...] = ()
    retired: tuple[int, ...] = ()

    def merge(self, other: "TickActions") -> "TickActions":
        return TickActions(
            cancels=self.cancels + other.cancels,
            retired=self.retired + other.retired,
        )


class ServiceCore:
    """Admission layer over one :class:`Master` (not thread-safe).

    When *journal* (defaulting to ``master.journal``) is a
    :class:`~repro.durability.CheckpointStore`, every admission-
    lifecycle transition is journaled into the sibling service journal
    before the environment replies to the client, which is what makes
    :meth:`recover` possible.  A plain construction refuses a store
    that already holds service state — that state belongs to a crashed
    service and must be recovered, not silently shadowed.
    """

    def __init__(
        self,
        master: Master,
        config: ServiceConfig | None = None,
        journal: object | None = None,
    ):
        self.master = master
        self.config = config or ServiceConfig()
        self.journal = journal if journal is not None else master.journal
        if self.journal is not None and hasattr(
            self.journal, "open_service"
        ):
            if not getattr(self.journal, "service_open", False):
                state = self.journal.open_service()
                if state.requests or state.draining:
                    raise JournalError(
                        "checkpoint directory holds service state from a "
                        "previous run; cold-restart it with "
                        "ServiceCore.recover() instead of discarding it"
                    )
        self.queue = FairQueue(
            max_depth=self.config.max_queue_depth,
            weights=self.config.weights,
            default_weight=self.config.default_weight,
        )
        self.requests: dict[str, ServiceRequest] = {}
        self._by_task: dict[int, ServiceRequest] = {}
        self._inflight_cells = 0
        self._seq = 0
        ids = master.pool.task_ids()
        self._next_task_id = (max(ids) + 1) if ids else 0
        self.draining = False
        self.drained = False
        #: SLO admission state: fleet-rate EWMA, per-tenant prediction
        #: error samples (actual/predicted latency ratios) and the
        #: prediction recorded for each in-flight admitted request.
        self._rate_ewma: float | None = None
        self._errors: dict[str, deque] = {}
        self._predicted_at_admit: dict[str, float] = {}
        self._inst = service_instruments(master.metrics)
        self._inst.draining.set(0.0)
        self._inst.backlog_seconds.set(0.0)
        master.serving = True

    # ------------------------------------------------------------------
    # Capacity model
    # ------------------------------------------------------------------
    def fleet_rate(self) -> float:
        """Aggregate cells/s of the fleet (Ω-window estimates)."""
        rates = self.master.history.known_rates()
        total = sum(rate for rate in rates.values() if rate > 0)
        return total if total > 0 else self.config.default_rate

    def backlog_seconds(self) -> float:
        """Estimated seconds of queued + in-flight work; 0 if unknown."""
        rate = self.fleet_rate()
        if rate <= 0:
            return 0.0
        return (self.queue.queued_cells + self._inflight_cells) / rate

    def _retry_after(self, hint: float | None = None) -> float:
        if hint is None:
            hint = self.backlog_seconds() / 2.0
        return min(
            self.config.max_retry_after,
            max(self.config.min_retry_after, hint),
        )

    def _journal_call(self, method: str, *args, **kwargs) -> None:
        if self.journal is None:
            return
        hook = getattr(self.journal, method, None)
        if hook is not None:
            hook(*args, **kwargs)

    # ------------------------------------------------------------------
    # SLO admission model
    # ------------------------------------------------------------------
    def _error_quantile(self, tenant: str) -> float:
        """Observed actual/predicted ratio at the configured quantile.

        Until a handful of completions calibrate the model the raw
        prediction is trusted as-is (factor 1.0) — early conservatism
        would shed below saturation, exactly what the adaptive gate
        must not do.
        """
        samples = self._errors.get(tenant)
        if samples is None or len(samples) < 4:
            return 1.0
        ordered = sorted(samples)
        rank = max(
            0,
            min(
                len(ordered) - 1,
                int(self.config.slo_quantile * len(ordered) + 0.5) - 1,
            ),
        )
        return max(ordered[rank], 1.0)

    def predicted_completion(
        self, tenant: str, cells: int
    ) -> float | None:
        """Predicted p99 seconds until a *cells*-sized request finishes.

        Backlog (queued + in-flight + the candidate itself) over the
        fleet-rate EWMA, inflated by the tenant's observed prediction-
        error quantile.  ``None`` while no rate estimate exists (the
        gate is skipped, mirroring the static gate's warm-up).
        """
        rate = self._rate_ewma if self._rate_ewma else self.fleet_rate()
        if rate is None or rate <= 0:
            return None
        backlog = self.queue.queued_cells + self._inflight_cells + cells
        return (backlog / rate) * self._error_quantile(tenant)

    def _observe_completion(
        self, request: ServiceRequest, now: float
    ) -> None:
        """Feed one completion into the EWMA and error window."""
        sample = self.fleet_rate()
        if sample > 0:
            alpha = self.config.ewma_alpha
            self._rate_ewma = (
                sample
                if self._rate_ewma is None
                else alpha * sample + (1 - alpha) * self._rate_ewma
            )
        predicted = self._predicted_at_admit.pop(
            request.request_id, None
        )
        actual = now - request.submitted_at
        if predicted is not None and predicted > 0 and actual > 0:
            window = self._errors.setdefault(
                request.tenant, deque(maxlen=self.config.error_window)
            )
            window.append(actual / predicted)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        query_id: str,
        query_length: int,
        cells: int,
        now: float,
        deadline: float | None = None,
        query_index: int = -1,
        request_id: str | None = None,
        query: dict | None = None,
    ) -> SubmitOutcome:
        """Admit or shed one request; refills the dispatch window.

        A client-supplied *request_id* makes resubmission idempotent:
        an id the service already admitted (in this incarnation or, via
        the journal, before a crash) is acknowledged again without a
        second admission — the retry key a reconnecting client needs
        after a master restart.  *query* is the inline payload
        (``{"id", "residues"}``) journaled with the admit record so a
        cold-restarted master can re-execute the request.
        """
        if request_id is not None and request_id in self.requests:
            return SubmitOutcome(accepted=True, request_id=request_id)
        if deadline is None and self.config.default_deadline is not None:
            deadline = now + self.config.default_deadline
        if self.draining:
            return self._shed(tenant, "draining", now, retry_after=None)
        if self.config.admission == "slo" and deadline is not None:
            predicted = self.predicted_completion(tenant, cells)
            if predicted is not None:
                self._inst.predicted_p99.labels(tenant=tenant).set(
                    predicted
                )
                if now + predicted > deadline:
                    overshoot = (now + predicted) - deadline
                    return self._shed(
                        tenant, "slo", now, self._retry_after(overshoot)
                    )
        elif (
            self.config.max_backlog_seconds > 0
            and self.backlog_seconds() > self.config.max_backlog_seconds
        ):
            return self._shed(tenant, "backlog", now, self._retry_after())
        task = Task(
            task_id=self._next_task_id,
            query_id=query_id,
            query_length=query_length,
            cells=cells,
            query_index=query_index,
        )
        if request_id is None:
            self._seq += 1
            request_id = f"{tenant}-{self._seq}"
            while request_id in self.requests:
                self._seq += 1
                request_id = f"{tenant}-{self._seq}"
        request = ServiceRequest(
            request_id=request_id,
            tenant=tenant,
            task=task,
            submitted_at=now,
            deadline=deadline,
        )
        if not self.queue.offer(tenant, request):
            return self._shed(tenant, "queue_full", now, self._retry_after())
        self._next_task_id += 1
        self.requests[request.request_id] = request
        self._by_task[task.task_id] = request
        if (
            self.config.admission == "slo"
            and deadline is not None
        ):
            predicted = self.predicted_completion(tenant, 0)
            if predicted is not None:
                self._predicted_at_admit[request.request_id] = predicted
        self._journal_call(
            "on_service_admit",
            request.request_id, tenant, task.task_id, query_id,
            query_length, cells, now,
            deadline=deadline, query=query,
        )
        self._inst.requests.labels(tenant=tenant, outcome="admitted").inc()
        self.master.events.emit(
            "submit", now, pe="service",
            request_id=request.request_id, tenant=tenant, task=task.task_id,
        )
        self._refill(now)
        self._sync_gauges()
        return SubmitOutcome(accepted=True, request_id=request.request_id)

    def _shed(
        self, tenant: str, reason: str, now: float,
        retry_after: float | None,
    ) -> SubmitOutcome:
        self._inst.requests.labels(tenant=tenant, outcome="shed").inc()
        self._inst.shed.labels(tenant=tenant, reason=reason).inc()
        self.master.events.emit(
            "shed", now, pe="service", tenant=tenant, reason=reason,
        )
        return SubmitOutcome(
            accepted=False, reason=reason, retry_after=retry_after,
        )

    def poll(self, request_id: str) -> ServiceRequest:
        """Current state of a request (KeyError for unknown ids)."""
        return self.requests[request_id]

    def results_for(self, request_id: str):
        """The winning hits of a ``done`` request (else ``None``)."""
        return self.requests[request_id].hits

    def cancel(self, request_id: str, now: float) -> TickActions:
        """Client-initiated cancel; returns executions to interrupt."""
        request = self.requests[request_id]
        if request.state in ("done", "expired", "cancelled"):
            return TickActions()
        return self._retire(request, "cancelled", now)

    def drain(self, now: float) -> int:
        """Stop admission; returns outstanding (queued + running) count.

        Idempotent.  Once the last outstanding request retires (seen by
        :meth:`tick`), ``master.serving`` flips off and every
        environment's workers run to completion naturally.
        """
        if not self.draining:
            self.draining = True
            self._inst.draining.set(1.0)
            self._journal_call("on_service_drain", now)
            self.master.events.emit("drain", now, pe="service")
        outstanding = self._check_drained(now)
        self._sync_gauges()
        return outstanding

    # ------------------------------------------------------------------
    # Cold-restart recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        master: Master,
        store,
        config: ServiceConfig | None = None,
        now: float = 0.0,
        results: dict[int, TaskResult] | None = None,
        query_index_of=None,
        wall_now: float | None = None,
    ):
        """Rebuild a killed service master's admission state from disk.

        *store* is the :class:`~repro.durability.CheckpointStore` the
        dead process journaled into (already ``open()``-ed and, for the
        master journal, ``restore_into()``-ed).  *results* maps task id
        to the :class:`TaskResult` the master journal recovered — a
        request the service journal marks ``done`` keeps those hits
        byte-for-byte.  A ``done`` record whose result never reached
        the master journal (the crash fell between the two appends) is
        downgraded to ``running`` and re-executed — deterministic
        search makes the recomputed hits identical.  *query_index_of*
        maps a folded admit record back to the environment's query
        index (re-registering inline payloads as it goes); it is only
        consulted for requests that still need to run.

        Queued and running requests re-enter the fair queue with their
        original deadlines (``force=True`` — they were already
        admitted once).  Requests whose deadline passed during the
        outage are cancelled loudly (outcome ``expired``, event reason
        ``expired_during_outage``) rather than silently dropped.

        Journaled timestamps live in the *dead* incarnation's clock
        domain.  A real-time environment whose monotonic clock restarts
        at zero passes ``wall_now`` (its current ``time.time()``): each
        record's wall anchor then re-expresses ``submitted_at`` and the
        deadline in the new clock, so outage time counts against the
        original deadline budget.  The DES shares one virtual clock
        across incarnations and omits it.
        """
        state = store.open_service()
        core = cls(master, config, journal=store)
        results = results or {}
        counts = {
            "restored": 0, "readmitted": 0, "expired": 0, "terminal": 0,
        }
        max_seq = 0
        max_task = max(master.pool.task_ids(), default=-1)
        for rec in state.requests:
            request_id = rec["request_id"]
            tenant = rec["tenant"]
            prefix, _, tail = request_id.rpartition("-")
            if prefix == tenant and tail.isdigit():
                max_seq = max(max_seq, int(tail))
            result = results.get(rec["task"])
            rstate = rec["state"]
            if rstate == "done" and result is None:
                # The crash fell between the service journal's
                # ``complete`` append and the master journal's result
                # record: the hits are gone, so re-execute — the search
                # is deterministic, the recomputed hits identical.
                rstate = "running"
            query_index = -1
            if query_index_of is not None and rstate in (
                "queued", "running"
            ):
                query_index = query_index_of(rec)
            task = Task(
                task_id=rec["task"],
                query_id=rec["query_id"],
                query_length=rec["query_length"],
                cells=rec["cells"],
                query_index=query_index,
            )
            max_task = max(max_task, task.task_id)
            submitted_at = rec["submitted_at"]
            deadline = rec["deadline"]
            if wall_now is not None and rec.get("wall") is not None:
                age = max(0.0, wall_now - float(rec["wall"]))
                if deadline is not None:
                    deadline = (now - age) + (deadline - submitted_at)
                submitted_at = now - age
            request = ServiceRequest(
                request_id=request_id,
                tenant=tenant,
                task=task,
                submitted_at=submitted_at,
                deadline=deadline,
            )
            core.requests[request_id] = request
            if rstate == "done":
                if task.task_id not in master.pool:
                    master.pool.add(task)
                    master.restore_result(result, now)
                request.state = "done"
                request.dispatched_at = rec["dispatched_at"]
                request.finished_at = rec["finished_at"]
                request.hits = result.payload
                counts["restored"] += 1
            elif rstate in ("queued", "running"):
                if request.deadline is not None and request.deadline <= now:
                    request.state = "expired"
                    request.finished_at = now
                    core._journal_call(
                        "on_service_retire", request_id, "expired", now
                    )
                    core._inst.requests.labels(
                        tenant=tenant, outcome="expired"
                    ).inc()
                    core._inst.deadline_misses.labels(tenant=tenant).inc()
                    master.events.emit(
                        "expired", now, pe="service",
                        request_id=request_id, tenant=tenant,
                        task=task.task_id,
                        reason="expired_during_outage",
                    )
                    counts["expired"] += 1
                else:
                    core.queue.offer(tenant, request, force=True)
                    core._by_task[task.task_id] = request
                    counts["readmitted"] += 1
            else:
                request.state = rstate
                request.dispatched_at = rec["dispatched_at"]
                request.finished_at = rec["finished_at"]
                counts["terminal"] += 1
        core._seq = max(core._seq, max_seq)
        core._next_task_id = max_task + 1
        if state.draining:
            core.draining = True
            core._inst.draining.set(1.0)
        for disposition, count in counts.items():
            if count:
                core._inst.recovered.labels(
                    disposition=disposition
                ).inc(count)
        if state.requests or state.draining:
            # A fresh store recovers nothing — no event noise then.
            master.events.emit(
                "service_recovery", now, pe="service",
                draining=state.draining, torn_tail=state.torn_tail,
                **counts,
            )
        core._refill(now)
        core._check_drained(now)
        core._sync_gauges()
        return core

    # ------------------------------------------------------------------
    # Periodic maintenance (environment-driven)
    # ------------------------------------------------------------------
    def tick(self, now: float) -> TickActions:
        """Finalize completions, expire deadlines, refill the window.

        Order matters: completions are finalized *before* deadlines are
        checked, so a result that beat the deadline stands — abandoning
        it would discard real work, the exact waste the service exists
        to avoid.
        """
        actions = self._finalize(now)
        actions = actions.merge(self._expire(now))
        self._refill(now)
        self._check_drained(now)
        self._sync_gauges()
        return actions

    def _finalize(self, now: float) -> TickActions:
        retired: list[int] = []
        for task_id in list(self._by_task):
            if task_id not in self.master.results:
                continue
            request = self._by_task.pop(task_id)
            if request.state != "running":
                continue  # pragma: no cover - completion raced a retire
            result = self.master.results[task_id]
            request.state = "done"
            request.finished_at = now
            request.hits = result.payload
            self._inflight_cells -= request.task.cells
            retired.append(task_id)
            self._observe_completion(request, now)
            self._journal_call(
                "on_service_retire", request.request_id, "done", now
            )
            self._inst.requests.labels(
                tenant=request.tenant, outcome="done"
            ).inc()
            self._inst.latency.labels(tenant=request.tenant).observe(
                now - request.submitted_at
            )
        return TickActions(retired=tuple(retired))

    def _expire(self, now: float) -> TickActions:
        actions = TickActions()
        expired = [
            request
            for request in self.requests.values()
            if request.state in ("queued", "running")
            and request.deadline is not None
            and request.deadline <= now
        ]
        for request in expired:
            actions = actions.merge(self._retire(request, "expired", now))
        return actions

    def _retire(
        self, request: ServiceRequest, outcome: str, now: float
    ) -> TickActions:
        """Take a queued/running request out of the system."""
        cancels: tuple[tuple[str, int], ...] = ()
        if request.state == "queued":
            self.queue.remove(request)
            self._by_task.pop(request.task.task_id, None)
        elif request.state == "running":
            executors = self.master.abandon(
                request.task.task_id, now=now, reason=outcome
            )
            cancels = tuple(
                (pe_id, request.task.task_id) for pe_id in sorted(executors)
            )
            self._inflight_cells -= request.task.cells
            self._by_task.pop(request.task.task_id, None)
        request.state = outcome
        request.finished_at = now
        self._predicted_at_admit.pop(request.request_id, None)
        self._journal_call(
            "on_service_retire", request.request_id, outcome, now
        )
        self._inst.requests.labels(
            tenant=request.tenant, outcome=outcome
        ).inc()
        if outcome == "expired":
            self._inst.deadline_misses.labels(tenant=request.tenant).inc()
        self.master.events.emit(
            outcome, now, pe="service",
            request_id=request.request_id, tenant=request.tenant,
            task=request.task.task_id,
        )
        return TickActions(
            cancels=cancels, retired=(request.task.task_id,)
        )

    def _refill(self, now: float) -> None:
        """Dispatch queued requests while the window has room.

        Requests already past their deadline are retired here instead
        of dispatched — a task for an expired request would be computed
        for nobody.
        """
        while self.master.pool.num_ready < self.config.dispatch_window:
            request = self.queue.pop()
            if request is None:
                return
            if request.deadline is not None and request.deadline <= now:
                # Already out of the fair queue: mark running=False path
                # directly rather than via _retire's queue.remove.
                self._by_task.pop(request.task.task_id, None)
                request.state = "expired"
                request.finished_at = now
                self._predicted_at_admit.pop(request.request_id, None)
                self._journal_call(
                    "on_service_retire", request.request_id,
                    "expired", now,
                )
                self._inst.requests.labels(
                    tenant=request.tenant, outcome="expired"
                ).inc()
                self._inst.deadline_misses.labels(
                    tenant=request.tenant
                ).inc()
                self.master.events.emit(
                    "expired", now, pe="service",
                    request_id=request.request_id, tenant=request.tenant,
                    task=request.task.task_id,
                )
                continue
            request.state = "running"
            request.dispatched_at = now
            self._inflight_cells += request.task.cells
            self._journal_call(
                "on_service_dispatch", request.request_id, now
            )
            self.master.add_tasks(
                [request.task], now=now, tenant=request.tenant
            )

    def _check_drained(self, now: float) -> int:
        if not self.draining:
            return 0
        outstanding = len(self.queue) + sum(
            1 for r in self.requests.values() if r.state == "running"
        )
        if self.draining and outstanding == 0 and not self.drained:
            self.drained = True
            self.master.serving = False
            self._journal_call("on_service_drain_complete", now)
            self.master.events.emit("drain_complete", now, pe="service")
        return outstanding

    def _sync_gauges(self) -> None:
        for tenant in self.queue.tenants():
            self._inst.queue_depth.labels(tenant=tenant).set(
                self.queue.depth(tenant)
            )
        self._inst.backlog_seconds.set(self.backlog_seconds())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Requests by state (for status RPCs and final records)."""
        counts = {state: 0 for state in REQUEST_STATES}
        for request in self.requests.values():
            counts[request.state] += 1
        return counts

    def final_record(self, now: float) -> dict:
        """The summary a draining service emits before exiting."""
        return {
            "kind": "service_final",
            "time": now,
            "draining": self.draining,
            "drained": self.drained,
            "requests": self.counts(),
            "backlog_seconds": self.backlog_seconds(),
        }
