"""Admission control, backpressure, deadlines and drain — pure logic.

:class:`ServiceCore` turns a one-shot :class:`~repro.core.master.Master`
into the brain of an always-on search service.  It owns the front-door
policy — *which* requests enter the system and *when* their tasks join
the scheduler's ready queue — while the master keeps owning everything
the paper describes: allocation, replication, first-completion-wins.

Like :class:`~repro.core.task.TaskPool`, this class knows nothing about
threads, sockets or wall clocks.  Every method takes ``now`` explicitly
and returns plain data; the threaded front-end
(:mod:`repro.service.threaded`), the DES model
(:class:`~repro.simulate.des.ServiceSimulator`) and the cluster server
(:mod:`repro.cluster.server`) drive the *same* admission semantics and
therefore export the same metrics and shed decisions.

Admission pipeline (per :meth:`submit`):

1. **drain gate** — a draining service admits nothing (reason
   ``draining``);
2. **backlog gate** — if the estimated backlog
   ``(queued + in-flight cells) / fleet rate`` exceeds
   ``max_backlog_seconds``, shed with reason ``backlog`` and a
   retry-after hint (the gate is skipped until the fleet has a rate
   estimate);
3. **queue gate** — the tenant's bounded FIFO
   (:class:`~repro.service.admission.FairQueue`); a full lane sheds
   with reason ``queue_full``.

Dispatch keeps at most ``dispatch_window`` tasks READY in the pool so
the weighted fair dequeue — not the scheduler's FIFO — decides
inter-tenant order under load.

Deadlines are absolute timestamps.  :meth:`tick` retires expired
requests: queued ones are dropped before ever becoming tasks, running
ones are abandoned in the pool and the returned
:class:`TickActions.cancels` tells the environment which PEs to
interrupt — computing a result nobody will read is the one waste the
paper's replica mechanism cannot see.

Service mode and checkpoint journaling are mutually exclusive: admitted
tasks are created after the journal's task-set snapshot, so a recovery
replay would reference unknown ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.master import Master
from ..core.task import Task
from ..observability import service_instruments
from .admission import FairQueue

__all__ = [
    "ServiceConfig",
    "ServiceRequest",
    "SubmitOutcome",
    "TickActions",
    "ServiceCore",
    "SHED_REASONS",
    "REQUEST_STATES",
]

#: Why admission may refuse a request (the wire error's ``reason``).
SHED_REASONS = ("queue_full", "backlog", "draining")

#: Lifecycle of an admitted request.
REQUEST_STATES = ("queued", "running", "done", "expired", "cancelled")


@dataclass(frozen=True)
class ServiceConfig:
    """Front-door policy knobs (defaults match ``repro serve``)."""

    #: Per-tenant admission queue bound (requests, not cells).
    max_queue_depth: int = 16
    #: Shed when estimated backlog exceeds this many seconds; ``0``
    #: disables the gate.
    max_backlog_seconds: float = 60.0
    #: Fleet rate (cells/s) to assume before any PE has a measured
    #: rate; ``0`` skips the backlog gate until rates exist.
    default_rate: float = 0.0
    #: Deadline applied to requests that do not carry one (seconds
    #: from submit); ``None`` means no implicit deadline.
    default_deadline: float | None = None
    #: Tenant -> fair-share weight; unlisted tenants get
    #: ``default_weight``.
    weights: dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    #: Keep at most this many admitted tasks READY in the pool; the
    #: rest wait in the fair queue where tenant weights apply.
    dispatch_window: int = 4
    #: Bounds of the retry-after hint attached to shed responses.
    min_retry_after: float = 0.1
    max_retry_after: float = 30.0

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_backlog_seconds < 0:
            raise ValueError("max_backlog_seconds must be non-negative")
        if self.dispatch_window < 1:
            raise ValueError("dispatch_window must be at least 1")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive")


@dataclass
class ServiceRequest:
    """One admitted search request and its lifecycle record."""

    request_id: str
    tenant: str
    task: Task
    submitted_at: float
    deadline: float | None = None
    state: str = "queued"
    dispatched_at: float | None = None
    finished_at: float | None = None
    #: Winning task payload (tuple of SearchHit) once ``done``.
    hits: object = None

    @property
    def latency(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "deadline": self.deadline,
            "dispatched_at": self.dispatched_at,
            "finished_at": self.finished_at,
        }


@dataclass(frozen=True)
class SubmitOutcome:
    """What the front door tells the client about one submission."""

    accepted: bool
    request_id: str | None = None
    reason: str | None = None
    retry_after: float | None = None

    def to_dict(self) -> dict:
        if self.accepted:
            return {"accepted": True, "request_id": self.request_id}
        return {
            "accepted": False,
            "error": "overloaded",
            "reason": self.reason,
            "retry_after": self.retry_after,
        }


@dataclass(frozen=True)
class TickActions:
    """Side effects the environment must carry out after a tick.

    ``cancels`` are (pe_id, task_id) pairs whose execution should be
    interrupted (deadline expiry / client cancel); ``retired`` are task
    ids that left the system this tick (done, expired or cancelled) —
    the cluster server uses them to garbage-collect inline query
    payloads.
    """

    cancels: tuple[tuple[str, int], ...] = ()
    retired: tuple[int, ...] = ()

    def merge(self, other: "TickActions") -> "TickActions":
        return TickActions(
            cancels=self.cancels + other.cancels,
            retired=self.retired + other.retired,
        )


class ServiceCore:
    """Admission layer over one :class:`Master` (not thread-safe)."""

    def __init__(self, master: Master, config: ServiceConfig | None = None):
        if master.journal is not None:
            raise ValueError(
                "service mode is incompatible with checkpoint journaling: "
                "admitted tasks are unknown to the journal's task set"
            )
        self.master = master
        self.config = config or ServiceConfig()
        self.queue = FairQueue(
            max_depth=self.config.max_queue_depth,
            weights=self.config.weights,
            default_weight=self.config.default_weight,
        )
        self.requests: dict[str, ServiceRequest] = {}
        self._by_task: dict[int, ServiceRequest] = {}
        self._inflight_cells = 0
        self._seq = 0
        ids = master.pool.task_ids()
        self._next_task_id = (max(ids) + 1) if ids else 0
        self.draining = False
        self.drained = False
        self._inst = service_instruments(master.metrics)
        self._inst.draining.set(0.0)
        self._inst.backlog_seconds.set(0.0)
        master.serving = True

    # ------------------------------------------------------------------
    # Capacity model
    # ------------------------------------------------------------------
    def fleet_rate(self) -> float:
        """Aggregate cells/s of the fleet (Ω-window estimates)."""
        rates = self.master.history.known_rates()
        total = sum(rate for rate in rates.values() if rate > 0)
        return total if total > 0 else self.config.default_rate

    def backlog_seconds(self) -> float:
        """Estimated seconds of queued + in-flight work; 0 if unknown."""
        rate = self.fleet_rate()
        if rate <= 0:
            return 0.0
        return (self.queue.queued_cells + self._inflight_cells) / rate

    def _retry_after(self) -> float:
        hint = self.backlog_seconds() / 2.0
        return min(
            self.config.max_retry_after,
            max(self.config.min_retry_after, hint),
        )

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        query_id: str,
        query_length: int,
        cells: int,
        now: float,
        deadline: float | None = None,
        query_index: int = -1,
    ) -> SubmitOutcome:
        """Admit or shed one request; refills the dispatch window."""
        if deadline is None and self.config.default_deadline is not None:
            deadline = now + self.config.default_deadline
        if self.draining:
            return self._shed(tenant, "draining", now, retry_after=None)
        if (
            self.config.max_backlog_seconds > 0
            and self.backlog_seconds() > self.config.max_backlog_seconds
        ):
            return self._shed(tenant, "backlog", now, self._retry_after())
        task = Task(
            task_id=self._next_task_id,
            query_id=query_id,
            query_length=query_length,
            cells=cells,
            query_index=query_index,
        )
        self._seq += 1
        request = ServiceRequest(
            request_id=f"{tenant}-{self._seq}",
            tenant=tenant,
            task=task,
            submitted_at=now,
            deadline=deadline,
        )
        if not self.queue.offer(tenant, request):
            return self._shed(tenant, "queue_full", now, self._retry_after())
        self._next_task_id += 1
        self.requests[request.request_id] = request
        self._by_task[task.task_id] = request
        self._inst.requests.labels(tenant=tenant, outcome="admitted").inc()
        self.master.events.emit(
            "submit", now, pe="service",
            request_id=request.request_id, tenant=tenant, task=task.task_id,
        )
        self._refill(now)
        self._sync_gauges()
        return SubmitOutcome(accepted=True, request_id=request.request_id)

    def _shed(
        self, tenant: str, reason: str, now: float,
        retry_after: float | None,
    ) -> SubmitOutcome:
        self._inst.requests.labels(tenant=tenant, outcome="shed").inc()
        self._inst.shed.labels(tenant=tenant, reason=reason).inc()
        self.master.events.emit(
            "shed", now, pe="service", tenant=tenant, reason=reason,
        )
        return SubmitOutcome(
            accepted=False, reason=reason, retry_after=retry_after,
        )

    def poll(self, request_id: str) -> ServiceRequest:
        """Current state of a request (KeyError for unknown ids)."""
        return self.requests[request_id]

    def results_for(self, request_id: str):
        """The winning hits of a ``done`` request (else ``None``)."""
        return self.requests[request_id].hits

    def cancel(self, request_id: str, now: float) -> TickActions:
        """Client-initiated cancel; returns executions to interrupt."""
        request = self.requests[request_id]
        if request.state in ("done", "expired", "cancelled"):
            return TickActions()
        return self._retire(request, "cancelled", now)

    def drain(self, now: float) -> int:
        """Stop admission; returns outstanding (queued + running) count.

        Idempotent.  Once the last outstanding request retires (seen by
        :meth:`tick`), ``master.serving`` flips off and every
        environment's workers run to completion naturally.
        """
        if not self.draining:
            self.draining = True
            self._inst.draining.set(1.0)
            self.master.events.emit("drain", now, pe="service")
        outstanding = self._check_drained(now)
        self._sync_gauges()
        return outstanding

    # ------------------------------------------------------------------
    # Periodic maintenance (environment-driven)
    # ------------------------------------------------------------------
    def tick(self, now: float) -> TickActions:
        """Finalize completions, expire deadlines, refill the window.

        Order matters: completions are finalized *before* deadlines are
        checked, so a result that beat the deadline stands — abandoning
        it would discard real work, the exact waste the service exists
        to avoid.
        """
        actions = self._finalize(now)
        actions = actions.merge(self._expire(now))
        self._refill(now)
        self._check_drained(now)
        self._sync_gauges()
        return actions

    def _finalize(self, now: float) -> TickActions:
        retired: list[int] = []
        for task_id in list(self._by_task):
            if task_id not in self.master.results:
                continue
            request = self._by_task.pop(task_id)
            if request.state != "running":
                continue  # pragma: no cover - completion raced a retire
            result = self.master.results[task_id]
            request.state = "done"
            request.finished_at = now
            request.hits = result.payload
            self._inflight_cells -= request.task.cells
            retired.append(task_id)
            self._inst.requests.labels(
                tenant=request.tenant, outcome="done"
            ).inc()
            self._inst.latency.labels(tenant=request.tenant).observe(
                now - request.submitted_at
            )
        return TickActions(retired=tuple(retired))

    def _expire(self, now: float) -> TickActions:
        actions = TickActions()
        expired = [
            request
            for request in self.requests.values()
            if request.state in ("queued", "running")
            and request.deadline is not None
            and request.deadline <= now
        ]
        for request in expired:
            actions = actions.merge(self._retire(request, "expired", now))
        return actions

    def _retire(
        self, request: ServiceRequest, outcome: str, now: float
    ) -> TickActions:
        """Take a queued/running request out of the system."""
        cancels: tuple[tuple[str, int], ...] = ()
        if request.state == "queued":
            self.queue.remove(request)
            self._by_task.pop(request.task.task_id, None)
        elif request.state == "running":
            executors = self.master.abandon(
                request.task.task_id, now=now, reason=outcome
            )
            cancels = tuple(
                (pe_id, request.task.task_id) for pe_id in sorted(executors)
            )
            self._inflight_cells -= request.task.cells
            self._by_task.pop(request.task.task_id, None)
        request.state = outcome
        request.finished_at = now
        self._inst.requests.labels(
            tenant=request.tenant, outcome=outcome
        ).inc()
        if outcome == "expired":
            self._inst.deadline_misses.labels(tenant=request.tenant).inc()
        self.master.events.emit(
            outcome, now, pe="service",
            request_id=request.request_id, tenant=request.tenant,
            task=request.task.task_id,
        )
        return TickActions(
            cancels=cancels, retired=(request.task.task_id,)
        )

    def _refill(self, now: float) -> None:
        """Dispatch queued requests while the window has room.

        Requests already past their deadline are retired here instead
        of dispatched — a task for an expired request would be computed
        for nobody.
        """
        while self.master.pool.num_ready < self.config.dispatch_window:
            request = self.queue.pop()
            if request is None:
                return
            if request.deadline is not None and request.deadline <= now:
                # Already out of the fair queue: mark running=False path
                # directly rather than via _retire's queue.remove.
                self._by_task.pop(request.task.task_id, None)
                request.state = "expired"
                request.finished_at = now
                self._inst.requests.labels(
                    tenant=request.tenant, outcome="expired"
                ).inc()
                self._inst.deadline_misses.labels(
                    tenant=request.tenant
                ).inc()
                self.master.events.emit(
                    "expired", now, pe="service",
                    request_id=request.request_id, tenant=request.tenant,
                    task=request.task.task_id,
                )
                continue
            request.state = "running"
            request.dispatched_at = now
            self._inflight_cells += request.task.cells
            self.master.add_tasks(
                [request.task], now=now, tenant=request.tenant
            )

    def _check_drained(self, now: float) -> int:
        if not self.draining:
            return 0
        outstanding = len(self.queue) + sum(
            1 for r in self.requests.values() if r.state == "running"
        )
        if self.draining and outstanding == 0 and not self.drained:
            self.drained = True
            self.master.serving = False
            self.master.events.emit("drain_complete", now, pe="service")
        return outstanding

    def _sync_gauges(self) -> None:
        for tenant in self.queue.tenants():
            self._inst.queue_depth.labels(tenant=tenant).set(
                self.queue.depth(tenant)
            )
        self._inst.backlog_seconds.set(self.backlog_seconds())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Requests by state (for status RPCs and final records)."""
        counts = {state: 0 for state in REQUEST_STATES}
        for request in self.requests.values():
            counts[request.state] += 1
        return counts

    def final_record(self, now: float) -> dict:
        """The summary a draining service emits before exiting."""
        return {
            "kind": "service_final",
            "time": now,
            "draining": self.draining,
            "drained": self.drained,
            "requests": self.counts(),
            "backlog_seconds": self.backlog_seconds(),
        }
