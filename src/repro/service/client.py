"""Service client and open-loop load generator (protocol 4).

:class:`ServiceClient` is the thin wire client of the always-on
service: one persistent connection, ``submit``/``poll``/``cancel``/
``drain`` calls, newline-delimited JSON — debuggable with ``nc`` like
the rest of the cluster protocol.

:func:`run_loadgen` drives a live master with an **open-loop** Poisson
arrival schedule: requests are submitted on the schedule's clock no
matter how the service responds, so saturation shows up as shed
requests and growing latency instead of a slowing client.  This is the
wall-clock twin of the DES service model
(:class:`~repro.simulate.des.ServiceSimulator`); both consume the same
:func:`~repro.simulate.loadgen.poisson_arrivals` schedules.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

import numpy as np

from ..align.api import SearchHit
from ..cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_hit,
    recv_message,
    send_message,
)
from ..sequences.records import Sequence
from ..sequences.synthetic import query_set

__all__ = ["ServiceClient", "LoadgenReport", "run_loadgen"]


class ServiceClient:
    """One client connection to a service-running master."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
    ):
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._sock: socket.socket | None = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        self._sock.settimeout(self._io_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")

    def reconnect(self) -> None:
        """Tear down and re-dial (e.g. after a master restart)."""
        try:
            self.close()
        except OSError:
            pass
        self._connect()

    def _call(self, message: dict) -> dict:
        send_message(self._sock, message)
        reply = recv_message(self._reader)
        if reply is None:
            raise ProtocolError("master closed the connection")
        return reply

    def submit(
        self,
        query: Sequence,
        tenant: str = "default",
        deadline: float | None = None,
        request_id: str | None = None,
    ) -> dict:
        """Submit one query; returns the ``accepted``/``rejected`` reply.

        ``deadline`` is relative seconds — the master applies it to its
        own clock, so client/master clock skew never matters.  A
        client-supplied *request_id* is the idempotency key: the master
        acknowledges a resubmitted id it already admitted (in memory or
        recovered from its journal) instead of admitting it twice.
        """
        message: dict = {
            "type": "submit",
            "protocol": PROTOCOL_VERSION,
            "tenant": tenant,
            "query": {"id": query.id, "residues": query.residues},
        }
        if deadline is not None:
            message["deadline"] = float(deadline)
        if request_id is not None:
            message["request_id"] = str(request_id)
        return self._call(message)

    def _backoff(
        self, attempt: int, base: float, cap: float, rng
    ) -> float:
        delay = min(cap, base * (2.0 ** attempt))
        jitter = rng.uniform(0.5, 1.5) if rng is not None else 1.0
        return delay * float(jitter)

    def submit_with_retry(
        self,
        query: Sequence,
        tenant: str = "default",
        deadline: float | None = None,
        request_id: str | None = None,
        attempts: int = 6,
        base_backoff: float = 0.05,
        max_backoff: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Submit with jittered exponential backoff and resubmission.

        Retries shed replies — sleeping the master's ``retry_after``
        hint when it exceeds the backoff — and connection failures,
        re-dialing first (the master may be restarting).  The stable
        *request_id* (generated once here when not supplied) makes
        every retry idempotent: an id the master already admitted, even
        one it recovered from its journal after a crash, is
        acknowledged without a second admission, so a reply lost to a
        broken pipe never duplicates work.
        """
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        if request_id is None:
            import uuid

            request_id = f"{tenant}-{uuid.uuid4().hex[:12]}"
        reply: dict = {}
        for attempt in range(attempts):
            try:
                if self._sock is None:
                    self._connect()
                reply = self.submit(
                    query, tenant=tenant, deadline=deadline,
                    request_id=request_id,
                )
            except (OSError, ProtocolError):
                reply = {"type": "unreachable", "request_id": request_id}
                if attempt + 1 >= attempts:
                    break
                time.sleep(
                    self._backoff(attempt, base_backoff, max_backoff, rng)
                )
                try:
                    self.reconnect()
                except OSError:
                    pass  # still down; the next attempt backs off again
                continue
            if reply.get("type") == "accepted":
                return reply
            if attempt + 1 >= attempts:
                break
            hint = reply.get("retry_after")
            time.sleep(max(
                self._backoff(attempt, base_backoff, max_backoff, rng),
                float(hint) if hint else 0.0,
            ))
        return reply

    def poll(self, request_id: str) -> dict:
        """Request state; a ``done`` reply carries decoded ``hits``."""
        reply = self._call({"type": "poll", "request_id": request_id})
        if reply.get("type") == "status" and reply.get("hits") is not None:
            reply["hits"] = tuple(
                decode_hit(h) for h in reply["hits"]
            )
        return reply

    def wait(
        self, request_id: str, timeout: float = 60.0, poll: float = 0.01
    ) -> dict:
        """Poll until the request reaches a terminal state."""
        limit = time.perf_counter() + timeout
        while True:
            reply = self.poll(request_id)
            if reply.get("type") == "error" or reply.get("state") in (
                "done", "expired", "cancelled",
            ):
                return reply
            if time.perf_counter() >= limit:
                raise TimeoutError(
                    f"request {request_id} still "
                    f"{reply.get('state')!r} after {timeout}s"
                )
            time.sleep(poll)

    def cancel(self, request_id: str) -> dict:
        return self._call({"type": "cancel", "request_id": request_id})

    def drain(self) -> dict:
        """Ask the master to stop admission and drain."""
        return self._call({"type": "drain"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.quantile(np.asarray(values, dtype=float), q))


@dataclass
class LoadgenReport:
    """Outcome of one open-loop run against a live service."""

    rate: float
    horizon: float
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    expired: int = 0
    cancelled: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    #: Submits that never reached the master (connection refused or
    #: dropped after exhausting retries) — distinct from shed, where
    #: the master answered and said no.
    unreachable: int = 0
    #: Submit-to-done latency of every completed request (seconds).
    latencies: list[float] = field(default_factory=list)
    #: request_id -> decoded hits of completed requests.
    hits: dict[str, tuple[SearchHit, ...]] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def p50(self) -> float:
        return _quantile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return _quantile(self.latencies, 0.99)

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "horizon": self.horizon,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "unreachable": self.unreachable,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            # Where each offered request ended up, by admission stage:
            # refused at the front door, admitted but past its deadline,
            # or completed.
            "breakdown": {
                "shed_at_admission": self.shed_total,
                "deadline_missed_after_admission": self.expired,
                "completed": self.completed,
            },
            "latency_p50": self.p50,
            "latency_p99": self.p99,
        }


def run_loadgen(
    host: str,
    port: int,
    rate: float,
    horizon: float,
    rng: np.random.Generator,
    tenants: tuple[str, ...] = ("default",),
    deadline: float | None = None,
    min_length: int = 40,
    max_length: int = 120,
    wait_timeout: float = 60.0,
    collect_hits: bool = False,
    retries: int = 0,
    request_id_prefix: str | None = None,
) -> LoadgenReport:
    """Open-loop Poisson load against a live service master.

    Synthesizes one random query per arrival (seeded by *rng*, so runs
    replay exactly), round-robins them over *tenants*, submits on the
    arrival schedule, then waits for every admitted request to reach a
    terminal state.  Late submissions never block the schedule: a slow
    ``submit`` simply delays subsequent arrivals the way a real
    client's stalled connection would.

    ``retries > 0`` switches each submission to
    :meth:`ServiceClient.submit_with_retry` with that many attempts —
    the loadgen then survives a master restart mid-run, resubmitting
    idempotently under stable request ids.  *request_id_prefix* pins
    those ids (``{prefix}-{index:05d}``) so a recovery harness can poll
    them against a restarted master.
    """
    from ..simulate.loadgen import poisson_arrivals

    arrivals = poisson_arrivals(rate, horizon, rng)
    queries = query_set(
        max(len(arrivals), 1), rng,
        min_length=min_length, max_length=max_length,
    )
    report = LoadgenReport(rate=rate, horizon=horizon)
    pending: list[tuple[str, float]] = []  # (request_id, submitted_at)
    client = ServiceClient(host, port)
    try:
        start = time.perf_counter()
        for index, at in enumerate(arrivals):
            delay = at - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            report.offered += 1
            request_id = (
                f"{request_id_prefix}-{index:05d}"
                if request_id_prefix is not None
                else None
            )
            if retries > 0:
                reply = client.submit_with_retry(
                    queries[index],
                    tenant=tenants[index % len(tenants)],
                    deadline=deadline,
                    request_id=request_id,
                    attempts=retries,
                    rng=rng,
                )
            else:
                reply = client.submit(
                    queries[index],
                    tenant=tenants[index % len(tenants)],
                    deadline=deadline,
                    request_id=request_id,
                )
            if reply.get("type") == "accepted":
                report.admitted += 1
                pending.append(
                    (str(reply["request_id"]), time.perf_counter())
                )
            elif reply.get("type") == "unreachable":
                report.unreachable += 1
            else:
                reason = str(reply.get("reason", "unknown"))
                report.shed[reason] = report.shed.get(reason, 0) + 1
        for request_id, submitted in pending:
            reply = client.wait(request_id, timeout=wait_timeout)
            state = reply.get("state")
            if state == "done":
                report.completed += 1
                report.latencies.append(time.perf_counter() - submitted)
                if collect_hits:
                    report.hits[request_id] = reply.get("hits") or ()
            elif state == "expired":
                report.expired += 1
            elif state == "cancelled":
                report.cancelled += 1
    finally:
        client.close()
    return report
