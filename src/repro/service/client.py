"""Service client and open-loop load generator (protocol 4).

:class:`ServiceClient` is the thin wire client of the always-on
service: one persistent connection, ``submit``/``poll``/``cancel``/
``drain`` calls, newline-delimited JSON — debuggable with ``nc`` like
the rest of the cluster protocol.

:func:`run_loadgen` drives a live master with an **open-loop** Poisson
arrival schedule: requests are submitted on the schedule's clock no
matter how the service responds, so saturation shows up as shed
requests and growing latency instead of a slowing client.  This is the
wall-clock twin of the DES service model
(:class:`~repro.simulate.des.ServiceSimulator`); both consume the same
:func:`~repro.simulate.loadgen.poisson_arrivals` schedules.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

import numpy as np

from ..align.api import SearchHit
from ..cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_hit,
    recv_message,
    send_message,
)
from ..sequences.records import Sequence
from ..sequences.synthetic import query_set

__all__ = ["ServiceClient", "LoadgenReport", "run_loadgen"]


class ServiceClient:
    """One client connection to a service-running master."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        io_timeout: float = 60.0,
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(io_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")

    def _call(self, message: dict) -> dict:
        send_message(self._sock, message)
        reply = recv_message(self._reader)
        if reply is None:
            raise ProtocolError("master closed the connection")
        return reply

    def submit(
        self,
        query: Sequence,
        tenant: str = "default",
        deadline: float | None = None,
    ) -> dict:
        """Submit one query; returns the ``accepted``/``rejected`` reply.

        ``deadline`` is relative seconds — the master applies it to its
        own clock, so client/master clock skew never matters.
        """
        message: dict = {
            "type": "submit",
            "protocol": PROTOCOL_VERSION,
            "tenant": tenant,
            "query": {"id": query.id, "residues": query.residues},
        }
        if deadline is not None:
            message["deadline"] = float(deadline)
        return self._call(message)

    def poll(self, request_id: str) -> dict:
        """Request state; a ``done`` reply carries decoded ``hits``."""
        reply = self._call({"type": "poll", "request_id": request_id})
        if reply.get("type") == "status" and reply.get("hits") is not None:
            reply["hits"] = tuple(
                decode_hit(h) for h in reply["hits"]
            )
        return reply

    def wait(
        self, request_id: str, timeout: float = 60.0, poll: float = 0.01
    ) -> dict:
        """Poll until the request reaches a terminal state."""
        limit = time.perf_counter() + timeout
        while True:
            reply = self.poll(request_id)
            if reply.get("type") == "error" or reply.get("state") in (
                "done", "expired", "cancelled",
            ):
                return reply
            if time.perf_counter() >= limit:
                raise TimeoutError(
                    f"request {request_id} still "
                    f"{reply.get('state')!r} after {timeout}s"
                )
            time.sleep(poll)

    def cancel(self, request_id: str) -> dict:
        return self._call({"type": "cancel", "request_id": request_id})

    def drain(self) -> dict:
        """Ask the master to stop admission and drain."""
        return self._call({"type": "drain"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.quantile(np.asarray(values, dtype=float), q))


@dataclass
class LoadgenReport:
    """Outcome of one open-loop run against a live service."""

    rate: float
    horizon: float
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    expired: int = 0
    cancelled: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    #: Submit-to-done latency of every completed request (seconds).
    latencies: list[float] = field(default_factory=list)
    #: request_id -> decoded hits of completed requests.
    hits: dict[str, tuple[SearchHit, ...]] = field(default_factory=dict)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def p50(self) -> float:
        return _quantile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return _quantile(self.latencies, 0.99)

    def to_dict(self) -> dict:
        return {
            "rate": self.rate,
            "horizon": self.horizon,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "latency_p50": self.p50,
            "latency_p99": self.p99,
        }


def run_loadgen(
    host: str,
    port: int,
    rate: float,
    horizon: float,
    rng: np.random.Generator,
    tenants: tuple[str, ...] = ("default",),
    deadline: float | None = None,
    min_length: int = 40,
    max_length: int = 120,
    wait_timeout: float = 60.0,
    collect_hits: bool = False,
) -> LoadgenReport:
    """Open-loop Poisson load against a live service master.

    Synthesizes one random query per arrival (seeded by *rng*, so runs
    replay exactly), round-robins them over *tenants*, submits on the
    arrival schedule, then waits for every admitted request to reach a
    terminal state.  Late submissions never block the schedule: a slow
    ``submit`` simply delays subsequent arrivals the way a real
    client's stalled connection would.
    """
    from ..simulate.loadgen import poisson_arrivals

    arrivals = poisson_arrivals(rate, horizon, rng)
    queries = query_set(
        max(len(arrivals), 1), rng,
        min_length=min_length, max_length=max_length,
    )
    report = LoadgenReport(rate=rate, horizon=horizon)
    pending: list[tuple[str, float]] = []  # (request_id, submitted_at)
    client = ServiceClient(host, port)
    try:
        start = time.perf_counter()
        for index, at in enumerate(arrivals):
            delay = at - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            report.offered += 1
            reply = client.submit(
                queries[index],
                tenant=tenants[index % len(tenants)],
                deadline=deadline,
            )
            if reply.get("type") == "accepted":
                report.admitted += 1
                pending.append(
                    (str(reply["request_id"]), time.perf_counter())
                )
            else:
                reason = str(reply.get("reason", "unknown"))
                report.shed[reason] = report.shed.get(reason, 0) + 1
        for request_id, submitted in pending:
            reply = client.wait(request_id, timeout=wait_timeout)
            state = reply.get("state")
            if state == "done":
                report.completed += 1
                report.latencies.append(time.perf_counter() - submitted)
                if collect_hits:
                    report.hits[request_id] = reply.get("hits") or ()
            elif state == "expired":
                report.expired += 1
            elif state == "cancelled":
                report.cancelled += 1
    finally:
        client.close()
    return report
