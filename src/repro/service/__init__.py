"""Always-on search service: admission, backpressure, deadlines, drain.

The front door the ROADMAP asks for on top of the paper's master/slave
engine: long-running, multi-tenant, with bounded admission queues and
weighted fair dequeue (:mod:`~repro.service.admission`), explicit load
shedding and per-request deadlines (:mod:`~repro.service.core`), an
in-process threaded front-end (:mod:`~repro.service.threaded`) and a
TCP client + open-loop load generator (:mod:`~repro.service.client`)
for the protocol-v4 wire surface of
:class:`~repro.cluster.server.MasterServer`.
"""

from .admission import FairQueue
from .client import LoadgenReport, ServiceClient, run_loadgen
from .core import (
    ADMISSION_MODES,
    REQUEST_STATES,
    SHED_REASONS,
    ServiceConfig,
    ServiceCore,
    ServiceRequest,
    SubmitOutcome,
    TickActions,
)
from .threaded import ThreadedSearchService

__all__ = [
    "FairQueue",
    "ServiceConfig",
    "ServiceCore",
    "ServiceRequest",
    "SubmitOutcome",
    "TickActions",
    "ThreadedSearchService",
    "ServiceClient",
    "LoadgenReport",
    "run_loadgen",
    "SHED_REASONS",
    "REQUEST_STATES",
    "ADMISSION_MODES",
]
