"""Translated search (BLASTX-style): DNA query vs protein database.

Composes three substrates: six-frame translation, low-complexity
masking, and protein database search with E-value statistics — the
pipeline used when a newly sequenced DNA fragment is characterized
against a protein database (the paper's introductory scenario for a
newly discovered sequence).

Run with::

    python examples/translated_search.py
"""

import numpy as np

from repro import Sequence, database_search, random_database
from repro.sequences import (
    DNA,
    GENETIC_CODE,
    mask_low_complexity,
    random_sequence,
    six_frame_translations,
)


def reverse_translate(protein: Sequence, rng: np.random.Generator) -> str:
    """Pick one codon per residue (synonymous choice is irrelevant here)."""
    by_amino: dict[str, list[str]] = {}
    for codon, amino in GENETIC_CODE.items():
        by_amino.setdefault(amino, []).append(codon)
    return "".join(
        by_amino[aa][int(rng.integers(len(by_amino[aa])))]
        for aa in protein.residues
    )


def main() -> None:
    rng = np.random.default_rng(11)

    # A protein database with one record we will rediscover from DNA.
    database = random_database(150, 130.0, rng, name="protein-db")
    target = database[42]
    print(f"database: {database.name} ({len(database)} proteins)")
    print(f"hidden target: {target.id} ({len(target)} aa)\n")

    # The "newly discovered" DNA: the target's coding sequence embedded
    # in untranslated flanks, on the reverse strand.
    coding = reverse_translate(target, rng)
    from repro.align import reverse_complement

    gene = Sequence(
        id="new-dna",
        residues=(
            random_sequence(60, rng, alphabet=DNA).residues
            + coding
            + random_sequence(45, rng, alphabet=DNA).residues
        ),
        alphabet=DNA,
    )
    gene = reverse_complement(gene)

    # BLASTX pipeline: translate all six frames, mask low complexity,
    # search each frame against the protein database.
    print(f"{'frame':<16} {'best hit':<24} {'score':>6} {'E-value':>10}")
    best_frame = None
    best_hit = None
    for frame in six_frame_translations(gene):
        masked = mask_low_complexity(frame)
        result = database_search(masked, database, top=1, statistics="auto")
        hit = result.best
        print(f"{frame.id:<16} {hit.subject_id:<24} {hit.score:>6} "
              f"{hit.evalue:>10.2g}")
        if best_hit is None or hit.score > best_hit.score:
            best_frame, best_hit = frame, hit

    assert best_hit is not None and best_frame is not None
    print(f"\nbest frame: {best_frame.id} -> {best_hit.subject_id} "
          f"(E = {best_hit.evalue:.2g})")
    assert best_hit.subject_id == target.id
    print("the reading frame containing the gene finds the target protein.")


if __name__ == "__main__":
    main()
