"""Elastic hybrid platform: churn, failures and FPGA integration.

Exercises the features the paper lists as future work, all built on the
same master and adjustment mechanism:

* an FPGA accelerator joins the GPU+SSE mix (segmented long queries);
* a GPU *fails* mid-run — its tasks are released back to the ready
  queue and nothing is lost;
* a second host's GPU *joins* late and immediately starts pulling work.

Run with::

    python examples/elastic_platform.py
"""

from repro.bench import tasks_for_profile
from repro.sequences import ENSEMBL_RAT
from repro.simulate import (
    FPGAModel,
    GPUModel,
    HybridSimulator,
    PESpec,
    SSECoreModel,
    gantt,
    schedule_metrics,
)


def main() -> None:
    tasks = tasks_for_profile(ENSEMBL_RAT, num_queries=40)

    pes = [
        PESpec("gpu0", GPUModel()),
        # This GPU crashes 20 s into the run.
        PESpec("gpu1", GPUModel(), leave_time=20.0),
        # A replacement GPU is hot-plugged at t = 35 s.
        PESpec("gpu2", GPUModel(), join_time=35.0),
        PESpec("fpga0", FPGAModel()),
        *[PESpec(f"sse{i}", SSECoreModel()) for i in range(2)],
    ]
    report = HybridSimulator(pes).run(tasks)
    metrics = schedule_metrics(report)

    print(f"workload: 40 queries x {ENSEMBL_RAT.name}")
    print(f"makespan: {report.makespan:.1f}s  ({report.gcups:.1f} GCUPS)")
    print(f"tasks won per PE: {report.tasks_won}")
    print(f"replicas issued: {report.replicas_assigned}, "
          f"replica waste: {metrics.replica_waste_fraction:.1%} of busy time")
    print(f"mean utilization: {metrics.mean_utilization:.1%}\n")

    print(gantt(report))
    print("\ngpu1's row stops at its crash (t=20s, its task re-queued);")
    print("gpu2's row starts at its hot-plug (t=35s);")
    print("fpga0 handles tasks at reduced rate for >1024-aa queries.")

    # Sanity: every task finished exactly once despite the churn.
    assert sum(report.tasks_won.values()) == len(tasks)
    assert any(event.kind == "deregister" for event in report.trace)


if __name__ == "__main__":
    main()
