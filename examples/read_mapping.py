"""DNA read mapping with semiglobal alignment and strand search.

A different workload from protein database search: short DNA reads
(with sequencing errors, on either strand) located inside a reference
contig.  Semiglobal alignment consumes the whole read but charges
nothing for skipping the reference flanks; reverse-complement scoring
recovers reads from the opposite strand.

Run with::

    python examples/read_mapping.py
"""

import numpy as np

from repro import Sequence, linear_gap, match_mismatch
from repro.align import (
    reverse_complement,
    semiglobal_align,
    sw_score_both_strands,
)
from repro.sequences import DNA, mutate, random_sequence


def main() -> None:
    rng = np.random.default_rng(42)
    matrix = match_mismatch(2, -3, alphabet=DNA)  # blastn-like
    gaps = linear_gap(5)

    # A 2 kb reference contig.
    contig = random_sequence(2000, rng, alphabet=DNA, seq_id="contig1")

    # Sample 6 reads of 80 bp: half forward, half reverse, with 2%
    # substitution errors.
    reads = []
    for i in range(6):
        start = int(rng.integers(0, len(contig) - 80))
        fragment = contig.slice(start, start + 80)
        read = mutate(fragment, rng, substitution_rate=0.02, indel_rate=0.005)
        read = Sequence(id=f"read{i}", residues=read.residues, alphabet=DNA)
        strand = "+"
        if i % 2:
            read = Sequence(
                id=f"read{i}",
                residues=reverse_complement(read).residues,
                alphabet=DNA,
            )
            strand = "-"
        reads.append((read, start, strand))

    print(f"mapping {len(reads)} reads of ~80 bp to {contig.id} "
          f"({len(contig)} bp)\n")
    print(f"{'read':<7} {'strand':>6} {'score':>6} {'mapped at':>10} "
          f"{'truth':>7} {'identity':>9}")
    for read, true_start, true_strand in reads:
        hit = sw_score_both_strands(read, contig, matrix, gaps)
        oriented = read if hit.is_forward else reverse_complement(read)
        alignment = semiglobal_align(oriented, contig, matrix, gaps)
        print(f"{read.id:<7} {hit.strand:>6} {hit.score:>6} "
              f"{alignment.subject_start:>10} {true_start:>7} "
              f"{alignment.identity:>8.1%}")
    print("\nall reads map back to their sampled positions, with '-'\n"
          "strand reads recovered via reverse complement.")


if __name__ == "__main__":
    main()
