"""Schedule analysis: Gantt charts, SVG export, JSON traces, metrics.

Runs the paper's SwissProt workload on the 4 GPU + 4 SSE platform with
and without the workload-adjustment mechanism and produces every
analysis artifact the simulator offers: ASCII and SVG Gantt charts, a
JSON trace for external tooling, and the schedule-quality metrics
(utilization, replica waste, finishing-time spread).

Run with::

    python examples/schedule_analysis.py [output-directory]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.bench import tasks_for_profile
from repro.sequences import SWISSPROT
from repro.simulate import (
    HybridSimulator,
    gantt,
    paper_platform,
    schedule_metrics,
    write_gantt_svg,
)


def main() -> None:
    out_dir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
            prefix="repro-analysis-"
        )
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    tasks = tasks_for_profile(SWISSPROT)

    reports = {}
    for adjustment in (True, False):
        simulator = HybridSimulator(paper_platform(), adjustment=adjustment)
        reports[adjustment] = simulator.run(list(tasks))

    for adjustment, report in reports.items():
        label = "with" if adjustment else "without"
        metrics = schedule_metrics(report)
        print(f"=== {label} workload adjustment ===")
        print(f"makespan {report.makespan:.1f}s  {report.gcups:.1f} GCUPS  "
              f"replicas {report.replicas_assigned}")
        print(f"utilization {metrics.mean_utilization:.1%}  "
              f"replica waste {metrics.replica_waste_fraction:.1%}  "
              f"finish spread {metrics.finish_spread:.1f}s")
        print(gantt(report, width=68))
        print()

        svg_path = out_dir / f"swissprot_{label}_adjustment.svg"
        write_gantt_svg(report, str(svg_path),
                        title=f"SwissProt, 4 GPUs + 4 SSEs ({label} "
                        "adjustment)")
        json_path = out_dir / f"swissprot_{label}_adjustment.json"
        json_path.write_text(report.to_json())
        print(f"wrote {svg_path}")
        print(f"wrote {json_path}\n")

    saving = 100 * (1 - reports[True].makespan / reports[False].makespan)
    print(f"adjustment saves {saving:.1f}% of the makespan "
          "(paper: 57.2%)")
    # Sanity for scripted use.
    trace = json.loads((out_dir / "swissprot_with_adjustment.json"
                        ).read_text())
    assert trace["tasks_won"]


if __name__ == "__main__":
    main()
