"""Distributed database search: master + slave OS processes over TCP.

The paper's environment is a networked master/slave system (two hosts
on Gigabit Ethernet).  This example runs that deployment shape locally:
a TCP master serves tasks, slave *processes* read their sequences from
shared indexed files (Section IV-B) and stream progress notifications
back, and the PSS policy plus workload adjustment balance the mix of a
fast GPU-analogue worker and a slower striped-kernel worker.

Run with::

    python examples/distributed_search.py
"""

import numpy as np

from repro.cluster import run_cluster
from repro.sequences import implant_homology, query_set, random_database


def main() -> None:
    rng = np.random.default_rng(2013)
    queries = query_set(6, rng, min_length=40, max_length=120)
    database = random_database(120, 90.0, rng, name="distributed-db")
    database = implant_homology(database, queries[2], [33], rng)

    workers = {
        "host1-gpu0": "gpu",   # inter-sequence engine (fast)
        "host1-sse0": "sse",   # adapted-Farrar engine
        "host2-scan0": "scan",  # column-scan engine
    }
    print(f"spawning {len(workers)} slave processes against a TCP master...")
    report = run_cluster(
        queries,
        database,
        workers,
        use_processes=True,
        top=3,
        chunk_size=16,
    )

    print(f"finished in {report.makespan:.2f}s wallclock "
          f"({report.gcups:.4f} GCUPS)\n")
    completions = [e for e in report.trace if e.kind == "complete" and e.value]
    by_pe: dict[str, int] = {}
    for event in completions:
        by_pe[event.pe_id] = by_pe.get(event.pe_id, 0) + 1
    print(f"tasks won per slave: {by_pe}\n")

    for query in queries:
        hits = report.results[query.id]
        best = hits[0]
        marker = "  <-- planted homolog" if "homolog" in best.subject_id else ""
        print(f"{query.id:<9} best: {best.subject_id:<28} "
              f"score={best.score}{marker}")


if __name__ == "__main__":
    main()
