"""Simulate the paper's full evaluation platform at published scale.

Runs 40 queries x UniProtDB/SwissProt (the Section V workload) on every
configuration of Fig. 6 — 1/2/4 GPUs, each with and without 4 SSE
cores, with and without the workload-adjustment mechanism — and prints
the resulting seconds/GCUPS plus a Gantt chart of the full hybrid run.

Run with::

    python examples/hybrid_platform.py
"""

from repro.bench import tasks_for_profile
from repro.sequences import SWISSPROT
from repro.simulate import CONFIGURATIONS, HybridSimulator, gantt, hybrid_platform


def main() -> None:
    tasks = tasks_for_profile(SWISSPROT, num_queries=40)
    total_cells = sum(t.cells for t in tasks)
    print(f"workload: 40 queries x {SWISSPROT.name} "
          f"({total_cells / 1e12:.1f} Tcells)\n")

    print(f"{'configuration':<14} {'adjusted':>10} {'plain':>10}   (GCUPS)")
    last_report = None
    for label, num_gpus, num_sse in CONFIGURATIONS:
        results = {}
        for adjustment in (True, False):
            simulator = HybridSimulator(
                hybrid_platform(num_gpus, num_sse), adjustment=adjustment
            )
            report = simulator.run(list(tasks))
            results[adjustment] = report
        print(f"{label:<14} {results[True].gcups:>10.1f} "
              f"{results[False].gcups:>10.1f}")
        last_report = results[True]

    assert last_report is not None
    print("\nGantt chart of the 4 GPUs + 4 SSEs run "
          f"(makespan {last_report.makespan:.1f}s, "
          f"replicas {last_report.replicas_assigned}):")
    print(gantt(last_report))
    print("\ndigits = winning tasks (id mod 10), x = cancelled replicas")


if __name__ == "__main__":
    main()
