"""Compare allocation policies on a heterogeneous platform (Table I).

Runs SS, Fixed, WFixed and PSS — each with and without the paper's
workload-adjustment mechanism — on the Fig. 5 reference platform
(one GPU six times faster than three SSE cores, twenty 1-second tasks)
and on the published SwissProt workload, showing when the adaptive
policy and the replication mechanism actually matter.

Run with::

    python examples/policy_comparison.py
"""

from repro.bench import tasks_for_profile, uniform_tasks
from repro.core import make_policy
from repro.sequences import SWISSPROT
from repro.simulate import HybridSimulator, PESpec, UniformModel, hybrid_platform


def fig5_platform() -> list[PESpec]:
    return [
        PESpec("gpu0", UniformModel(rate=6.0, pe_class_name="gpu")),
        *[PESpec(f"sse{i}", UniformModel(rate=1.0)) for i in range(3)],
    ]


def run(pes, tasks, policy_name, adjustment, **policy_kwargs):
    simulator = HybridSimulator(
        pes,
        policy=make_policy(policy_name, **policy_kwargs),
        adjustment=adjustment,
        comm_latency=0.0,
    )
    return simulator.run(list(tasks))


def main() -> None:
    weights = {"gpu0": 6.0, "sse0": 1.0, "sse1": 1.0, "sse2": 1.0}
    scenarios = [
        ("ss", {}),
        ("fixed", {}),
        ("wfixed", {"weights": weights}),
        ("pss", {}),
    ]

    print("Fig. 5 platform - 20 uniform tasks (1s each on the GPU)")
    print(f"{'policy':<8} {'plain (s)':>10} {'with adjustment (s)':>20}")
    for name, kwargs in scenarios:
        plain = run(fig5_platform(), uniform_tasks(20), name, False, **kwargs)
        adjusted = run(fig5_platform(), uniform_tasks(20), name, True, **kwargs)
        print(f"{name:<8} {plain.makespan:>10.1f} {adjusted.makespan:>20.1f}")

    print("\npaper workload - 40 queries x SwissProt on 2 GPUs + 4 SSEs")
    tasks = tasks_for_profile(SWISSPROT)
    gpu_weights = {f"gpu{i}": 15.0 for i in range(2)}
    gpu_weights.update({f"sse{i}": 1.0 for i in range(4)})
    print(f"{'policy':<8} {'plain (s)':>10} {'with adjustment (s)':>20}")
    for name, kwargs in scenarios:
        if name == "wfixed":
            kwargs = {"weights": gpu_weights}
        plain = run(hybrid_platform(2, 4), tasks, name, False, **kwargs)
        adjusted = run(hybrid_platform(2, 4), tasks, name, True, **kwargs)
        print(f"{name:<8} {plain.makespan:>10.1f} "
              f"{adjusted.makespan:>20.1f}")

    print("\nPSS tracks *observed* rates, so it needs no configuration and")
    print("adapts when the estimate is wrong; the adjustment mechanism")
    print("then removes the tail that any policy leaves behind.")


if __name__ == "__main__":
    main()
