"""Quickstart: score, align, and search with the public API.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    BLOSUM62,
    DEFAULT_GAPS,
    Sequence,
    database_search,
    random_database,
    sw_align,
    sw_score,
)
from repro.sequences import mutate


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. Pairwise scoring -----------------------------------------
    # The paper's Fig. 1 example: two DNA fragments under ma=+1, mi=-1.
    from repro import linear_gap, match_mismatch

    s = Sequence(id="s", residues="GCTGACCT")
    t = Sequence(id="t", residues="GAAGCTA")
    score = sw_score(s, t, matrix=match_mismatch(1, -1), gaps=linear_gap(2))
    print(f"SW similarity of {s.id} x {t.id}: {score}")

    # --- 2. Protein alignment (Phase 1 + Phase 2) ---------------------
    protein = Sequence(
        id="P_demo",
        residues="MKVLAWYRNDCEQGHISTPFMKVLAWYRNDCEQGHISTPF",
    )
    homolog = mutate(protein, rng, substitution_rate=0.15, indel_rate=0.05)
    alignment = sw_align(protein, homolog, BLOSUM62, DEFAULT_GAPS)
    print()
    print(alignment.pretty())

    # --- 3. Database search (one paper "task") ------------------------
    database = random_database(200, 120.0, rng, name="demo-db")
    result = database_search(protein, database, top=5)
    print(f"top hits of {protein.id} against {database.name} "
          f"({result.cells / 1e6:.1f} Mcells):")
    for hit in result.hits:
        print(f"  {hit.subject_id:<18} score={hit.score:<4} "
              f"length={hit.subject_length}")


if __name__ == "__main__":
    main()
