"""Non-dedicated execution: PSS adapting to external load (Fig. 7/8).

Reproduces the paper's superpi experiment: 40 queries against the
Ensembl Dog proteome on 4 SSE cores, first dedicated, then with a
compute-intensive competitor started on core 0 after 60 s.  The
per-core GCUPS time series shows core 0 dropping below half speed while
PSS shifts tasks to the other cores, keeping the wallclock penalty well
under the raw capacity loss.

Run with::

    python examples/nondedicated_adaptive.py
"""

from repro.bench import fig7_dedicated, fig8_nondedicated


def spark(series: list[tuple[float, float]], peak: float = 2.9) -> str:
    """Render a rate series as a unicode sparkline."""
    blocks = " .:-=+*#%@"
    chars = []
    for _, rate in series:
        level = min(len(blocks) - 1, int(rate / peak * (len(blocks) - 1)))
        chars.append(blocks[level])
    return "".join(chars)


def main() -> None:
    print("dedicated run (4 SSE cores, Ensembl Dog, 40 queries)...")
    dedicated = fig7_dedicated()
    print(f"  wallclock: {dedicated.wallclock:.1f}s\n")

    print("non-dedicated run (superpi-style load on core 0 at t=60s)...")
    loaded = fig8_nondedicated(load_start=60.0, load_capacity=0.45)
    print(f"  wallclock: {loaded.wallclock:.1f}s")
    augmentation = 100 * (loaded.wallclock / dedicated.wallclock - 1)
    print(f"  augmentation: {augmentation:+.1f}% "
          "(paper: +12.1% for ~15% capacity loss)\n")

    print("per-core GCUPS over time (5s bins, height = rate):")
    for pe_id in sorted(loaded.series):
        print(f"  {pe_id}  |{spark(loaded.series[pe_id])}|")
    print(f"         0s{' ' * (len(spark(loaded.series['sse0'])) - 8)}"
          f"{loaded.wallclock:6.0f}s")
    print("\ncore 0 visibly drops to less than half rate after t=60s;")
    print("the other cores absorb the displaced tasks.")


if __name__ == "__main__":
    main()
